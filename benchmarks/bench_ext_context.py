"""Extension experiment: timesharing / context switches.

The regenerated table/chart is written to
``benchmarks/results/ext-context.txt``.
"""

from repro.experiments import ext_context_switch as experiment


def test_ext_context(figure_bench):
    report = figure_bench(experiment, "ext-context")
    assert "quantum" in report
