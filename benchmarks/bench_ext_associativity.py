"""Extension experiment: DE vs associativity/victim, with AMAT.

The regenerated table/chart is written to
``benchmarks/results/ext-assoc.txt``.
"""

from repro.experiments import ext_associativity as experiment


def test_ext_assoc(figure_bench):
    report = figure_bench(experiment, "ext-assoc")
    assert "AMAT" in report
