"""Extension experiment: cold vs warm improvement split.

The regenerated table is written to ``benchmarks/results/ext-warmup.txt``.
"""

from repro.experiments import ext_warmup as experiment


def test_ext_warmup(figure_bench):
    report = figure_bench(experiment, "ext-warmup")
    assert "warm" in report
