"""Figure 9 L1 improvement: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig09.txt``.
"""

from repro.experiments import fig09_l1_improvement as experiment


def test_fig09(figure_bench):
    report = figure_bench(experiment, "fig09")
    assert experiment.TITLE.split(":")[0] in report
