"""Figure 15 mixed-cache sweep: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig15.txt``.
"""

from repro.experiments import fig15_mixed_cache as experiment


def test_fig15(figure_bench):
    report = figure_bench(experiment, "fig15")
    assert experiment.TITLE.split(":")[0] in report
