"""Observability overhead benchmark: tracing must cost < 5%.

The ``repro.obs`` instrumentation is always-on in the sense that the
sweep runner and engine dispatch call ``span()``/``counter()``
unconditionally; only the installed tracer/registry decide whether
anything happens.  This benchmark times the fast dynamic-exclusion and
direct-mapped kernels three ways — uninstrumented, with the no-op
module-level hooks (nothing installed, the default state of every
library call), and with a live tracer + metrics registry writing
``trace.jsonl`` — and asserts the live-instrumentation overhead stays
under the 5% acceptance ceiling.  The table persists to
``benchmarks/results/bench_obs_overhead.txt``, with a JSON twin
(``bench_obs_overhead.json`` / ``bench_obs_batch.json``) whose
``*_traced_vs_bare_speedup`` ratios — bare seconds over traced seconds,
1.0 = free instrumentation — feed ``tools/check_bench_regression.py``.
"""

import time

from conftest import write_json_result

from repro import obs
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.obs.metrics import MetricsRegistry
from repro.perf import engine
from repro.workloads.registry import instruction_trace

GEOMETRY = CacheGeometry(32 * 1024, 4)
TRACE_REFS = 200_000
ROUNDS = 5
#: simulate() calls per timed round, so one round is tens of
#: milliseconds and the per-span cost is averaged over many spans.
ITERATIONS = 20
MAX_OVERHEAD = 0.05

MODELS = {
    "direct-mapped": lambda: DirectMappedCache(GEOMETRY),
    "dynamic-exclusion": lambda: DynamicExclusionCache(GEOMETRY),
}


def _round_seconds(make_cache, trace):
    """Wall-clock for one round of ITERATIONS fast-engine runs."""
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        engine.simulate(make_cache(), trace, engine="fast")
    return time.perf_counter() - start


def _measure(make_cache, trace, tmp_path):
    """Best-of-ROUNDS for both modes, interleaved per round so machine
    drift (CPU contention, thermal) hits both sides equally."""
    tracer = obs.Tracer(tmp_path)
    registry = MetricsRegistry()
    # Warm both paths (trace cache, numpy kernels, first-span file open)
    # outside the timed region.
    _round_seconds(make_cache, trace)
    obs.install_tracer(tracer)
    obs.install_registry(registry)
    _round_seconds(make_cache, trace)
    obs.uninstall_registry()
    obs.uninstall_tracer()

    bare = traced = float("inf")
    try:
        for _ in range(ROUNDS):
            bare = min(bare, _round_seconds(make_cache, trace))
            obs.install_tracer(tracer)
            obs.install_registry(registry)
            try:
                traced = min(traced, _round_seconds(make_cache, trace))
            finally:
                obs.uninstall_registry()
                obs.uninstall_tracer()
    finally:
        tracer.close()
    return bare, traced


def test_tracing_overhead_under_five_percent(results_dir, tmp_path):
    trace = instruction_trace("gcc", TRACE_REFS)

    rows = []
    for label, make_cache in MODELS.items():
        # Bare = nothing installed, the module-level hooks in their
        # no-op state (the default for every library call); traced =
        # live tracer writing JSONL + live metrics registry.
        bare, traced = _measure(make_cache, trace, tmp_path / label)

        rows.append(
            {
                "label": label,
                "bare_s": bare,
                "traced_s": traced,
                "overhead": traced / bare - 1.0,
            }
        )

    lines = [
        f"Observability overhead (gcc, {TRACE_REFS:,} refs, 32KB b=4B, "
        f"fast engine, {ITERATIONS} runs/round, best of {ROUNDS})",
        f"{'model':<20} {'uninstrumented':>15} {'traced':>12} {'overhead':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['label']:<20} "
            f"{row['bare_s'] * 1e3:>13.1f}ms "
            f"{row['traced_s'] * 1e3:>10.1f}ms "
            f"{row['overhead']:>8.1%}"
        )
    report = "\n".join(lines)
    (results_dir / "bench_obs_overhead.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_obs_overhead",
        config={
            "trace": "gcc",
            "refs": TRACE_REFS,
            "rounds": ROUNDS,
            "iterations": ITERATIONS,
            "max_overhead": MAX_OVERHEAD,
        },
        metrics={
            key: value
            for row in rows
            for label in [row["label"].replace("-", "_")]
            for key, value in [
                (f"{label}_bare_rps",
                 ITERATIONS * TRACE_REFS / row["bare_s"]),
                (f"{label}_traced_vs_bare_speedup",
                 row["bare_s"] / row["traced_s"]),
            ]
        },
    )
    print(f"\n{report}\n")

    for row in rows:
        assert row["overhead"] < MAX_OVERHEAD, (
            f"{row['label']}: tracing overhead {row['overhead']:.1%} "
            f"exceeds the {MAX_OVERHEAD:.0%} ceiling"
        )


def test_batched_tier_tracing_overhead(results_dir, tmp_path):
    """The batched tier must clear the same 5% tracing ceiling.

    A batched sweep emits group spans, per-cell back-dated ``cell``
    records, and the ``batch.*`` counters from one scheduler pass, so
    its instrumentation density differs from the per-cell fast path;
    this times a whole 12-cell batched sweep bare vs live-traced.
    """
    from repro.core.hitlast import IdealHitLastStore
    from repro.obs.metrics import MetricsRegistry as Registry
    from repro.perf import parallel
    from repro.perf.batch import DEBatchSpec
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class DEFactory:
        def __call__(self, size):
            return DynamicExclusionCache(
                CacheGeometry(int(size), 4), store=IdealHitLastStore()
            )

        def batch_spec(self, size):
            return DEBatchSpec(CacheGeometry(int(size), 4))

    trace_key = parallel.TraceKey("gcc", "instruction", TRACE_REFS)
    trace_key.load()
    factory = DEFactory()
    cells = [(f"de-{kb}k", factory, kb * 1024, trace_key)
             for kb in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)]

    def sweep_seconds():
        start = time.perf_counter()
        outcomes = parallel.run_labeled_cells(
            cells, engine="batch", workers=1, journal=None, progress=False,
            batch_cells=len(cells),
        )
        assert all(o.ok for o in outcomes)
        return time.perf_counter() - start

    tracer = obs.Tracer(tmp_path / "batch")
    registry = Registry()
    sweep_seconds()  # warm
    bare = traced = float("inf")
    try:
        for _ in range(ROUNDS):
            bare = min(bare, sweep_seconds())
            obs.install_tracer(tracer)
            obs.install_registry(registry)
            try:
                traced = min(traced, sweep_seconds())
            finally:
                obs.uninstall_registry()
                obs.uninstall_tracer()
    finally:
        tracer.close()

    overhead = traced / bare - 1.0
    report = "\n".join(
        [
            f"Batched-tier observability overhead (gcc, {TRACE_REFS:,} "
            f"refs, {len(cells)} DE cells, best of {ROUNDS})",
            f"{'bare':<10} {bare * 1e3:>8.1f}ms",
            f"{'traced':<10} {traced * 1e3:>8.1f}ms",
            f"overhead: {overhead:+.1%} (ceiling {MAX_OVERHEAD:.0%})",
        ]
    )
    (results_dir / "bench_obs_batch.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_obs_batch",
        config={
            "trace": "gcc",
            "refs": TRACE_REFS,
            "cells": len(cells),
            "rounds": ROUNDS,
            "max_overhead": MAX_OVERHEAD,
        },
        metrics={
            "batch_bare_rps": len(cells) * TRACE_REFS / bare,
            "batch_traced_vs_bare_speedup": bare / traced,
        },
    )
    print(f"\n{report}\n")
    assert overhead < MAX_OVERHEAD, (
        f"batched tier tracing overhead {overhead:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} ceiling"
    )


def test_fleet_backend_tracing_overhead(results_dir, tmp_path):
    """Distributed tracing across the fleet must clear the same 5%.

    With a tracer installed, every fleet cell request carries the
    propagation context and every reply ships the worker's spans and
    metric deltas home for merging — per-cell wire and merge cost the
    bare run doesn't pay.  This times a whole fleet sweep (2 local
    worker subprocesses, pool spin-up included, exactly what a traced
    ``--backend fleet`` run pays) bare vs live-traced, interleaved
    best-of-rounds.
    """
    from repro.experiments.common import StandardFactory
    from repro.obs.metrics import MetricsRegistry as Registry
    from repro.perf import parallel

    trace_key = parallel.TraceKey("gcc", "instruction", TRACE_REFS)
    trace_key.load()
    # StandardFactory is importable from the worker subprocesses (a
    # closure here would not unpickle there); sizes must keep the set
    # count a power of two.
    factory = StandardFactory("dynamic-exclusion", 4)
    cells = [(f"de@{1024 << i}", factory, 1024 << i, trace_key)
             for i in range(8)]

    def sweep_seconds():
        start = time.perf_counter()
        outcomes = parallel.run_labeled_cells(
            cells, engine="fast", workers=2, backend="fleet",
            journal=None, progress=False,
        )
        assert all(o.ok for o in outcomes)
        return time.perf_counter() - start

    tracer = obs.Tracer(tmp_path / "fleet")
    registry = Registry()
    sweep_seconds()  # warm (worker spawn path, trace cache, kernels)
    bare = traced = float("inf")
    try:
        for _ in range(ROUNDS):
            bare = min(bare, sweep_seconds())
            obs.install_tracer(tracer)
            obs.install_registry(registry)
            try:
                traced = min(traced, sweep_seconds())
            finally:
                obs.uninstall_registry()
                obs.uninstall_tracer()
    finally:
        tracer.close()

    overhead = traced / bare - 1.0
    report = "\n".join(
        [
            f"Fleet-backend observability overhead (gcc, {TRACE_REFS:,} "
            f"refs, {len(cells)} DE cells, 2 workers, best of {ROUNDS})",
            f"{'bare':<10} {bare * 1e3:>8.1f}ms",
            f"{'traced':<10} {traced * 1e3:>8.1f}ms",
            f"overhead: {overhead:+.1%} (ceiling {MAX_OVERHEAD:.0%})",
        ]
    )
    (results_dir / "bench_obs_fleet.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_obs_fleet",
        config={
            "trace": "gcc",
            "refs": TRACE_REFS,
            "cells": len(cells),
            "workers": 2,
            "rounds": ROUNDS,
            "max_overhead": MAX_OVERHEAD,
        },
        metrics={
            "fleet_bare_rps": len(cells) * TRACE_REFS / bare,
            "fleet_traced_vs_bare_speedup": bare / traced,
        },
    )
    print(f"\n{report}\n")
    assert overhead < MAX_OVERHEAD, (
        f"fleet backend tracing overhead {overhead:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} ceiling"
    )
