"""Batched-tier speedup benchmark: ``--engine batch`` vs ``--engine fast``.

Runs the same DE size sweep — every power-of-two size from 512B to 2MB,
both cold hit-last polarities, one shared gcc data trace — through the
sweep runner twice, once per engine, and reports sweep-level throughput
(cell-refs/sec: references simulated across all cells per wall-clock
second).  The batched tier groups the whole sweep into one kernel
invocation that shares the trace factorisation across cells, so the
measured ratio is the end-to-end payoff of the cell-axis vectorization,
not a kernel-only microbenchmark.

The optimisation's recorded target is a 3x sweep-level speedup at
matched geometry count (measured 3.2-3.8x on the development host);
the assertion floor below is deliberately looser so timer noise on a
loaded CI runner keeps the gate honest without flaking.  Regressions
against the recorded number are caught by
``tools/check_bench_regression.py`` over ``bench_batch.json``.
"""

import time
from dataclasses import dataclass

from conftest import write_json_result

from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.perf import parallel
from repro.perf.batch import DEBatchSpec

TRACE_REFS = 200_000
SIZES = [512 * 2**i for i in range(13)]  # 512B .. 2MB
ROUNDS = 3
SPEEDUP_FLOOR = 2.0  # CI-safe; the recorded target is 3x


@dataclass(frozen=True)
class DEFactory:
    """Picklable DE factory speaking the ``batch_spec`` protocol."""

    default_hit_last: bool = True

    def __call__(self, size):
        return DynamicExclusionCache(
            CacheGeometry(int(size), 4),
            store=IdealHitLastStore(default=self.default_hit_last),
        )

    def batch_spec(self, size):
        return DEBatchSpec(
            CacheGeometry(int(size), 4),
            default_hit_last=self.default_hit_last,
        )


def _cells(trace_key):
    return [
        (f"de-{'hit' if default else 'miss'}-{size}", DEFactory(default),
         size, trace_key)
        for default in (True, False)
        for size in SIZES
    ]


def _best_sweep_seconds(cells, engine, batch_cells=None):
    """Minimum sweep wall-clock over ROUNDS runs, plus the outcomes."""
    best = float("inf")
    outcomes = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        outcomes = parallel.run_labeled_cells(
            cells, engine=engine, workers=1, journal=None, progress=False,
            batch_cells=batch_cells,
        )
        best = min(best, time.perf_counter() - start)
    assert all(o.ok for o in outcomes), [o.error for o in outcomes if not o.ok]
    return best, outcomes


def test_batch_sweep_speedup(results_dir):
    trace_key = parallel.TraceKey("gcc", "data", TRACE_REFS)
    refs = len(trace_key.load())  # prime the memo; both engines start warm
    cells = _cells(trace_key)

    fast_s, fast_out = _best_sweep_seconds(cells, "fast")
    batch_s, batch_out = _best_sweep_seconds(
        cells, "batch", batch_cells=len(cells)
    )

    # The batched tier is a scheduling strategy, not a different
    # simulation: every cell must agree exactly with the fast tier.
    assert [o.miss_rate for o in batch_out] == [o.miss_rate for o in fast_out]

    cell_refs = refs * len(cells)
    speedup = fast_s / batch_s
    report = "\n".join(
        [
            f"Batched-tier sweep speedup (gcc data, {refs:,} refs, "
            f"{len(cells)} DE cells 512B-2MB x2 polarities, "
            f"best of {ROUNDS})",
            f"{'engine':<8} {'seconds':>9} {'cell-refs/s':>13}",
            f"{'fast':<8} {fast_s:>9.3f} {cell_refs / fast_s / 1e6:>11.1f} M",
            f"{'batch':<8} {batch_s:>9.3f} {cell_refs / batch_s / 1e6:>11.1f} M",
            f"sweep speedup: {speedup:.2f}x (recorded target: 3x)",
        ]
    )
    (results_dir / "bench_batch.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_batch",
        config={
            "trace": "gcc", "kind": "data", "refs": refs,
            "cells": len(cells), "sizes": SIZES, "rounds": ROUNDS,
        },
        metrics={
            "fast_rps": cell_refs / fast_s,
            "batch_rps": cell_refs / batch_s,
            "sweep_speedup": speedup,
        },
    )
    print(f"\n{report}\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched sweep speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
