"""Shared infrastructure for the figure benchmarks.

Each ``bench_figXX`` module times the figure's simulation pass once
(``benchmark.pedantic`` with a single round — these are minutes-scale
workloads, not microbenchmarks) and writes the regenerated table/chart
to ``benchmarks/results/<id>.txt`` so the paper comparison in
EXPERIMENTS.md can be refreshed from the artefacts.

Trace length follows REPRO_TRACE_SCALE (default 1.0 = 200k references
per benchmark trace).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def figure_bench(benchmark, results_dir):
    """Run a figure module once under the benchmark timer and persist
    its report."""

    def _run(module, experiment_id: str):
        benchmark.pedantic(module.run, rounds=1, iterations=1)
        report = module.report()
        (results_dir / f"{experiment_id}.txt").write_text(report + "\n")
        print(f"\n{report}\n")
        return report

    return _run
