"""Shared infrastructure for the figure benchmarks.

Each ``bench_figXX`` module times the figure's simulation pass once
(``benchmark.pedantic`` with a single round — these are minutes-scale
workloads, not microbenchmarks) and writes the regenerated table/chart
to ``benchmarks/results/<id>.txt`` so the paper comparison in
EXPERIMENTS.md can be refreshed from the artefacts.

Trace length follows REPRO_TRACE_SCALE (default 1.0 = 200k references
per benchmark trace).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_json_result(
    results_dir: pathlib.Path,
    name: str,
    config: dict,
    metrics: dict,
    gate: "list[str] | None" = None,
) -> pathlib.Path:
    """Persist a machine-readable twin of a bench's ``.txt`` report.

    ``metrics`` holds the numbers (throughputs in refs/sec under
    ``*_rps`` keys, ratios under ``*speedup*`` keys); ``gate`` names the
    metrics that ``tools/check_bench_regression.py`` compares against
    the committed baseline (ratio metrics by default — absolute refs/sec
    depend on the host and would make the CI gate flaky).
    """
    path = results_dir / f"{name}.json"
    payload = {
        "benchmark": name,
        "config": config,
        "metrics": metrics,
        "gate": sorted(gate) if gate is not None
        else sorted(k for k in metrics if "speedup" in k),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def figure_bench(benchmark, results_dir):
    """Run a figure module once under the benchmark timer and persist
    its report."""

    def _run(module, experiment_id: str):
        benchmark.pedantic(module.run, rounds=1, iterations=1)
        report = module.report()
        (results_dir / f"{experiment_id}.txt").write_text(report + "\n")
        print(f"\n{report}\n")
        return report

    return _run
