"""Figure 5 improvement sweep: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig05.txt``.
"""

from repro.experiments import fig05_improvement as experiment


def test_fig05(figure_bench):
    report = figure_bench(experiment, "fig05")
    assert experiment.TITLE.split(":")[0] in report
