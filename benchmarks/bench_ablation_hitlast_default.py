"""Ablation: cold polarity of the ideal hit-last store.

``default=True`` ("assume a new word hit last time") admits unseen
words immediately; ``default=False`` makes the sticky bit gate them.
The paper's FSM analysis covers both initial states; assume-hit-style
behaviour wins on the SPEC mix because phase changes (between-loops
patterns) dominate cold behaviour.
"""

import statistics

from repro.analysis.report import format_table
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.experiments.common import REFERENCE_LINE, REFERENCE_SIZE, all_traces


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
    traces = all_traces("instruction")
    baseline = statistics.mean(
        DirectMappedCache(geometry).simulate(t).miss_rate for t in traces
    )
    rows = [("direct-mapped", baseline)]
    for default in [True, False]:
        rate = statistics.mean(
            DynamicExclusionCache(
                geometry, store=IdealHitLastStore(default=default)
            ).simulate(t).miss_rate
            for t in traces
        )
        rows.append((f"DE default={default}", rate))
    return rows


def test_ablation_hitlast_default(benchmark, results_dir):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "mean miss rate"],
        [[label, f"{100 * rate:.3f}%"] for label, rate in rows],
        title="Ablation: hit-last cold polarity (S=32KB, b=4B)",
    )
    (results_dir / "ablation_hitlast_default.txt").write_text(table + "\n")
    print(f"\n{table}\n")
    rates = dict(rows)
    assert rates["DE default=True"] < rates["direct-mapped"]
    assert rates["DE default=False"] < rates["direct-mapped"]
