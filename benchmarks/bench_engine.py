"""Fast-engine speedup benchmark: set-partitioned kernels vs reference.

Times both engines on the same 200k-reference gcc trace for every
kernel-backed policy family — direct-mapped, dynamic exclusion,
Belady-with-bypass (the figures' "optimal" curve, direct-mapped and
2-way), the last-line optimal variant, and LRU set-associative —
reports refs/sec and speedup, and persists the table to
``benchmarks/results/bench_engine.txt``.  The acceptance floors for
this optimisation are a 5x speedup on the direct-mapped and Belady
models and 2x on dynamic exclusion; the assertions below keep
regressions visible.
"""

import time

from conftest import write_json_result

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalCache, OptimalDirectMappedCache, OptimalLastLineCache
from repro.caches.set_associative import SetAssociativeCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.perf import engine
from repro.workloads.registry import instruction_trace

GEOMETRY = CacheGeometry(32 * 1024, 4)
GEOMETRY_2WAY = CacheGeometry(32 * 1024, 4, associativity=2)
GEOMETRY_B16 = CacheGeometry(32 * 1024, 16)
TRACE_REFS = 200_000
ROUNDS = 3

#: label -> (model factory, minimum accepted speedup).
MODELS = {
    "direct-mapped": (lambda: DirectMappedCache(GEOMETRY), 5.0),
    "dynamic-exclusion": (lambda: DynamicExclusionCache(GEOMETRY), 2.0),
    "optimal": (lambda: OptimalDirectMappedCache(GEOMETRY), 5.0),
    "optimal-2way": (lambda: OptimalCache(GEOMETRY_2WAY), 2.0),
    "optimal-last-line": (lambda: OptimalLastLineCache(GEOMETRY_B16), 3.0),
    "lru-2way": (lambda: SetAssociativeCache(GEOMETRY_2WAY), 3.0),
}


def _best_seconds(make_cache, trace, engine_name):
    """Minimum wall-clock over ROUNDS runs, fresh model each run."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        cache = make_cache()
        start = time.perf_counter()
        result = engine.simulate(cache, trace, engine=engine_name)
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(label, make_cache, trace):
    assert engine.has_kernel(make_cache()), f"{label}: no fast kernel registered"
    ref_s, ref_stats = _best_seconds(make_cache, trace, "reference")
    fast_s, fast_stats = _best_seconds(make_cache, trace, "fast")
    assert fast_stats == ref_stats, f"{label}: engines disagree"
    return {
        "label": label,
        "ref_rps": len(trace) / ref_s,
        "fast_rps": len(trace) / fast_s,
        "speedup": ref_s / fast_s,
    }


def test_engine_speedup(results_dir):
    trace = instruction_trace("gcc", TRACE_REFS)
    rows = [
        _measure(label, make_cache, trace)
        for label, (make_cache, _) in MODELS.items()
    ]

    lines = [
        f"Engine speedup (gcc, {TRACE_REFS:,} refs, 32KB, b=4B "
        f"except optimal-last-line b=16B, best of {ROUNDS})",
        f"{'policy':<18} {'reference':>14} {'fast':>14} {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['label']:<18} "
            f"{row['ref_rps'] / 1e6:>11.1f} M/s "
            f"{row['fast_rps'] / 1e6:>11.1f} M/s "
            f"{row['speedup']:>7.1f}x"
        )
    report = "\n".join(lines)
    (results_dir / "bench_engine.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_engine",
        config={"trace": "gcc", "refs": TRACE_REFS, "rounds": ROUNDS},
        metrics={
            key: row[field]
            for row in rows
            for key, field in [
                (f"{row['label']}.reference_rps", "ref_rps"),
                (f"{row['label']}.fast_rps", "fast_rps"),
                (f"{row['label']}.speedup", "speedup"),
            ]
        },
    )
    print(f"\n{report}\n")

    by_label = {row["label"]: row["speedup"] for row in rows}
    for label, (_, floor) in MODELS.items():
        assert by_label[label] >= floor, (
            f"{label}: speedup {by_label[label]:.1f}x below the {floor}x floor"
        )


def test_sweep_runner_overhead(results_dir, tmp_path):
    """The resilient envelope layer must cost ~nothing over an inline
    loop, and a warm journal must replay instead of recomputing.

    Times the same size sweep three ways — a bare inline loop, the
    envelope runner with a cold journal, and the envelope runner with a
    warm journal — asserts all three agree on every miss rate, and
    persists the comparison to ``benchmarks/results/bench_sweep_runner.txt``.
    """
    from repro.experiments.common import StandardFactory
    from repro.perf import parallel

    trace_key = parallel.TraceKey("gcc", "instruction", TRACE_REFS)
    sizes = [kb * 1024 for kb in (1, 4, 16, 64, 256)]
    factory = StandardFactory("direct-mapped", 4)
    cells = [("direct-mapped", factory, size, trace_key) for size in sizes]

    trace_key.load()  # prime the trace memo so every variant pays zero
    start = time.perf_counter()
    inline = [
        parallel.simulate_cell(factory, size, trace_key, engine="fast")
        for size in sizes
    ]
    inline_s = time.perf_counter() - start

    start = time.perf_counter()
    cold = parallel.run_labeled_cells(
        cells, engine="fast", workers=1, journal=tmp_path
    )
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = parallel.run_labeled_cells(
        cells, engine="fast", workers=1, journal=tmp_path
    )
    warm_s = time.perf_counter() - start

    assert [o.miss_rate for o in cold] == inline
    assert [o.miss_rate for o in warm] == inline
    assert all(o.cached for o in warm), "warm journal run recomputed cells"

    overhead = 100.0 * (cold_s - inline_s) / inline_s
    report = "\n".join(
        [
            f"Sweep-runner overhead (gcc, {TRACE_REFS:,} refs, "
            f"{len(sizes)} sizes, fast engine, sequential)",
            f"{'variant':<24} {'seconds':>10}",
            f"{'inline loop':<24} {inline_s:>10.3f}",
            f"{'envelopes, cold journal':<24} {cold_s:>10.3f}",
            f"{'envelopes, warm journal':<24} {warm_s:>10.3f}",
            f"envelope overhead: {overhead:+.1f}% over inline",
        ]
    )
    (results_dir / "bench_sweep_runner.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_sweep_runner",
        config={"trace": "gcc", "refs": TRACE_REFS, "sizes": sizes},
        metrics={
            "inline_seconds": inline_s,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "envelope_overhead_pct": overhead,
        },
        gate=[],
    )
    print(f"\n{report}\n")

    # The warm run does no simulation at all; anything close to the
    # cold time means the journal replay is broken.
    assert warm_s < cold_s
