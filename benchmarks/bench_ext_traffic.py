"""Extension experiment: memory traffic accounting.

The regenerated table is written to ``benchmarks/results/ext-traffic.txt``.
"""

from repro.experiments import ext_traffic as experiment


def test_ext_traffic(figure_bench):
    report = figure_bench(experiment, "ext-traffic")
    assert "fetch" in report
