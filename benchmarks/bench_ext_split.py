"""Extension experiment: split I/D vs unified caches.

The regenerated table/chart is written to
``benchmarks/results/ext-split.txt``.
"""

from repro.experiments import ext_split as experiment


def test_ext_split(figure_bench):
    report = figure_bench(experiment, "ext-split")
    assert "unified" in report
