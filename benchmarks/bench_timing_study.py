"""Timing study: the paper's Section 1-2 motivation, quantified.

Direct-mapped caches win *overall* because their hit time is lower
(Hill '87, Przybylski '88) — dynamic exclusion then removes much of the
miss-rate disadvantage without touching the hit path.  This bench
computes AMAT for direct-mapped, direct-mapped + dynamic exclusion, and
2-way set-associative caches using the measured miss rates and an
era-typical timing model, plus the break-even hit time the 2-way design
would need.
"""

import statistics

from repro.analysis.report import format_table
from repro.analysis.timing import DEFAULT_MODELS, amat_comparison, breakeven_hit_time
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.set_associative import SetAssociativeCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.experiments.common import REFERENCE_LINE, REFERENCE_SIZE, all_traces


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
    two_way_geometry = CacheGeometry(
        REFERENCE_SIZE, REFERENCE_LINE, associativity=2
    )
    traces = all_traces("instruction")
    miss_rates = {
        "direct-mapped": statistics.mean(
            DirectMappedCache(geometry).simulate(t).miss_rate for t in traces
        ),
        "dynamic-exclusion": statistics.mean(
            DynamicExclusionCache(geometry, store=IdealHitLastStore()).simulate(t).miss_rate
            for t in traces
        ),
        "2-way": statistics.mean(
            SetAssociativeCache(two_way_geometry).simulate(t).miss_rate for t in traces
        ),
    }
    return miss_rates, amat_comparison(miss_rates)


def test_timing_study(benchmark, results_dir):
    miss_rates, amats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            label,
            f"{100 * miss_rates[label]:.3f}%",
            f"{DEFAULT_MODELS[label].hit_time:.1f}",
            f"{amats[label]:.3f}",
        ]
        for label in miss_rates
    ]
    breakeven = breakeven_hit_time(
        DEFAULT_MODELS["dynamic-exclusion"],
        miss_rates["dynamic-exclusion"],
        miss_rates["2-way"],
    )
    table = format_table(
        ["configuration", "miss rate", "hit time (cy)", "AMAT (cy)"],
        rows,
        title="Timing study: AMAT at S=32KB, b=4B (miss penalty 20 cycles)",
    )
    note = (
        f"\n2-way associativity only beats DM+DE if its hit time stays "
        f"below {breakeven:.2f} cycles."
    )
    (results_dir / "timing_study.txt").write_text(table + note + "\n")
    print(f"\n{table}{note}\n")
    # DE must improve the direct-mapped AMAT.
    assert amats["dynamic-exclusion"] < amats["direct-mapped"]
