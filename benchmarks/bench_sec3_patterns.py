"""Section 3 analytic patterns: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/sec3.txt``.
"""

from repro.experiments import sec3_patterns as experiment


def test_sec3(figure_bench):
    report = figure_bench(experiment, "sec3")
    assert experiment.TITLE.split(":")[0] in report
