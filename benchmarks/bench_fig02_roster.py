"""Figure 2 benchmark roster: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig02.txt``.
"""

from repro.experiments import fig02_benchmarks as experiment


def test_fig02(figure_bench):
    report = figure_bench(experiment, "fig02")
    assert experiment.TITLE.split(":")[0] in report
