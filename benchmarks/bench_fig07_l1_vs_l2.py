"""Figure 7 L1 vs L2 size: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig07.txt``.
"""

from repro.experiments import fig07_l1_vs_l2 as experiment


def test_fig07(figure_bench):
    report = figure_bench(experiment, "fig07")
    assert experiment.TITLE.split(":")[0] in report
