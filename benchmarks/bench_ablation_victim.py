"""Ablation: dynamic exclusion vs the related-work alternatives.

The paper's Section 2 positions DE against Jouppi's victim cache
("victim caches work well for data references where the number of
conflicting items may be small; for instruction references there are
usually many more conflicting items") and against set-associativity.
This bench runs all of them on both the instruction and the data mixes.
"""

import statistics

from repro.analysis.report import format_table
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.victim_exclusion import ExclusionVictimCache
from repro.experiments.common import REFERENCE_LINE, REFERENCE_SIZE, all_traces

CONFIGS = {
    "direct-mapped": lambda g: DirectMappedCache(g),
    "victim-4": lambda g: VictimCache(g, entries=4),
    "2-way LRU": lambda g: SetAssociativeCache(
        CacheGeometry(g.size, g.line_size, associativity=2)
    ),
    "dynamic-exclusion": lambda g: DynamicExclusionCache(
        g, store=IdealHitLastStore(default=True)
    ),
    "exclusion+victim-4": lambda g: ExclusionVictimCache(
        g, entries=4, store=IdealHitLastStore(default=True)
    ),
}


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
    table = {}
    for kind in ["instruction", "data"]:
        traces = all_traces(kind)
        for label, factory in CONFIGS.items():
            rate = statistics.mean(
                factory(geometry).simulate(t).miss_rate for t in traces
            )
            table[(kind, label)] = rate
    return table


def test_ablation_victim_vs_exclusion(benchmark, results_dir):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label,
         f"{100 * table[('instruction', label)]:.3f}%",
         f"{100 * table[('data', label)]:.3f}%"]
        for label in CONFIGS
    ]
    text = format_table(
        ["configuration", "instruction miss rate", "data miss rate"],
        rows,
        title="Ablation: DE vs victim cache vs 2-way (S=32KB, b=4B)",
    )
    (results_dir / "ablation_victim.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    # DE must beat plain DM on instructions.
    assert table[("instruction", "dynamic-exclusion")] < table[("instruction", "direct-mapped")]
    # The victim cache must also improve on DM (it never loses).
    assert table[("instruction", "victim-4")] <= table[("instruction", "direct-mapped")]
    # The hybrid should not lose to exclusion alone.
    assert (
        table[("instruction", "exclusion+victim-4")]
        <= table[("instruction", "dynamic-exclusion")] + 1e-9
    )
