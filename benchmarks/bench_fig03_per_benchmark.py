"""Figure 3 per-benchmark miss rates: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig03.txt``.
"""

from repro.experiments import fig03_per_benchmark as experiment


def test_fig03(figure_bench):
    report = figure_bench(experiment, "fig03")
    assert experiment.TITLE.split(":")[0] in report
