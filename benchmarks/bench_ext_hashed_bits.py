"""Extension experiment: hashed hit-last table sizing.

The regenerated table/chart is written to
``benchmarks/results/ext-hashed.txt``.
"""

from repro.experiments import ext_hashed_bits as experiment


def test_ext_hashed(figure_bench):
    report = figure_bench(experiment, "ext-hashed")
    assert "bits/line" in report
