"""Figure 11 line-size sweep: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig11.txt``.
"""

from repro.experiments import fig11_line_size as experiment


def test_fig11(figure_bench):
    report = figure_bench(experiment, "fig11")
    assert experiment.TITLE.split(":")[0] in report
