"""Figure 12 improvement at b=16B: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig12.txt``.
"""

from repro.experiments import fig12_improvement_b16 as experiment


def test_fig12(figure_bench):
    report = figure_bench(experiment, "fig12")
    assert experiment.TITLE.split(":")[0] in report
