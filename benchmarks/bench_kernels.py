"""Microbenchmarks: raw simulation throughput of each cache model.

These are conventional pytest-benchmark timings (multiple rounds) over
a fixed 50k-reference trace, so simulator performance regressions show
up independently of the figure passes.

The final test folds the per-model minima into
``benchmarks/results/bench_kernels.json``: each model's throughput as a
ratio of the direct-mapped baseline measured in the same session.
Absolute refs/sec track the host clock, but the *relative* cost of the
exclusion/optimal/two-level models against direct-mapped is a property
of the simulators, so those ratios are what
``tools/check_bench_regression.py`` gates.
"""

import pytest

from conftest import write_json_result

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalDirectMappedCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import HashedHitLastStore, IdealHitLastStore
from repro.core.long_lines import make_long_line_exclusion_cache
from repro.hierarchy.two_level import TwoLevelCache
from repro.workloads.registry import instruction_trace

GEOMETRY = CacheGeometry(32 * 1024, 4)
TRACE_REFS = 50_000

#: Per-model best round seconds, filled by the throughput tests above
#: the JSON artefact test (pytest runs this module in definition
#: order, so the artefact sees every model timed in this session).
_MIN_SECONDS = {}


def _record(label, benchmark):
    _MIN_SECONDS[label] = benchmark.stats.stats.min


@pytest.fixture(scope="module")
def trace():
    return instruction_trace("gcc", TRACE_REFS)


def test_throughput_direct_mapped(benchmark, trace):
    stats = benchmark(lambda: DirectMappedCache(GEOMETRY).simulate(trace))
    assert stats.accesses == TRACE_REFS
    _record("direct_mapped", benchmark)


def test_throughput_two_way(benchmark, trace):
    geometry = CacheGeometry(32 * 1024, 4, associativity=2)
    stats = benchmark(lambda: SetAssociativeCache(geometry).simulate(trace))
    assert stats.accesses == TRACE_REFS
    _record("two_way", benchmark)


def test_throughput_victim(benchmark, trace):
    stats = benchmark(lambda: VictimCache(GEOMETRY, entries=4).simulate(trace))
    assert stats.accesses == TRACE_REFS
    _record("victim", benchmark)


def test_throughput_exclusion_ideal(benchmark, trace):
    def run():
        cache = DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore())
        return cache.simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS
    _record("exclusion_ideal", benchmark)


def test_throughput_exclusion_hashed(benchmark, trace):
    def run():
        store = HashedHitLastStore(GEOMETRY.num_lines * 4)
        return DynamicExclusionCache(GEOMETRY, store=store).simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS
    _record("exclusion_hashed", benchmark)


def test_throughput_exclusion_long_lines(benchmark, trace):
    geometry = CacheGeometry(32 * 1024, 16)
    def run():
        return make_long_line_exclusion_cache(geometry).simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS
    _record("exclusion_long_lines", benchmark)


def test_throughput_optimal(benchmark, trace):
    stats = benchmark(lambda: OptimalDirectMappedCache(GEOMETRY).simulate(trace))
    assert stats.accesses == TRACE_REFS
    _record("optimal", benchmark)


def test_throughput_two_level(benchmark, trace):
    l2 = CacheGeometry(256 * 1024, 4)
    def run():
        return TwoLevelCache(GEOMETRY, l2, strategy="assume-miss").simulate(trace)

    assert benchmark(run).l1.accesses == TRACE_REFS
    _record("two_level", benchmark)


def test_throughput_trace_generation(benchmark):
    trace = benchmark(lambda: instruction_trace("espresso", 20_000))
    assert len(trace) == 20_000


def test_kernel_ratios_artifact(results_dir):
    """Persist per-model throughput relative to direct-mapped.

    ``<model>_vs_direct_mapped_speedup`` is direct-mapped's best round
    over the model's best round: 1.0 means "as fast as the baseline",
    smaller means proportionally slower.  Host-independent, so every
    ratio is gated.
    """
    if "direct_mapped" not in _MIN_SECONDS or len(_MIN_SECONDS) < 2:
        pytest.skip("needs the throughput tests run in the same session")
    baseline = _MIN_SECONDS["direct_mapped"]
    metrics = {
        "direct_mapped_rps": TRACE_REFS / baseline,
    }
    for label, seconds in _MIN_SECONDS.items():
        if label == "direct_mapped":
            continue
        metrics[f"{label}_vs_direct_mapped_speedup"] = baseline / seconds
    write_json_result(
        results_dir,
        "bench_kernels",
        config={"trace": "gcc", "refs": TRACE_REFS, "geometry": "32KB b=4B"},
        metrics=metrics,
    )
