"""Microbenchmarks: raw simulation throughput of each cache model.

These are conventional pytest-benchmark timings (multiple rounds) over
a fixed 50k-reference trace, so simulator performance regressions show
up independently of the figure passes.
"""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalDirectMappedCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import HashedHitLastStore, IdealHitLastStore
from repro.core.long_lines import make_long_line_exclusion_cache
from repro.hierarchy.two_level import TwoLevelCache
from repro.workloads.registry import instruction_trace

GEOMETRY = CacheGeometry(32 * 1024, 4)
TRACE_REFS = 50_000


@pytest.fixture(scope="module")
def trace():
    return instruction_trace("gcc", TRACE_REFS)


def test_throughput_direct_mapped(benchmark, trace):
    stats = benchmark(lambda: DirectMappedCache(GEOMETRY).simulate(trace))
    assert stats.accesses == TRACE_REFS


def test_throughput_two_way(benchmark, trace):
    geometry = CacheGeometry(32 * 1024, 4, associativity=2)
    stats = benchmark(lambda: SetAssociativeCache(geometry).simulate(trace))
    assert stats.accesses == TRACE_REFS


def test_throughput_victim(benchmark, trace):
    stats = benchmark(lambda: VictimCache(GEOMETRY, entries=4).simulate(trace))
    assert stats.accesses == TRACE_REFS


def test_throughput_exclusion_ideal(benchmark, trace):
    def run():
        cache = DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore())
        return cache.simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS


def test_throughput_exclusion_hashed(benchmark, trace):
    def run():
        store = HashedHitLastStore(GEOMETRY.num_lines * 4)
        return DynamicExclusionCache(GEOMETRY, store=store).simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS


def test_throughput_exclusion_long_lines(benchmark, trace):
    geometry = CacheGeometry(32 * 1024, 16)
    def run():
        return make_long_line_exclusion_cache(geometry).simulate(trace)

    assert benchmark(run).accesses == TRACE_REFS


def test_throughput_optimal(benchmark, trace):
    stats = benchmark(lambda: OptimalDirectMappedCache(GEOMETRY).simulate(trace))
    assert stats.accesses == TRACE_REFS


def test_throughput_two_level(benchmark, trace):
    l2 = CacheGeometry(256 * 1024, 4)
    def run():
        return TwoLevelCache(GEOMETRY, l2, strategy="assume-miss").simulate(trace)

    assert benchmark(run).l1.accesses == TRACE_REFS


def test_throughput_trace_generation(benchmark):
    trace = benchmark(lambda: instruction_trace("espresso", 20_000))
    assert len(trace) == 20_000
