"""Figure 8 L2 miss rates: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig08.txt``.
"""

from repro.experiments import fig08_l2_missrate as experiment


def test_fig08(figure_bench):
    report = figure_bench(experiment, "fig08")
    assert experiment.TITLE.split(":")[0] in report
