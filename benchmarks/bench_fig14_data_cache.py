"""Figure 14 data-cache sweep: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig14.txt``.
"""

from repro.experiments import fig14_data_cache as experiment


def test_fig14(figure_bench):
    report = figure_bench(experiment, "fig14")
    assert experiment.TITLE.split(":")[0] in report
