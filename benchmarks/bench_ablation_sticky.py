"""Ablation: number of sticky levels (the McF91a multi-sticky extension).

The paper (Section 5) reports that extra sticky bits give *mixed*
results: they rescue the three-way conflict pattern but add startup
time and hurt other patterns.  This bench quantifies that on the SPEC
mix and on the three-way microkernel.
"""

import statistics

from repro.analysis.report import format_table
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.experiments.common import REFERENCE_LINE, REFERENCE_SIZE, all_traces
from repro.workloads.patterns import three_way

LEVELS = [1, 2, 3, 4]


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
    traces = all_traces("instruction")
    rows = []
    for levels in LEVELS:
        rates = []
        for trace in traces:
            cache = DynamicExclusionCache(
                geometry, store=IdealHitLastStore(default=True), sticky_levels=levels
            )
            rates.append(cache.simulate(trace).miss_rate)
        kernel = DynamicExclusionCache(
            geometry, store=IdealHitLastStore(default=False), sticky_levels=levels
        )
        kernel_misses = kernel.simulate(three_way(geometry, trips=50)).misses
        rows.append((levels, statistics.mean(rates), kernel_misses))
    return rows


def test_ablation_sticky_levels(benchmark, results_dir):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["sticky levels", "mean SPEC miss rate", "(abc)^50 misses"],
        [[lv, f"{100 * rate:.3f}%", misses] for lv, rate, misses in rows],
        title="Ablation: sticky depth (S=32KB, b=4B)",
    )
    (results_dir / "ablation_sticky.txt").write_text(table + "\n")
    print(f"\n{table}\n")
    # More sticky levels must help the pathological three-way kernel.
    assert rows[-1][2] < rows[0][2]
