"""Fleet backend benchmark: full-registry sweep, fleet workers vs inline.

Runs the registry-representative grid — every SPEC trace x the three
standard curves x the Figure-4 size sweep — once through the ``inline``
backend and once through the ``fleet`` backend (long-lived
``repro worker`` subprocesses speaking NDJSON), asserts the two
backends agree on every miss rate, and records the wall-clock ratio as
the gated ``fleet_speedup``.

The worker count adapts to the host (``min(2, cpu_count)``), so the
ratio means different things on different machines — and regresses the
same way on both:

* on a single-core runner one fleet worker races the inline loop, so
  the ratio isolates the fleet path's dispatch cost (pickling, NDJSON
  framing, worker spawn) and sits a little below 1.0;
* on a multi-core runner two workers genuinely scale out and the ratio
  clears 1.0.

Either way, a drop beyond ``tools/check_bench_regression.py``'s
tolerance means the fleet backend got slower relative to inline on the
same host, which is exactly the regression worth catching.  Each timed
round clears the parent's trace memo so both backends pay trace
generation (fleet workers are fresh processes and always do).
"""

import os
import time

from conftest import write_json_result

from repro.experiments.common import (
    SIZE_SWEEP_KB,
    StandardFactory,
    all_trace_keys,
    clear_trace_cache,
    max_refs,
)
from repro.perf import parallel

CURVES = ["direct-mapped", "dynamic-exclusion", "optimal"]
ROUNDS = 2


def _grid():
    """One cell per (trace, curve, size), grouped by trace so a fleet
    worker's consecutive cells reuse its per-process trace memo."""
    return [
        (f"{curve}-{key.name}-{kb}k", StandardFactory(curve, 4), kb * 1024, key)
        for key in all_trace_keys()
        for curve in CURVES
        for kb in SIZE_SWEEP_KB
    ]


def _best_seconds(cells, **kwargs):
    """Minimum wall-clock over ROUNDS cold runs of the whole grid."""
    best = float("inf")
    outcomes = None
    for _ in range(ROUNDS):
        clear_trace_cache()
        start = time.perf_counter()
        outcomes = parallel.run_labeled_cells(
            cells, engine="fast", journal=None, progress=False, **kwargs
        )
        best = min(best, time.perf_counter() - start)
        bad = [o for o in outcomes if not o.ok]
        assert not bad, f"{len(bad)} cells failed: {bad[0].error}"
    return best, outcomes


def test_fleet_speedup(results_dir):
    cells = _grid()
    workers = min(2, os.cpu_count() or 1)
    refs = max_refs()

    inline_s, inline_out = _best_seconds(cells, backend="inline")
    fleet_s, fleet_out = _best_seconds(
        cells, backend="fleet", workers=workers
    )

    assert [o.miss_rate for o in fleet_out] == [
        o.miss_rate for o in inline_out
    ], "fleet and inline backends disagree on miss rates"

    total_refs = len(cells) * refs
    speedup = inline_s / fleet_s
    report = "\n".join(
        [
            f"Fleet backend (full registry, {len(cells)} cells, "
            f"{refs:,} refs/trace, fast engine, {workers} worker(s), "
            f"best of {ROUNDS})",
            f"{'backend':<12} {'seconds':>10} {'refs/sec':>14}",
            f"{'inline':<12} {inline_s:>10.3f} "
            f"{total_refs / inline_s / 1e6:>11.1f} M/s",
            f"{'fleet':<12} {fleet_s:>10.3f} "
            f"{total_refs / fleet_s / 1e6:>11.1f} M/s",
            f"fleet speedup: {speedup:.2f}x",
        ]
    )
    (results_dir / "bench_fleet.txt").write_text(report + "\n")
    write_json_result(
        results_dir,
        "bench_fleet",
        config={
            "cells": len(cells),
            "curves": CURVES,
            "refs": refs,
            "rounds": ROUNDS,
            "sizes_kb": SIZE_SWEEP_KB,
            "workers": workers,
            "cpus": os.cpu_count(),
        },
        metrics={
            "inline_rps": total_refs / inline_s,
            "fleet_rps": total_refs / fleet_s,
            "fleet_speedup": speedup,
        },
    )
    print(f"\n{report}\n")

    # A fleet run that loses badly to inline even after amortising the
    # grid means dispatch overhead is pathological, whatever the host.
    assert speedup > 0.5, (
        f"fleet backend {speedup:.2f}x vs inline — dispatch overhead "
        f"dominates even a {len(cells)}-cell grid"
    )
