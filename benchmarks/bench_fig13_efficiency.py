"""Figure 13 efficiency table: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig13.txt``.
"""

from repro.experiments import fig13_efficiency as experiment


def test_fig13(figure_bench):
    report = figure_bench(experiment, "fig13")
    assert experiment.TITLE.split(":")[0] in report
