"""Warm-vs-cold serving latency for the result-store daemon.

Boots a :class:`~repro.serve.ResultServer` on an ephemeral port over a
fresh store, then times the same ``POST /run`` twice end to end through
the HTTP client:

* **cold** — the store is empty, every cell is simulated;
* **warm** — the identical request again: the plan resolves every cell
  key against the store, zero simulations run, and the response is
  assembled from the index.

The ratio is the economic claim of ``repro serve`` — a repeat query
costs index lookups, not simulation — so it is the gated metric in
``bench_serve.json`` (warm latency is min-of-N to keep a loaded CI
runner from flaking the gate; the cold run is the one-time cost and is
reported but not gated on its absolute value).
"""

import time

from conftest import write_json_result

from repro.serve import ResultServer, ServeClient
from repro.store import open_store

SPEC = "fig04"
WARM_ROUNDS = 5
SPEEDUP_FLOOR = 5.0  # measured ~40x at scale 0.05; generous CI margin


def test_serve_warm_vs_cold(results_dir, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.05")
    store = open_store(tmp_path / "store")
    with ResultServer(store, port=0) as server:
        client = ServeClient(server.url)

        start = time.perf_counter()
        cold = client.run(SPEC)
        cold_seconds = time.perf_counter() - start
        assert cold["manifest"]["cells_computed"] > 0

        warm_seconds = float("inf")
        for _ in range(WARM_ROUNDS):
            start = time.perf_counter()
            warm = client.run(SPEC)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm["manifest"]["cells_computed"] == 0

    assert cold["result"] == warm["result"]
    speedup = cold_seconds / warm_seconds
    print(
        f"\ncold: {cold_seconds:.3f}s  warm(best of {WARM_ROUNDS}): "
        f"{warm_seconds:.3f}s  speedup: {speedup:.1f}x"
    )
    write_json_result(
        results_dir,
        "bench_serve",
        config={
            "spec": SPEC,
            "cells": cold["manifest"]["cells_total"],
            "trace_scale": 0.05,
            "warm_rounds": WARM_ROUNDS,
        },
        metrics={
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_vs_cold_speedup": round(speedup, 2),
        },
        gate=["warm_vs_cold_speedup"],
    )
    assert speedup > SPEEDUP_FLOOR, (
        f"warm serving only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
