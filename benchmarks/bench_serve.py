"""Serving-tier latency benchmarks for the result-store daemon.

Four legs, each gating the machine-independent ratio that carries its
economic claim (``tools/check_bench_regression.py`` compares them
against the committed baselines):

* **warm vs cold** (``bench_serve.json``) — the same ``POST /run``
  twice: cold simulates every cell, warm answers from the index with
  zero simulations.  Gated: ``warm_vs_cold_speedup``.
* **compaction** (``bench_store_compact.json``) — a store whose journal
  holds many superseded lines per key loads much faster from compacted
  generation shards than by replaying the full append history.  Gated:
  ``compact_load_speedup``.
* **negative cache** (``bench_serve_negcache.json``) — a spec whose
  evaluator fails *after* the full simulation: the cold failure pays
  for every reference, the repeat failure is answered from the
  ``sweep-cell-error`` index.  Gated: ``negcache_speedup``.
* **ETag/304** (``bench_serve_etag.json``) — a conditional
  ``GET /spec`` matching the server's ETag skips cell planning (key
  hashing for every cell) and body serialisation.  Gated:
  ``etag_304_speedup``.

Warm/repeat latencies are min-of-N to keep a loaded CI runner from
flaking the gates; the cold/first costs are reported but not gated on
their absolute values.
"""

import time
from dataclasses import dataclass

from conftest import write_json_result

from repro.experiments.spec import ExperimentSpec, register
from repro.perf import engine as engine_mod
from repro.serve import ResultServer, ServeClient, ServeError
from repro.store import open_store

SPEC = "fig04"
WARM_ROUNDS = 5
SPEEDUP_FLOOR = 5.0  # measured ~40x at scale 0.05; generous CI margin


def test_serve_warm_vs_cold(results_dir, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.05")
    store = open_store(tmp_path / "store")
    with ResultServer(store, port=0) as server:
        client = ServeClient(server.url)

        start = time.perf_counter()
        cold = client.run(SPEC)
        cold_seconds = time.perf_counter() - start
        assert cold["manifest"]["cells_computed"] > 0

        warm_seconds = float("inf")
        for _ in range(WARM_ROUNDS):
            start = time.perf_counter()
            warm = client.run(SPEC)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm["manifest"]["cells_computed"] == 0

    assert cold["result"] == warm["result"]
    speedup = cold_seconds / warm_seconds
    print(
        f"\ncold: {cold_seconds:.3f}s  warm(best of {WARM_ROUNDS}): "
        f"{warm_seconds:.3f}s  speedup: {speedup:.1f}x"
    )
    write_json_result(
        results_dir,
        "bench_serve",
        config={
            "spec": SPEC,
            "cells": cold["manifest"]["cells_total"],
            "trace_scale": 0.05,
            "warm_rounds": WARM_ROUNDS,
        },
        metrics={
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_vs_cold_speedup": round(speedup, 2),
        },
        gate=["warm_vs_cold_speedup"],
    )
    assert speedup > SPEEDUP_FLOOR, (
        f"warm serving only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


# -- compaction: load from shards vs replay the append history -----------------

COMPACT_KEYS = 2000
COMPACT_REWRITES = 8  # journal lines per key; only the last one is live
LOAD_ROUNDS = 3


def test_store_compact_load(results_dir, tmp_path):
    store_dir = tmp_path / "store"
    store = open_store(store_dir)
    for round_ in range(COMPACT_REWRITES):
        store.record_many(
            [
                (f"{i:08x}bb", {"label": "dm"}, 0.1 + round_ / 100, 0.0)
                for i in range(COMPACT_KEYS)
            ]
        )

    before_seconds = float("inf")
    for _ in range(LOAD_ROUNDS):
        start = time.perf_counter()
        replayed = open_store(store_dir)
        before_seconds = min(before_seconds, time.perf_counter() - start)
    assert len(replayed) == COMPACT_KEYS
    assert replayed.stats().duplicates == COMPACT_KEYS * (COMPACT_REWRITES - 1)

    stats = store.compact()
    assert stats.entries == COMPACT_KEYS

    after_seconds = float("inf")
    for _ in range(LOAD_ROUNDS):
        start = time.perf_counter()
        compacted = open_store(store_dir)
        after_seconds = min(after_seconds, time.perf_counter() - start)
    assert len(compacted) == COMPACT_KEYS
    assert compacted.stats().duplicates == 0
    assert compacted.metrics(f"{0:08x}bb") == replayed.metrics(f"{0:08x}bb")

    speedup = before_seconds / after_seconds
    print(
        f"\nload before compact: {before_seconds:.3f}s  after: "
        f"{after_seconds:.3f}s  speedup: {speedup:.1f}x  "
        f"({stats.bytes_before:,} -> {stats.bytes_after:,} bytes)"
    )
    write_json_result(
        results_dir,
        "bench_store_compact",
        config={
            "keys": COMPACT_KEYS,
            "rewrites": COMPACT_REWRITES,
            "shards": stats.shard_files,
            "load_rounds": LOAD_ROUNDS,
        },
        metrics={
            "load_before_seconds": round(before_seconds, 4),
            "load_after_seconds": round(after_seconds, 4),
            "bytes_before": stats.bytes_before,
            "bytes_after": stats.bytes_after,
            "compact_load_speedup": round(speedup, 2),
        },
        gate=["compact_load_speedup"],
    )
    assert speedup > 2.0, (
        f"compacted load only {speedup:.1f}x faster than journal replay"
    )


# -- negative cache: repeat failures answered from the index -------------------


@dataclass(frozen=True)
class FailAfterSimulation:
    """Evaluator that pays the full simulation, then fails the cell.

    Models the expensive failure mode the negative cache exists for: a
    cell that burns its whole trace budget before dying (an assertion
    after measurement, a post-hoc validation error).  Frozen dataclass
    so the cells stay picklable and journalable.
    """

    def __call__(self, model, trace, engine):
        engine_mod.simulate(model, trace, engine=engine)
        raise RuntimeError("post-simulation validation failed (bench)")


@dataclass(frozen=True)
class _BenchDirectFactory:
    line_size: int = 4

    def __call__(self, size):
        from repro.caches.direct_mapped import DirectMappedCache
        from repro.caches.geometry import CacheGeometry

        return DirectMappedCache(CacheGeometry(int(size), self.line_size))


@dataclass(frozen=True)
class _BenchTraces:
    kind: str = "instruction"

    def for_parameter(self, parameter):
        from repro.experiments.common import all_trace_keys

        return all_trace_keys(self.kind)[:2]


NEGCACHE_SPEC = register(
    ExperimentSpec(
        id="bench-serve-negcache",
        title="bench: expensive failures for the negative cache",
        parameter_name="cache size",
        parameters=(1024, 2048, 4096, 8192),
        factories=(("dm", _BenchDirectFactory()),),
        traces=_BenchTraces(),
        evaluator=FailAfterSimulation(),
        hidden=True,
    )
)


def test_serve_negative_cache(results_dir, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
    store = open_store(tmp_path / "store")
    with ResultServer(store, port=0, neg_ttl=3600.0) as server:
        client = ServeClient(server.url)

        start = time.perf_counter()
        try:
            client.run(NEGCACHE_SPEC.id)
            raise AssertionError("negcache bench spec unexpectedly succeeded")
        except ServeError:
            pass
        cold_seconds = time.perf_counter() - start
        assert server.store.error_keys(), "no failures recorded"

        repeat_seconds = float("inf")
        for _ in range(WARM_ROUNDS):
            start = time.perf_counter()
            try:
                client.run(NEGCACHE_SPEC.id)
                raise AssertionError("cached failure expected")
            except ServeError as exc:
                assert "cached failure" in str(exc)
            repeat_seconds = min(repeat_seconds, time.perf_counter() - start)

    speedup = cold_seconds / repeat_seconds
    print(
        f"\ncold failure: {cold_seconds:.3f}s  cached failure(best of "
        f"{WARM_ROUNDS}): {repeat_seconds:.3f}s  speedup: {speedup:.1f}x"
    )
    write_json_result(
        results_dir,
        "bench_serve_negcache",
        config={
            "spec": NEGCACHE_SPEC.id,
            "cells": len(NEGCACHE_SPEC.parameters) * 2,
            "trace_scale": 0.5,
            "warm_rounds": WARM_ROUNDS,
        },
        metrics={
            "cold_failure_seconds": round(cold_seconds, 4),
            "cached_failure_seconds": round(repeat_seconds, 4),
            "negcache_speedup": round(speedup, 2),
        },
        gate=["negcache_speedup"],
    )
    assert speedup > 3.0, (
        f"cached failure only {speedup:.1f}x faster than re-simulating"
    )


# -- ETag/304: conditional GET /spec skips planning ----------------------------

ETAG_ROUNDS = 20


def test_serve_etag_304(results_dir, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.05")
    store = open_store(tmp_path / "store")
    with ResultServer(store, port=0) as server:
        client = ServeClient(server.url)
        path = f"/spec/{SPEC}"

        full_seconds = float("inf")
        for _ in range(ETAG_ROUNDS):
            start = time.perf_counter()
            client._get_json(path)  # unconditional: plans every cell
            full_seconds = min(full_seconds, time.perf_counter() - start)

        client.spec(SPEC)  # prime the client's ETag cache
        conditional_seconds = float("inf")
        for _ in range(ETAG_ROUNDS):
            start = time.perf_counter()
            client.spec(SPEC)  # If-None-Match -> 304 from local cache
            conditional_seconds = min(
                conditional_seconds, time.perf_counter() - start
            )
        assert client.not_modified >= ETAG_ROUNDS

    speedup = full_seconds / conditional_seconds
    print(
        f"\nunconditional GET {path}: {full_seconds * 1000:.2f}ms  "
        f"304: {conditional_seconds * 1000:.2f}ms  speedup: {speedup:.1f}x"
    )
    write_json_result(
        results_dir,
        "bench_serve_etag",
        config={"spec": SPEC, "rounds": ETAG_ROUNDS, "trace_scale": 0.05},
        metrics={
            "full_get_seconds": round(full_seconds, 5),
            "not_modified_seconds": round(conditional_seconds, 5),
            "etag_304_speedup": round(speedup, 2),
        },
        gate=["etag_304_speedup"],
    )
    assert speedup > 1.5, (
        f"304 path only {speedup:.1f}x faster than a full GET /spec"
    )
