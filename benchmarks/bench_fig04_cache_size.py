"""Figure 4 size sweep: regenerate the paper artefact and time the pass.

The regenerated table/chart is written to ``benchmarks/results/fig04.txt``.
"""

from repro.experiments import fig04_cache_size as experiment


def test_fig04(figure_bench):
    report = figure_bench(experiment, "fig04")
    assert experiment.TITLE.split(":")[0] in report
