"""Ablation: the three Section 6 long-line implementation schemes.

The paper offers three ways to hold excluded lines so sequential words
cost one miss: an instruction register, a last-line buffer, and a
stream buffer.  This bench compares them (plus the baselines) at 16B
lines.  The first two should be equivalent on instruction streams; the
stream buffer additionally hides sequential misses, which is why the
paper calls it "probably the simplest if the machine already uses a
stream buffer".
"""

import statistics

from repro.analysis.report import format_table
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import (
    ExclusionStreamBufferCache,
    InstructionRegisterCache,
    LastLineBufferCache,
)
from repro.experiments.common import REFERENCE_SIZE, all_traces

LINE_SIZE = 16


def _inner(geometry):
    return DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True))


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, LINE_SIZE)
    configs = {
        "direct-mapped": lambda: DirectMappedCache(geometry),
        "DE + instruction register": lambda: InstructionRegisterCache(_inner(geometry)),
        "DE + last-line buffer": lambda: LastLineBufferCache(_inner(geometry)),
        "DE + stream buffer (4)": lambda: ExclusionStreamBufferCache(
            _inner(geometry), depth=4
        ),
    }
    traces = all_traces("instruction")
    return {
        label: statistics.mean(factory().simulate(t).miss_rate for t in traces)
        for label, factory in configs.items()
    }


def test_ablation_long_line_schemes(benchmark, results_dir):
    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "mean miss rate"],
        [[label, f"{100 * rate:.3f}%"] for label, rate in rates.items()],
        title=f"Ablation: Section 6 schemes (S=32KB, b={LINE_SIZE}B)",
    )
    (results_dir / "ablation_schemes.txt").write_text(table + "\n")
    print(f"\n{table}\n")
    # Register and last-line buffer are equivalent on pure I-streams.
    assert rates["DE + instruction register"] == rates["DE + last-line buffer"]
    # The stream buffer hides sequential misses on top of exclusion.
    assert rates["DE + stream buffer (4)"] < rates["DE + last-line buffer"]
    assert rates["DE + last-line buffer"] < rates["direct-mapped"]
