"""Ablation: the last-line buffer's contribution at long line sizes.

Section 6's argument: excluding whole lines without a buffer charges
one miss per sequential word of a bypassed line; with the buffer a
bypassed line costs a single miss.  We compare the full design against
a deliberately crippled one (DE at line granularity, no buffer).
"""

import statistics

from repro.analysis.report import format_table
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import make_long_line_exclusion_cache
from repro.experiments.common import REFERENCE_SIZE, all_traces

LINE_SIZE = 16


def run():
    geometry = CacheGeometry(REFERENCE_SIZE, LINE_SIZE)
    traces = all_traces("instruction")
    configs = {
        "direct-mapped": lambda: DirectMappedCache(geometry),
        "DE without buffer": lambda: DynamicExclusionCache(
            geometry, store=IdealHitLastStore(default=True)
        ),
        "DE with last-line buffer": lambda: make_long_line_exclusion_cache(
            geometry, store=IdealHitLastStore(default=True)
        ),
    }
    return {
        label: statistics.mean(factory().simulate(t).miss_rate for t in traces)
        for label, factory in configs.items()
    }


def test_ablation_last_line_buffer(benchmark, results_dir):
    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "mean miss rate"],
        [[label, f"{100 * rate:.3f}%"] for label, rate in rates.items()],
        title=f"Ablation: last-line buffer (S=32KB, b={LINE_SIZE}B)",
    )
    (results_dir / "ablation_buffer.txt").write_text(table + "\n")
    print(f"\n{table}\n")
    assert rates["DE with last-line buffer"] < rates["direct-mapped"]
    # Without the buffer the FSM sees sequential words as conflicts and
    # the design must be clearly worse than the full one.
    assert rates["DE with last-line buffer"] < rates["DE without buffer"]
