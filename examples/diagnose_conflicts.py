#!/usr/bin/env python3
"""Diagnose a workload's cache conflicts and save the results.

Uses the conflict profiler to answer "why does this code miss?": which
sets thrash, which address pairs ping-pong (the within-loop pattern
dynamic exclusion halves), and how much of the miss rate is two-way
alternation at all.  Finishes by saving a sweep result as JSON so the
analysis can be reloaded later.

Run with::

    python examples/diagnose_conflicts.py [benchmark] [cache_kb]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    CacheGeometry,
    DirectMappedCache,
    DynamicExclusionCache,
    benchmark_names,
    instruction_trace,
)
from repro.analysis import (
    format_profile,
    load_result,
    profile_conflicts,
    save_result,
)
from repro.analysis.sweep import SweepResult


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "spice"
    cache_kb = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    if benchmark not in benchmark_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}")

    geometry = CacheGeometry(cache_kb * 1024, 4)
    trace = instruction_trace(benchmark, 150_000)
    print(f"profiling {benchmark} against {geometry} ...\n")

    profile = profile_conflicts(trace, geometry)
    print(format_profile(profile, top=8))

    # How much of that ping-pong does exclusion actually recover?
    dm = DirectMappedCache(geometry).simulate(trace)
    de = DynamicExclusionCache(geometry).simulate(trace)
    saved = dm.misses - de.misses
    print(
        f"\nping-pong misses: {profile.ping_pongs:,}  "
        f"(dynamic exclusion removed {saved:,} misses = "
        f"{saved / profile.ping_pongs:.0%} of them)"
        if profile.ping_pongs
        else "\nno ping-pong conflicts found"
    )

    # Persist a small sweep as JSON and read it back.
    sweep = SweepResult("cache size", [geometry.size])
    sweep.add("direct-mapped", geometry.size, dm.miss_rate)
    sweep.add("dynamic-exclusion", geometry.size, de.miss_rate)
    out = Path(tempfile.gettempdir()) / f"{benchmark}_conflicts.json"
    save_result(sweep, out)
    restored = load_result(out)
    print(f"\nsaved sweep to {out} and reloaded it: "
          f"{restored.series['dynamic-exclusion'].points[geometry.size]:.3%} DE miss rate")


if __name__ == "__main__":
    main()
