#!/usr/bin/env python3
"""Study the Section 5 hit-last storage strategies in a two-level
hierarchy (the paper's Figures 7-9 in miniature).

Shows, for one benchmark, how the choice of where hit-last bits live
changes both the L1 and the L2 miss rates, and how exclusive content
(assume-miss / hashed) lets the L2 behave like a bigger cache.

Run with::

    python examples/hierarchy_study.py [benchmark]
"""

import sys

from repro import CacheGeometry, Strategy, TwoLevelCache, instruction_trace
from repro.analysis import format_table

L1 = CacheGeometry(32 * 1024, 4)
RATIOS = [1, 2, 4, 8, 16]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "spice"
    trace = instruction_trace(benchmark, 150_000)
    print(f"benchmark {benchmark}: {len(trace):,} fetches; L1 = {L1}\n")

    for ratio in RATIOS:
        l2 = CacheGeometry(L1.size * ratio, 4)
        rows = []
        for strategy in Strategy:
            hierarchy = TwoLevelCache(L1, l2, strategy=strategy)
            result = hierarchy.simulate(trace)
            rows.append(
                [
                    strategy.value,
                    f"{result.l1_miss_rate:.3%}",
                    f"{result.l2_global_miss_rate:.3%}",
                    f"{result.l2_local_miss_rate:.3%}",
                    "exclusive" if strategy.exclusive_l2 else "inclusive",
                ]
            )
        print(
            format_table(
                ["strategy", "L1 miss", "L2 global miss", "L2 local miss", "content"],
                rows,
                title=f"L2 = {l2.size // 1024}KB ({ratio}x L1)",
            )
        )
        print()

    print(
        "observations to look for (paper Section 5):\n"
        "  * assume-hit at L2==L1 equals direct-mapped (no benefit);\n"
        "  * by L2 >= 4x L1 every strategy is close to ideal;\n"
        "  * assume-miss/hashed lower the L2 misses via exclusive content."
    )


if __name__ == "__main__":
    main()
