#!/usr/bin/env python3
"""Sweep cache sizes over the SPEC mix (the paper's Figures 4 and 5).

Prints the mean miss-rate table for the three policies and an ASCII
rendition of the improvement curve, including where the dynamic
exclusion peak lands.

Run with::

    python examples/spec_sweep.py [line_size_bytes]

(line sizes > 4 use the Section 6 last-line buffer design.)
"""

import sys

from repro.analysis import format_sweep, run_sweep, sweep_chart
from repro.caches.stats import percent_reduction
from repro.experiments.common import standard_factories
from repro.workloads import benchmark_names, instruction_trace

SIZES_KB = [2, 4, 8, 16, 32, 64, 128]


def main() -> None:
    line_size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"generating traces for {len(benchmark_names())} benchmarks ...")
    traces = [instruction_trace(name, 100_000) for name in benchmark_names()]

    result = run_sweep(
        parameter_name="cache size",
        parameters=[kb * 1024 for kb in SIZES_KB],
        factories=standard_factories(line_size),
        traces=traces,
    )

    print()
    print(format_sweep(result, title=f"mean miss rate (b={line_size}B)",
                       value_format="{:.3%}"))
    print()
    print(sweep_chart(result, title="miss rate (%)"))

    print()
    print("dynamic-exclusion improvement over direct-mapped:")
    best = (None, -1.0)
    for size in result.parameters:
        dm = result.series["direct-mapped"].points[size]
        de = result.series["dynamic-exclusion"].points[size]
        reduction = percent_reduction(dm, de)
        marker = ""
        if reduction > best[1]:
            best = (size, reduction)
        print(f"  {size // 1024:>4}KB  {reduction:6.1f}%")
    print(f"peak: {best[1]:.1f}% at {best[0] // 1024}KB "
          f"(paper: 37% at 32KB with 10M-reference traces)")


if __name__ == "__main__":
    main()
