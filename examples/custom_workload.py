#!/usr/bin/env python3
"""Build a custom workload with the program model and analyse it.

This is the "bring your own program" path a downstream user would take:
describe a loop structure, attach data patterns, emit a trace, classify
its misses (compulsory / capacity / conflict), and see what dynamic
exclusion does to it at several cache sizes.

The program below is a small image-filter-like kernel: an outer loop
over rows calling two worker routines (laid out so they conflict in
small caches) plus a shared lookup table.

Run with::

    python examples/custom_workload.py
"""

from repro import CacheGeometry, DirectMappedCache, DynamicExclusionCache
from repro.analysis import classify_misses, format_table
from repro.caches.stats import percent_reduction
from repro.workloads import (
    Block,
    Call,
    Loop,
    Procedure,
    Program,
    RandomAccess,
    ScalarAccess,
    StridedAccess,
)


def build_program() -> Program:
    row_pixels = StridedAccess(base=0x1000_0000, length=64 * 1024, stride=4,
                               refs_per_visit=4)
    accumulator = ScalarAccess(addr=0x2000_0000, write_every=2)
    lookup_table = RandomAccess(base=0x3000_0000, size=2 * 1024,
                                refs_per_visit=2, seed=7)

    # Two worker routines with a padding procedure between them so that,
    # in a 4KB cache, their hot blocks collide.
    horizontal = Procedure("horizontal_pass", [
        Block(20),
        Loop(Block(30, data=[row_pixels, accumulator]), trips=8),
        Block(10),
    ])
    padding = Procedure("cold_helpers", [Block(1000)])  # rarely executed
    vertical = Procedure("vertical_pass", [
        Block(18),
        Loop(Block(28, data=[row_pixels, lookup_table]), trips=8),
        Block(12),
    ])
    main = Procedure("main", [
        Block(16),
        Loop([Call("horizontal_pass"), Call("vertical_pass")], trips=200),
        Block(8),
    ])
    return Program([horizontal, padding, vertical, main], entry="main",
                   code_base=0x1000, seed=3)


def main() -> None:
    program = build_program()
    trace = program.trace(max_refs=150_000, name="image-filter")
    print(f"program code size : {program.code_size:,} bytes")
    print(f"trace             : {len(trace):,} references "
          f"({trace.counts_by_kind()})\n")

    rows = []
    for size_kb in [1, 2, 4, 8, 16]:
        geometry = CacheGeometry(size_kb * 1024, 4)
        breakdown = classify_misses(trace, geometry)
        dm = DirectMappedCache(geometry).simulate(trace)
        de = DynamicExclusionCache(geometry).simulate(trace)
        rows.append([
            f"{size_kb}KB",
            f"{breakdown.rate('compulsory'):.2%}",
            f"{breakdown.rate('capacity'):.2%}",
            f"{breakdown.rate('conflict'):.2%}",
            f"{dm.miss_rate:.2%}",
            f"{de.miss_rate:.2%}",
            f"{percent_reduction(dm.miss_rate, de.miss_rate):5.1f}%",
        ])
    print(format_table(
        ["cache", "compulsory", "capacity", "conflict",
         "DM miss", "DE miss", "DE reduction"],
        rows,
        title="miss classification and dynamic exclusion (b=4B)",
    ))
    print(
        "\nNote how the DE reduction tracks the conflict component:"
        "\ndynamic exclusion only attacks conflict misses."
    )


if __name__ == "__main__":
    main()
