#!/usr/bin/env python3
"""Quickstart: simulate dynamic exclusion on one benchmark.

Builds the paper's reference configuration (32KB direct-mapped
instruction cache, 4-byte lines), runs the synthetic gcc trace through
the conventional cache, the dynamic-exclusion cache, and the optimal
cache, and prints the headline comparison.

Run with::

    python examples/quickstart.py [benchmark] [cache_kb]
"""

import sys

from repro import (
    CacheGeometry,
    DirectMappedCache,
    DynamicExclusionCache,
    OptimalDirectMappedCache,
    benchmark_names,
    instruction_trace,
    percent_reduction,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    cache_kb = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    if benchmark not in benchmark_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; choose from {benchmark_names()}")

    geometry = CacheGeometry(size=cache_kb * 1024, line_size=4)
    print(f"benchmark : {benchmark}")
    print(f"cache     : {geometry}")

    trace = instruction_trace(benchmark, max_refs=200_000)
    print(f"trace     : {len(trace):,} instruction fetches")

    conventional = DirectMappedCache(geometry).simulate(trace)
    exclusion = DynamicExclusionCache(geometry).simulate(trace)
    optimal = OptimalDirectMappedCache(geometry).simulate(trace)

    print()
    print(f"{'policy':<22} {'misses':>8} {'miss rate':>10} {'bypasses':>9}")
    for label, stats in [
        ("direct-mapped", conventional),
        ("dynamic-exclusion", exclusion),
        ("optimal (Belady)", optimal),
    ]:
        print(
            f"{label:<22} {stats.misses:>8,} {stats.miss_rate:>9.2%} "
            f"{stats.bypasses:>9,}"
        )

    reduction = percent_reduction(conventional.miss_rate, exclusion.miss_rate)
    bound = percent_reduction(conventional.miss_rate, optimal.miss_rate)
    print()
    print(f"dynamic exclusion removes {reduction:.1f}% of misses "
          f"(optimal replacement: {bound:.1f}%)")


if __name__ == "__main__":
    main()
