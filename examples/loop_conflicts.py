#!/usr/bin/env python3
"""Walk through the paper's Section 3/4 analysis, access by access.

For each of the three common conflict patterns this prints the exact
reference stream with hit/miss/bypass annotations from the
dynamic-exclusion FSM, alongside the conventional and optimal miss
counts — the paper's worked examples, reproduced live.

Run with::

    python examples/loop_conflicts.py
"""

from repro import (
    CacheGeometry,
    DirectMappedCache,
    DynamicExclusionCache,
    IdealHitLastStore,
    OptimalDirectMappedCache,
)
from repro.workloads import patterns

GEOMETRY = CacheGeometry(32 * 1024, 4)

#: Short symbolic names for the conflicting addresses.
NAMES = "abc"


def annotate(trace) -> str:
    """Annotated reference string, e.g. 'a_m a_h b_m ...'."""
    cache = DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=True))
    addr_names = {}
    parts = []
    for ref in trace:
        if ref.addr not in addr_names:
            addr_names[ref.addr] = NAMES[len(addr_names)]
        symbol = addr_names[ref.addr]
        result = cache.access(ref.addr)
        if result.hit:
            suffix = "h"
        elif result.bypassed:
            suffix = "m*"  # miss, bypassed (not stored)
        else:
            suffix = "m"
        parts.append(f"{symbol}_{suffix}")
    return " ".join(parts)


def show(title: str, trace, note: str) -> None:
    dm = DirectMappedCache(GEOMETRY).simulate(trace)
    de = DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=True)).simulate(trace)
    opt = OptimalDirectMappedCache(GEOMETRY).simulate(trace)
    print(f"== {title} ==")
    print(note)
    print(f"  stream : {annotate(trace)}")
    print(
        f"  misses : direct-mapped {dm.misses}/{len(trace)}  "
        f"dynamic-exclusion {de.misses}/{len(trace)}  "
        f"optimal {opt.misses}/{len(trace)}"
    )
    print()


def main() -> None:
    print(f"cache: {GEOMETRY}; a, b, c are addresses one cache-size apart\n")
    show(
        "conflict between loops: (a^5 b^5)^4",
        patterns.between_loops(GEOMETRY, inner=5, outer=4),
        "Each phase change misses once; direct-mapped is already optimal.",
    )
    show(
        "conflict between loop levels: (a^5 b)^4",
        patterns.loop_level(GEOMETRY, inner=5, outer=4),
        "b runs once per outer trip; the FSM learns to keep it out (m* = bypass),",
    )
    show(
        "conflict within a loop: (a b)^8",
        patterns.within_loop(GEOMETRY, trips=8),
        "The sticky bit keeps one of the pair resident, halving the misses.",
    )
    show(
        "three-way conflict: (a b c)^6",
        patterns.three_way(GEOMETRY, trips=6),
        "One sticky bit cannot help here (the paper's Section 5 caveat).",
    )


if __name__ == "__main__":
    main()
