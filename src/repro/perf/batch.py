"""Batched multi-cell simulation kernels (the ``batch`` engine tier).

The fast kernels in :mod:`repro.perf.kernels` are per-cell: a geometry
sweep over N cache sizes runs the run-compressed FSM loop N times over
the same trace.  This module batches those cells: every (cell, set)
pair becomes one *slot* in flat state arrays, and the dynamic-exclusion
FSM advances every slot of every cell simultaneously with vectorized
numpy updates — one wavefront pass over the shared trace's run
structure instead of N scalar loops.

The batched layout, in four steps:

1. **Shared word factorisation.**  All cells' line addresses derive
   from one base array (``addrs >> min(offset_bits)``, memoised on the
   trace).  One ``np.unique`` over it yields dense word ids; cells with
   coarser lines derive their own ids with O(unique) prefix reductions
   over the sorted unique array — never another sort of raw addresses.

2. **Run refinement chains.**  Each cell partitions its references by
   set and collapses consecutive same-word references into runs (the
   per-cell kernels' representation).  Only the *coarsest* cell of each
   line size pays the full reference sort: doubling the set count only
   ever splits set groups and merges newly-adjacent equal-word runs, so
   every finer cell's runs are derived from the previous cell's run
   arrays — monotonically shrinking, typically 20x smaller than the
   trace — with one narrow stable sort plus a merge pass.

3. **Wavefront rounds over a slot prefix.**  A run's *rank* is its
   position within its (cell, set) slot.  Slots never interact — a word
   maps to exactly one set of exactly one cell and the hit-last store
   is keyed by word — so rank-``r`` runs of all slots execute together
   in any order.  Slots are sorted by descending run count, making
   round ``r``'s active slots a contiguous *prefix* of the state
   arrays: the per-round FSM step is pure slice arithmetic (no state
   gather/scatter), driven by 128-entry transition tables indexed by
   packed condition bits, with the six event counters folded into two
   packed int64 accumulators (31-bit hits|cold and four 16-bit event
   fields).

4. **Scalar tail.**  Once the wavefront narrows below
   :data:`TAIL_THRESHOLD` (the skewed tail of a few hot sets), the
   surviving runs finish in the per-cell kernel's scalar FSM loop over
   plain Python lists, which beats numpy dispatch on tiny rounds.

Results are field-for-field identical to the per-cell fast kernels and
the reference caches (``tests/perf/test_batch_kernels.py`` proves it
differentially, including the ``fsm.*`` mechanism counters, which are
published per cell under ``engine="batch"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..caches.geometry import CacheGeometry
from ..caches.stats import CacheStats, ExclusionEvents
from ..trace.trace import Trace

#: Minimum vectorized-round width.  Rounds narrower than this cost more
#: in numpy dispatch than the scalar FSM loop; they finish scalar.
#: Tuned on the bench_batch workload (see DESIGN.md §11); correctness
#: does not depend on it.
TAIL_THRESHOLD = 240


@dataclass(frozen=True)
class DEBatchSpec:
    """One dynamic-exclusion cell of a batched invocation.

    Mirrors the per-cell fast kernel's eligibility surface: a
    direct-mapped geometry plus the ideal store's cold-bit polarity.
    """

    geometry: CacheGeometry
    default_hit_last: bool = True
    #: Label attached to the published ``fsm.*`` counters (defaults to
    #: the trace's own name at run time).
    benchmark: str = ""

    def __post_init__(self) -> None:
        if self.geometry.associativity != 1:
            raise ValueError("dynamic-exclusion batch cells must be direct-mapped")


# -- FSM transition tables ----------------------------------------------------
#
# Condition index (7 bits): hit | cold<<1 | in_bit<<2 | res_bit<<3 |
# long<<4 | state<<5, where state = sticky<<1 | hit_last.  Each entry
# replays one branch of kernels.simulate_dynamic_exclusion for a run of
# length L, expressed as table values:
#
#   hits       += L + (the -sub part of _T_ACC_A[idx])
#   cold/evict/bypass/hll/flip: packed 0/1 deltas (high<<31 | low)
#   write-back  (_T_WB): store[resident] = hit_last before replacing
#   install     (_T_INSTALL): resident becomes the run's word
#   next state  (_T_STATE): packed sticky/hit_last after the run
#
# Every branch's hit count is ``L - sub`` with ``sub`` depending only on
# the condition bits: a hit scores L, cold / unsticky-replace / hit-last
# loads score L-1 (for the single-reference variants L-1 is exactly 0),
# and a long bypass scores L-2 — so no per-run multiplier is needed.
#
# ``acc_a`` packs two 31-bit counters (per-slot hits/cold are bounded
# by the trace length < 2^31); ``acc_bc`` packs four 16-bit counters
# (evictions, bypasses, hit-last loads, and flips are each at most one
# per run, and per-slot run counts are < 2^16 whenever the vectorized
# path runs — see the ``max_m`` guard in the kernel).

_PACK_SHIFT = 31
_PACK_MASK = (1 << _PACK_SHIFT) - 1
_BC_SHIFT = 16
_BC_MASK = (1 << _BC_SHIFT) - 1


def _build_tables():
    acc_a = np.zeros(128, dtype=np.int64)  # -hits_sub | cold<<31
    acc_bc = np.zeros(128, dtype=np.int64)  # evict|bypass<<16|hll<<32|flip<<48
    write_back = np.zeros(128, dtype=bool)
    install = np.zeros(128, dtype=bool)
    state_next = np.zeros(128, dtype=np.uint8)
    for idx in range(128):
        hit = idx & 1
        cold = (idx >> 1) & 1
        in_bit = (idx >> 2) & 1
        res_bit = (idx >> 3) & 1
        long_run = (idx >> 4) & 1
        hl = (idx >> 5) & 1
        sticky = (idx >> 6) & 1
        sub = cold_d = evict = bypass = hll = flip = 0
        wb = inst = False
        if hit:
            new_sticky, new_hl = 1, 1
        elif cold:
            sub, cold_d = 1, 1
            inst, new_sticky, new_hl = True, 1, 1
        elif not sticky:
            sub, evict = 1, 1
            flip = int(res_bit != hl)
            wb = inst = True
            new_sticky, new_hl = 1, 1
        elif in_bit:
            sub, hll, evict = 1, 1, 1
            flip = int(res_bit != hl)
            wb = inst = True
            new_sticky = 1
            new_hl = 1 if long_run else 0
        else:
            bypass = 1
            if long_run:
                sub, evict = 2, 1
                flip = int(res_bit != hl)
                wb = inst = True
                new_sticky, new_hl = 1, 1
            else:
                sub = 1  # L == 1, so L - 1 scores the required 0 hits
                new_sticky, new_hl = 0, hl
        acc_a[idx] = -sub + (cold_d << _PACK_SHIFT)
        acc_bc[idx] = (
            evict
            + (bypass << _BC_SHIFT)
            + (hll << (2 * _BC_SHIFT))
            + (flip << (3 * _BC_SHIFT))
        )
        write_back[idx] = wb
        install[idx] = inst
        # States are kept pre-shifted into condition-index position
        # (hit_last at bit 5, sticky at bit 6) so each round ORs them
        # into the index without a shift.
        state_next[idx] = ((new_sticky << 1) | new_hl) << 5
    return acc_a, acc_bc, write_back, install, state_next


(
    _T_ACC_A,
    _T_ACC_BC,
    _T_WB,
    _T_INSTALL,
    _T_STATE,
) = _build_tables()


# -- run construction ---------------------------------------------------------


def _narrow(keys: np.ndarray, limit: int) -> np.ndarray:
    """Narrow sort keys so numpy's radix argsort touches fewer bytes."""
    if limit <= 1 << 16:
        return keys.astype(np.uint16)
    return keys


class _CellRuns:
    """One cell's run-compressed trace: slot-major (set, then rank).

    Only *nonempty* sets become slots: ``slot_sizes`` holds the run
    count of each set that appears, in run order.  Sets the cell never
    touches cost nothing downstream — without this, a 1 MB cell drags a
    quarter-million empty sets through the global slot sort.
    """

    __slots__ = ("words", "lengths", "slot_sizes", "num_sets")

    def __init__(self, words, lengths, sets, num_sets):
        self.words = words  # chain-local dense word ids (int32)
        self.lengths = lengths  # run lengths (int32)
        self.num_sets = num_sets
        # Runs arrive grouped by set, so nonempty-slot sizes are the
        # segment lengths of the ``sets`` array.
        count = len(sets)
        if count == 0:
            self.slot_sizes = np.empty(0, dtype=np.int32)
            return
        change = np.empty(count, dtype=bool)
        change[0] = True
        np.not_equal(sets[1:], sets[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        self.slot_sizes = np.diff(starts, append=count).astype(np.int32)


def _chain_root(
    ref_wid: np.ndarray, low_of_wid: np.ndarray, num_sets: int
) -> _CellRuns:
    """Full-reference run construction for a chain's coarsest cell.

    A run boundary in set-grouped order is simply a word change: equal
    adjacent words are one run, and *unequal* adjacent words can never
    span a set boundary unnoticed, because a word determines its set.
    """
    n = len(ref_wid)
    ref_set = low_of_wid[ref_wid] & np.uint32(num_sets - 1)
    order = np.argsort(_narrow(ref_set, num_sets), kind="stable")
    g_wid = ref_wid[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(g_wid[1:], g_wid[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return _CellRuns(
        g_wid[starts],
        np.diff(starts, append=n).astype(np.int32),
        ref_set[order[starts]],
        num_sets,
    )


def _refine(prev: _CellRuns, low_of_wid: np.ndarray, num_sets: int) -> _CellRuns:
    """Derive a finer cell's runs from a coarser cell's runs.

    Splitting a set only regroups whole runs (a run is one word, and a
    word maps to one set at every granularity), preserving program
    order within each finer set; runs of the same word that become
    adjacent — their old separators moved to sibling sets — merge into
    one longer run.  As with the root, a boundary is just a word change.
    """
    key = low_of_wid[prev.words] & np.uint32(num_sets - 1)
    order = np.argsort(_narrow(key, num_sets), kind="stable")
    s_wid = prev.words[order]
    s_len = prev.lengths[order]
    count = len(order)
    keep = np.empty(count, dtype=bool)
    keep[0] = True
    np.not_equal(s_wid[1:], s_wid[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    return _CellRuns(
        s_wid[starts],
        np.add.reduceat(s_len, starts),
        key[order[starts]],
        num_sets,
    )


def _ragged_indices(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(off, off+len)`` for every (offset, length)."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    bounds = np.concatenate(([0], np.cumsum(lengths)))
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(offsets - bounds[:-1], lengths)
    return out


def _build_cells(
    trace: Trace, specs: "Sequence[DEBatchSpec]"
) -> "Tuple[List[_CellRuns], List[int], int]":
    """Run arrays for every cell plus per-cell store offsets.

    Cells sharing a line size form one refinement chain (coarsest set
    count first); each cell still gets a private store segment, offset
    by ``word_bases`` in the global word-id space.
    """
    min_shift = min(spec.geometry.offset_bits for spec in specs)
    uniq, inv = np.unique(trace.lines(min_shift), return_inverse=True)
    inv32 = inv.astype(np.int32)

    chains: "Dict[int, List[int]]" = {}
    for index, spec in enumerate(specs):
        chains.setdefault(spec.geometry.offset_bits, []).append(index)

    cell_runs: "List[_CellRuns]" = [None] * len(specs)  # type: ignore[list-item]
    chain_words: "Dict[int, int]" = {}
    for shift, members in chains.items():
        d = shift - min_shift
        if d == 0:
            ref_wid = inv32
            low_of_wid = (uniq & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        else:
            shifted = uniq >> np.uint64(d)
            first = np.empty(len(uniq), dtype=bool)
            first[0] = True
            np.not_equal(shifted[1:], shifted[:-1], out=first[1:])
            wid_of_uniq = (np.cumsum(first) - 1).astype(np.int32)
            ref_wid = wid_of_uniq[inv]
            low_of_wid = (shifted[first] & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        chain_words[shift] = len(low_of_wid)
        members.sort(key=lambda i: specs[i].geometry.num_sets)
        prev: "_CellRuns | None" = None
        for index in members:
            num_sets = specs[index].geometry.num_sets
            if prev is not None and prev.num_sets == num_sets:
                cell_runs[index] = prev
            elif prev is None:
                cell_runs[index] = _chain_root(ref_wid, low_of_wid, num_sets)
            else:
                cell_runs[index] = _refine(prev, low_of_wid, num_sets)
            prev = cell_runs[index]

    word_bases: "List[int]" = []
    total_words = 0
    for spec in specs:
        word_bases.append(total_words)
        total_words += chain_words[spec.geometry.offset_bits]
    return cell_runs, word_bases, total_words


# -- the batched kernel -------------------------------------------------------


def simulate_dynamic_exclusion_batch(
    trace: Trace, specs: "Sequence[DEBatchSpec]"
) -> List[CacheStats]:
    """Simulate every spec's cell over ``trace`` in one batched pass.

    Each cell models
    :class:`~repro.core.exclusion_cache.DynamicExclusionCache` with an
    :class:`~repro.core.hitlast.IdealHitLastStore` (cold value
    ``spec.default_hit_last``) and ``sticky_levels=1`` from a cold
    start — exactly the configuration the per-cell
    :func:`~repro.perf.kernels.simulate_dynamic_exclusion` covers — and
    returns one :class:`~repro.caches.stats.CacheStats` per spec, in
    order, each having passed ``check()``.
    """
    specs = list(specs)
    if not specs:
        return []
    n = len(trace)
    if n == 0:
        # Match the per-cell kernel: an empty trace publishes no events.
        empty = []
        for _ in specs:
            stats = CacheStats(accesses=0)
            stats.check()
            empty.append(stats)
        return empty

    cell_runs, word_bases, total_words = _build_cells(trace, specs)

    # Global slot-major run arrays: slot = (cell, set), runs in rank
    # order within each slot.  Word ids are shifted by +1 so 0 can act
    # as the "empty set" resident sentinel (and store[0] as scratch),
    # which keeps the round loop free of clamping.
    g_word = np.concatenate(
        [runs.words + np.int32(base + 1) for runs, base in zip(cell_runs, word_bases)]
    )
    g_len = np.concatenate([runs.lengths for runs in cell_runs])
    slot_m = np.concatenate([runs.slot_sizes for runs in cell_runs])
    cell_of_slot = np.repeat(
        np.arange(len(specs), dtype=np.int32),
        [len(runs.slot_sizes) for runs in cell_runs],
    )
    g_offset = np.cumsum(slot_m, dtype=np.int64) - slot_m

    # Descending run count makes round r's active slots the prefix
    # [0, width_r) of every state array.
    max_m = int(slot_m.max())
    if max_m < 1 << 16:
        sort_keys = (max_m - slot_m).astype(np.uint16)  # radix-sortable
    else:
        sort_keys = -slot_m
    order = np.argsort(sort_keys, kind="stable")
    m_sorted = slot_m[order]
    off_sorted = g_offset[order].astype(np.int32)
    cell_ids = cell_of_slot[order]
    hist = np.bincount(m_sorted, minlength=max_m + 1)
    ge = np.cumsum(hist[::-1])[::-1]  # ge[k] = #slots with m >= k
    widths = ge[1:]  # widths[r] = #slots with a rank-r run
    if max_m >= 1 << 16:
        # Packed 16-bit accumulator fields could overflow; run the
        # (always correct) scalar path for everything.  In practice a
        # slot never sees 65k+ runs.
        tail_rank = 0
    else:
        below = np.flatnonzero(widths < TAIL_THRESHOLD)
        tail_rank = int(below[0]) if len(below) else max_m

    # -- FSM state (prefix-addressed by sorted slot position) ------------
    #
    # Hit-last bits are kept in two parallel arrays pre-shifted into
    # their condition-index positions: ``store4`` (values 0/4, read via
    # the run's word for the in_bit) and ``store8`` (values 0/8, read
    # via the resident word for the res_bit).  ``store8[0]`` — only ever
    # read through the empty-set sentinel resident — holds the *cold*
    # bit (2), so the round loop needs neither a cold comparison nor
    # any shifts when assembling the index.
    active0 = len(slot_m)  # every slot has at least one run
    resident = np.zeros(active0, dtype=np.int32)  # 0 = empty set
    state = np.zeros(active0, dtype=np.uint8)  # (sticky<<1 | hit_last) << 5
    store4 = np.empty(total_words + 1, dtype=np.uint8)
    store8 = np.empty(total_words + 1, dtype=np.uint8)
    bounds = [base + 1 for base in word_bases] + [total_words + 1]
    store4[0] = 0
    store8[0] = 2  # the cold condition bit
    for c, spec in enumerate(specs):
        hl = 1 if spec.default_hit_last else 0
        store4[bounds[c] : bounds[c + 1]] = hl << 2
        store8[bounds[c] : bounds[c + 1]] = hl << 3
    acc_a = np.zeros(active0, dtype=np.int64)  # hits | cold<<31
    acc_bc = np.zeros(active0, dtype=np.int64)  # evict|byp<<16|hll<<32|flip<<48

    # -- vectorized wavefront rounds -------------------------------------
    if tail_rank:
        round_widths = widths[:tail_rank].astype(np.int32)
        rank_of = np.repeat(np.arange(tail_rank, dtype=np.int32), round_widths)
        run_idx = off_sorted[_ragged_positions(round_widths)]
        run_idx += rank_of
        rw = g_word[run_idx]
        rl = g_len[run_idx]
        # The "long run" condition bit depends only on the run lengths,
        # so it is computed for every round at once, pre-shifted.
        rlong = np.left_shift(np.greater(rl, 1).view(np.uint8), 4)
        del run_idx, rank_of

        size = active0
        idx = np.empty(size, dtype=np.uint8)
        inb = np.empty(size, dtype=np.uint8)
        resb = np.empty(size, dtype=np.uint8)
        hit = np.empty(size, dtype=bool)
        delta = np.empty(size, dtype=np.int64)
        take = np.empty(size, dtype=np.int64)
        wb = np.empty(size, dtype=bool)
        install = np.empty(size, dtype=bool)

        # Round 0 needs no tables: every slot is cold, so every slot
        # installs its first word, scores L-1 hits and one cold miss,
        # and leaves in the sticky/hit-last state.  This is also the
        # widest round, so the special case pays.
        m0 = int(round_widths[0])
        np.copyto(resident[:m0], rw[:m0])
        state[:m0] = 3 << 5  # sticky | hit_last
        # The typed scalar forces the int64 loop: ``rl`` may be int32
        # (single-geometry chains), and a weakly-typed python int would
        # keep the addition in int32 and wrap the packed cold bit.
        np.add(rl[:m0], np.int64((1 << _PACK_SHIFT) - 1), out=acc_a[:m0])

        start = m0
        for r in range(1, tail_rank):
            m = int(round_widths[r])
            w = rw[start : start + m]
            length = rl[start : start + m]
            lng = rlong[start : start + m]
            start += m
            res = resident[:m]
            st = state[:m]

            np.equal(w, res, out=hit[:m])
            np.take(store4, w, out=inb[:m])
            np.take(store8, res, out=resb[:m])

            np.bitwise_or(st, hit[:m].view(np.uint8), out=idx[:m])
            np.bitwise_or(idx[:m], inb[:m], out=idx[:m])
            np.bitwise_or(idx[:m], resb[:m], out=idx[:m])
            np.bitwise_or(idx[:m], lng, out=idx[:m])
            i = idx[:m]

            np.take(_T_ACC_A, i, out=take[:m])
            np.add(take[:m], length, out=delta[:m])
            np.add(acc_a[:m], delta[:m], out=acc_a[:m])
            np.take(_T_ACC_BC, i, out=take[:m])
            np.add(acc_bc[:m], take[:m], out=acc_bc[:m])

            np.take(_T_WB, i, out=wb[:m])
            writers = np.flatnonzero(wb[:m])
            if len(writers):
                # hit_last of the OLD state, written before replacing.
                hl4 = (st[writers] >> np.uint8(3)) & np.uint8(4)
                resw = res[writers]
                store4[resw] = hl4
                store8[resw] = hl4 + hl4
            np.take(_T_INSTALL, i, out=install[:m])
            np.copyto(res, w, where=install[:m])
            np.take(_T_STATE, i, out=st)
        del rw, rl, rlong

    # -- scalar tail: the skewed hot sets --------------------------------
    cells = len(specs)
    tail_hits = [0] * cells
    tail_counts = [[0] * cells for _ in range(5)]  # cold/evict/byp/hll/flip
    if tail_rank < max_m:
        tail_slots = int(widths[tail_rank])
        t_counts = m_sorted[:tail_slots] - tail_rank
        t_idx = _ragged_indices(off_sorted[:tail_slots] + tail_rank, t_counts)
        t_word = g_word[t_idx].tolist()
        t_len = g_len[t_idx].tolist()
        t_bounds = np.concatenate(([0], np.cumsum(t_counts))).tolist()
        t_cell = cell_ids[:tail_slots].tolist()
        res_list = resident[:tail_slots].tolist()
        st_list = state[:tail_slots].tolist()
        # The scalar loop mirrors the vectorized layout: hit-last bits
        # carry the store4 encoding (0 or 4) so no re-shifting happens
        # per run.  Each word belongs to exactly one slot, so mutating
        # this plain-list copy never races the arrays.
        store_list = store4.tolist()
        for s in range(tail_slots):
            res_v = res_list[s]
            packed = st_list[s]
            st_v = packed >> 6
            hl_v = (packed >> 3) & 4
            hits_v = cold_v = evict_v = bypass_v = hll_v = flip_v = 0
            lo = t_bounds[s]
            hi = t_bounds[s + 1]
            for word, length in zip(t_word[lo:hi], t_len[lo:hi]):
                if word == res_v:
                    hits_v += length
                    st_v = 1
                    hl_v = 4
                elif res_v == 0:
                    cold_v += 1
                    hits_v += length - 1
                    res_v = word
                    st_v = 1
                    hl_v = 4
                elif st_v == 0:
                    if store_list[res_v] != hl_v:
                        flip_v += 1
                    store_list[res_v] = hl_v
                    evict_v += 1
                    hits_v += length - 1
                    res_v = word
                    st_v = 1
                    hl_v = 4
                elif store_list[word]:
                    hll_v += 1
                    if store_list[res_v] != hl_v:
                        flip_v += 1
                    store_list[res_v] = hl_v
                    evict_v += 1
                    res_v = word
                    st_v = 1
                    if length > 1:
                        hits_v += length - 1
                        hl_v = 4
                    else:
                        hl_v = 0
                else:
                    bypass_v += 1
                    st_v = 0
                    if length > 1:
                        if store_list[res_v] != hl_v:
                            flip_v += 1
                        store_list[res_v] = hl_v
                        evict_v += 1
                        hits_v += length - 2
                        res_v = word
                        st_v = 1
                        hl_v = 4
            cell = t_cell[s]
            tail_hits[cell] += hits_v
            tail_counts[0][cell] += cold_v
            tail_counts[1][cell] += evict_v
            tail_counts[2][cell] += bypass_v
            tail_counts[3][cell] += hll_v
            tail_counts[4][cell] += flip_v

    # -- per-cell reduction -----------------------------------------------
    def _reduce(values: np.ndarray) -> np.ndarray:
        # Exact despite the float64 weights: every field total is < 2^53.
        return np.bincount(
            cell_ids, weights=values.astype(np.float64), minlength=cells
        ).astype(np.int64)

    hits_c = _reduce(acc_a & _PACK_MASK)
    cold_c = _reduce(acc_a >> _PACK_SHIFT)
    evict_c = _reduce(acc_bc & _BC_MASK)
    bypass_c = _reduce((acc_bc >> _BC_SHIFT) & _BC_MASK)
    hll_c = _reduce((acc_bc >> (2 * _BC_SHIFT)) & _BC_MASK)
    flip_c = _reduce(acc_bc >> (3 * _BC_SHIFT))

    results: List[CacheStats] = []
    for c, spec in enumerate(specs):
        hits = int(hits_c[c]) + tail_hits[c]
        stats = CacheStats(
            accesses=n,
            hits=hits,
            misses=n - hits,
            cold_misses=int(cold_c[c]) + tail_counts[0][c],
            evictions=int(evict_c[c]) + tail_counts[1][c],
            bypasses=int(bypass_c[c]) + tail_counts[2][c],
        )
        ExclusionEvents(
            sticky_saves=stats.bypasses,
            hit_last_loads=int(hll_c[c]) + tail_counts[3][c],
            exclusion_flips=int(flip_c[c]) + tail_counts[4][c],
        ).publish(spec.benchmark or trace.name, engine="batch")
        stats.check()
        results.append(stats)
    return results


def _ragged_positions(lengths: np.ndarray) -> np.ndarray:
    """Positions 0..len-1 within each segment, concatenated (int32)."""
    total = int(lengths.sum(dtype=np.int64))
    bounds = np.cumsum(lengths, dtype=np.int32) - lengths
    out = np.arange(total, dtype=np.int32)
    out -= np.repeat(bounds, lengths)
    return out
