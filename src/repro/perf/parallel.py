"""Process-parallel sweep execution.

A figure sweep is a grid of independent (parameter, policy, benchmark)
cells, so it parallelises trivially — except that shipping megabyte
trace arrays to worker processes would swamp the win.  Benchmark traces
are deterministic functions of their ``(name, kind, max_refs)`` key, so
:class:`TraceKey` sends the *key* instead and each worker regenerates
(and memoises) the trace on first use.

Worker count resolution, in priority order:

1. an explicit ``workers=`` argument,
2. the process default set by ``--workers`` on the experiments CLI,
3. the ``REPRO_WORKERS`` environment variable (validated like
   ``REPRO_TRACE_SCALE``),
4. 1 (sequential — no process pool is created at all).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..trace.trace import Trace
from . import engine as engine_mod


@dataclass(frozen=True)
class TraceKey:
    """A deterministic recipe for a benchmark trace.

    Cheap to pickle (three scalars); :meth:`load` regenerates the trace
    through :func:`repro.workloads.registry.trace_by_kind` and memoises
    it per process, so a pool worker builds each benchmark once no
    matter how many sweep cells it executes.
    """

    name: str
    kind: str = "instruction"
    max_refs: int = 200_000

    def load(self) -> Trace:
        trace = _TRACE_CACHE.get(self)
        if trace is None:
            from ..workloads.registry import trace_by_kind

            trace = trace_by_kind(self.name, self.kind, max_refs=self.max_refs)
            _TRACE_CACHE[self] = trace
        return trace


TraceLike = Union[Trace, TraceKey]

_TRACE_CACHE: Dict[TraceKey, Trace] = {}


def clear_trace_cache() -> None:
    """Drop this process's memoised TraceKey traces."""
    _TRACE_CACHE.clear()


def as_trace(trace: TraceLike) -> Trace:
    """Materialise a TraceKey; pass a Trace through unchanged."""
    if isinstance(trace, TraceKey):
        return trace.load()
    return trace


# -- worker-count resolution --------------------------------------------------

_DEFAULT_WORKERS: Optional[int] = None


def env_workers() -> Optional[int]:
    """The validated REPRO_WORKERS setting (None when unset)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    if workers < 1:
        raise ValueError("REPRO_WORKERS must be at least 1")
    return workers


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default (the CLI's ``--workers`` flag)."""
    if workers is not None and workers < 1:
        raise ValueError("workers must be at least 1")
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > CLI default > REPRO_WORKERS > 1."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        return workers
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = env_workers()
    if env is not None:
        return env
    return 1


# -- cell execution -----------------------------------------------------------

#: One sweep cell: (factory, parameter, trace).  The factory and the
#: trace reference must be picklable when workers > 1 — pass module
#: -level callables / dataclass instances and TraceKeys, not lambdas
#: and raw Traces.
Cell = Tuple[Callable[[object], object], object, TraceLike]


def simulate_cell(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: Optional[str] = None,
) -> float:
    """Build one simulator, run one trace, return the miss rate."""
    stats = engine_mod.simulate(factory(parameter), as_trace(trace), engine=engine)
    return stats.miss_rate


def run_cells(
    cells: Sequence[Cell],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[float]:
    """Miss rates for every cell, preserving order.

    ``workers <= 1`` runs inline (no pool, nothing needs pickling).
    Otherwise the cells are farmed to a :class:`ProcessPoolExecutor`;
    the engine name is resolved *before* submission so the CLI's
    ``--engine`` default reaches the workers even though module globals
    are not shared across processes.
    """
    engine = engine_mod.resolve_engine(engine)
    workers = resolve_workers(workers)
    if workers <= 1 or len(cells) <= 1:
        return [
            simulate_cell(factory, parameter, trace, engine)
            for factory, parameter, trace in cells
        ]
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        futures = [
            pool.submit(simulate_cell, factory, parameter, trace, engine)
            for factory, parameter, trace in cells
        ]
        return [future.result() for future in futures]
