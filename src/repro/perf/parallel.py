"""Process-parallel sweep execution with fault tolerance.

A figure sweep is a grid of independent (parameter, policy, benchmark)
cells, so it parallelises trivially — except that shipping megabyte
trace arrays to worker processes would swamp the win.  Benchmark traces
are deterministic functions of their ``(name, kind, max_refs)`` key, so
:class:`TraceKey` sends the *key* instead and each worker regenerates
(and memoises) the trace on first use.

The execution layer is built around per-cell **result envelopes**
(:class:`CellOutcome`) instead of bare ``future.result()`` calls: every
cell carries its full :class:`CellIdentity` — factory label and
fingerprint, parameter, trace recipe, engine — plus wall time and any
captured exception, so a failure names exactly which cell died instead
of aborting the whole grid anonymously.  On top of that sit

* bounded retry with pool re-creation when a worker dies
  (``BrokenProcessPool`` — an OOM-killed worker on a scaled trace is
  the motivating case), falling back to one-cell-in-flight execution to
  attribute a deterministic crasher precisely;
* an optional per-cell ``timeout`` (pooled runs only) that terminates
  the stuck worker and fails just that cell;
* an opt-in on-disk journal (:class:`~repro.perf.journal.SweepJournal`)
  so an interrupted sweep resumes from its completed cells;
* structured run telemetry (:class:`SweepTelemetry`) collected for the
  experiments CLI's ``--progress``/``--resume-dir`` reporting.

Worker count resolution, in priority order:

1. an explicit ``workers=`` argument,
2. the process default set by ``--workers`` on the experiments CLI,
3. the ``REPRO_WORKERS`` environment variable (validated like
   ``REPRO_TRACE_SCALE``),
4. 1 (sequential — no process pool is created at all).
"""

from __future__ import annotations

import hashlib
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..env import env_batch_cells
from ..env import env_workers  # noqa: F401 (re-exported; the one parser)
from ..obs import metrics as obs_metrics
from ..obs import profiling as obs_profiling
from ..obs import tracing as obs_tracing
from ..trace.trace import Trace
from . import engine as engine_mod
from .journal import SweepJournal, canonical_parameter, content_key, is_stable_parameter
from .shared import SharedTrace


@dataclass(frozen=True)
class TraceKey:
    """A deterministic recipe for a benchmark trace.

    Cheap to pickle (three scalars); :meth:`load` regenerates the trace
    through :func:`repro.workloads.registry.trace_by_kind` and memoises
    it per process, so a pool worker builds each benchmark once no
    matter how many sweep cells it executes.
    """

    name: str
    kind: str = "instruction"
    max_refs: int = 200_000

    def load(self) -> Trace:
        return as_trace(self)  # memoised per process

    def _build(self) -> Trace:
        from ..workloads.registry import trace_by_kind

        return trace_by_kind(self.name, self.kind, max_refs=self.max_refs)


#: Any hashable, picklable recipe exposing ``name``/``kind``/``max_refs``
#: attributes plus a ``load() -> Trace`` method works wherever a
#: :class:`TraceKey` does (the experiment-spec layer defines e.g.
#: timeshared and analytic-pattern recipes); :func:`as_trace` memoises
#: every recipe through the same per-process cache.
TraceLike = Union[Trace, TraceKey, object]

_TRACE_CACHE: Dict[object, Trace] = {}

#: Ten benchmarks x three kinds fit comfortably; anything past this is
#: a scale change or a synthetic flood, and old entries are evicted FIFO.
_TRACE_CACHE_LIMIT = 64


def is_trace_recipe(trace: object) -> bool:
    """Whether ``trace`` is a deterministic recipe rather than raw data."""
    return (
        not isinstance(trace, Trace)
        and hasattr(trace, "load")
        and hasattr(trace, "name")
        and hasattr(trace, "kind")
        and hasattr(trace, "max_refs")
    )


def clear_trace_cache() -> None:
    """Drop this process's memoised recipe traces."""
    _TRACE_CACHE.clear()


def as_trace(trace: TraceLike) -> Trace:
    """Materialise a trace recipe (memoised); pass a Trace through unchanged."""
    if isinstance(trace, Trace):
        return trace
    if not is_trace_recipe(trace):
        raise TypeError(
            f"expected a Trace or a trace recipe with name/kind/max_refs/load, "
            f"got {type(trace).__name__}"
        )
    cached = _TRACE_CACHE.get(trace)
    if cached is None:
        if len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            # Drop the oldest memoised trace (insertion order): the
            # cache otherwise grows without bound when sweeps mix
            # many distinct recipes.
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        # Recipes with a raw ``_build`` (TraceKey) route their public
        # ``load`` back through this memo; plain recipes just load.
        build = getattr(trace, "_build", None) or trace.load
        with obs_tracing.span(
            "trace_gen",
            trace=str(trace.name),
            trace_kind=str(trace.kind),
            refs=int(trace.max_refs),
        ):
            with obs_profiling.section("trace_gen"):
                cached = build()
        obs_metrics.counter("trace.cache.miss")
        _TRACE_CACHE[trace] = cached
    else:
        obs_metrics.counter("trace.cache.hit")
    return cached


# -- worker-count resolution --------------------------------------------------

_DEFAULT_WORKERS: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default (the CLI's ``--workers`` flag)."""
    if workers is not None and workers < 1:
        raise ValueError("workers must be at least 1")
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > CLI default > REPRO_WORKERS > 1."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        return workers
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = env_workers()
    if env is not None:
        return env
    return 1


# -- batch-group sizing -------------------------------------------------------

#: Cells per vectorized batch-kernel invocation.  Wide enough that the
#: shared trace factorization amortises; small enough that one group's
#: failure or timeout forfeits little work to the per-cell fallback.
DEFAULT_BATCH_CELLS = 16


def resolve_batch_cells(batch_cells: Optional[int] = None) -> int:
    """Explicit argument > REPRO_BATCH_CELLS > DEFAULT_BATCH_CELLS."""
    if batch_cells is not None:
        if batch_cells < 1:
            raise ValueError("batch_cells must be at least 1")
        return batch_cells
    env = env_batch_cells()
    if env is not None:
        return env
    return DEFAULT_BATCH_CELLS


def _group_pending(
    cells: Sequence["LabeledCell"], pending: Sequence[int], limit: int
) -> List[List[int]]:
    """Partition pending cell indices into batch groups.

    Cells sharing one trace — the same recipe, or the very same Trace
    object — land in one group (chunked at ``limit``) so the batch
    kernel simulates them against a single materialisation.  Groups keep
    first-appearance order and cells keep their original order within a
    group; the concatenation of all groups is exactly ``pending``, each
    index once.
    """
    by_trace: Dict[object, List[int]] = {}
    order: List[object] = []
    for index in pending:
        trace = cells[index][3]
        key: object = trace if is_trace_recipe(trace) else id(trace)
        bucket = by_trace.get(key)
        if bucket is None:
            by_trace[key] = bucket = []
            order.append(key)
        bucket.append(index)
    groups: List[List[int]] = []
    for key in order:
        bucket = by_trace[key]
        for start in range(0, len(bucket), limit):
            groups.append(bucket[start : start + limit])
    return groups


# -- resilience defaults (the CLI's --resume-dir / --progress flags) ----------

#: Pool re-creations attempted after a worker crash before switching to
#: one-cell-in-flight execution to attribute the crasher precisely.
DEFAULT_POOL_RETRIES = 2

_DEFAULT_JOURNAL_DIR: Optional[Path] = None
_DEFAULT_PROGRESS = False
_DEFAULT_CELL_TIMEOUT: Optional[float] = None


def set_default_journal_dir(directory: "str | Path | None") -> None:
    """Journal every sweep in this process under ``directory`` (CLI ``--resume-dir``)."""
    global _DEFAULT_JOURNAL_DIR
    _DEFAULT_JOURNAL_DIR = Path(directory) if directory is not None else None


def default_journal_dir() -> Optional[Path]:
    """The process-wide resume directory (None = journaling off)."""
    return _DEFAULT_JOURNAL_DIR


def set_default_progress(enabled: bool) -> None:
    """Print per-cell progress lines to stderr (CLI ``--progress``)."""
    global _DEFAULT_PROGRESS
    _DEFAULT_PROGRESS = bool(enabled)


def set_default_cell_timeout(seconds: Optional[float]) -> None:
    """Per-cell timeout for pooled runs (None disables)."""
    if seconds is not None and seconds <= 0:
        raise ValueError("cell timeout must be positive")
    global _DEFAULT_CELL_TIMEOUT
    _DEFAULT_CELL_TIMEOUT = seconds


# -- cell identity ------------------------------------------------------------


@dataclass(frozen=True)
class CellIdentity:
    """Everything needed to name one sweep cell in an error, journal
    entry, or progress line: which curve (factory label + fingerprint),
    which parameter, which trace (with its reference budget, i.e. the
    ``max_refs``/``REPRO_TRACE_SCALE`` the run used), which engine."""

    label: str
    factory: str
    parameter: object
    trace_name: str
    trace_kind: str
    trace_refs: int
    engine: str
    trace_digest: str = ""
    journalable: bool = True
    evaluator: str = ""

    def describe(self) -> str:
        return (
            f"{self.label} | {self.parameter!r} | "
            f"{self.trace_name}({self.trace_kind}, {self.trace_refs} refs) | "
            f"engine={self.engine}"
        )

    def payload(self) -> dict:
        """The content-hashed identity dict (journal key material).

        The ``evaluator`` field is included only when a custom metric
        evaluator is in play, so default miss-rate cells hash to exactly
        the keys the pre-spec sweep runner wrote — an old journal
        resumes under the new pipeline unchanged.
        """
        payload = {
            "label": self.label,
            "factory": self.factory,
            "parameter": canonical_parameter(self.parameter)
            if self.journalable
            else repr(self.parameter),
            "trace_name": self.trace_name,
            "trace_kind": self.trace_kind,
            "trace_refs": self.trace_refs,
            "trace_digest": self.trace_digest,
            # The batched engine is a scheduling strategy, not a different
            # simulation: its results are pinned equal to the fast tier's,
            # so its journal entries hash to the same keys and the two
            # engines resume each other's sweeps interchangeably.
            "engine": "fast" if self.engine == "batch" else self.engine,
        }
        if self.evaluator:
            payload["evaluator"] = self.evaluator
        return payload

    def key(self) -> str:
        return content_key(self.payload())


def _factory_fingerprint(factory: object) -> Optional[str]:
    """A repr stable across processes, or None when there isn't one.

    Frozen-dataclass factories (``StandardFactory`` etc.) repr their
    configuration deterministically.  Lambdas and local closures repr a
    memory address, which a resumed run cannot be matched against — and
    a *reused* address must never cause a false journal hit — so such
    cells are executed but never journaled.
    """
    text = repr(factory)
    if " at 0x" in text or "<locals>" in text or "object at" in text:
        return None
    return text


def _trace_digest(trace: Trace) -> str:
    """Stable content digest of a raw (non-TraceKey) trace."""
    digest = hashlib.sha256()
    digest.update(trace.addrs.tobytes())
    digest.update(trace.kinds.tobytes())
    return digest.hexdigest()[:16]


def identity_for(
    label: str,
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: str,
    digest: bool = False,
    evaluator: Optional[Callable] = None,
) -> CellIdentity:
    """Build the full identity envelope for one cell.

    ``digest`` asks for a content hash of raw Trace objects (needed only
    when journaling, where a name collision must not replay the wrong
    trace's result; trace recipes are already deterministic).
    """
    fingerprint = _factory_fingerprint(factory)
    if is_trace_recipe(trace):
        name, kind, refs, trace_dig = (
            str(trace.name), str(trace.kind), int(trace.max_refs), ""
        )
    else:
        name = trace.name or "<anonymous>"
        kind = "<trace>"
        refs = len(trace)
        trace_dig = _trace_digest(trace) if digest else ""
    evaluator_print = None
    if evaluator is not None:
        evaluator_print = _factory_fingerprint(evaluator)
    return CellIdentity(
        label=label,
        factory=fingerprint if fingerprint is not None else repr(factory),
        parameter=parameter,
        trace_name=name,
        trace_kind=kind,
        trace_refs=refs,
        engine=engine,
        trace_digest=trace_dig,
        journalable=(
            fingerprint is not None
            and is_stable_parameter(parameter)
            and (evaluator is None or evaluator_print is not None)
        ),
        evaluator=evaluator_print or "",
    )


# -- result envelopes, telemetry, errors --------------------------------------


@dataclass
class CellOutcome:
    """One cell's result envelope: identity + value or captured error.

    ``metrics`` carries every number the cell's evaluator produced; the
    default evaluator yields ``{"miss_rate": ...}`` and ``miss_rate``
    mirrors that entry for the existing single-metric callers.
    """

    identity: CellIdentity
    miss_rate: Optional[float] = None
    metrics: Optional[Dict[str, float]] = None
    seconds: float = 0.0
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.metrics is not None


@dataclass
class SweepTelemetry:
    """Structured counters for one ``run_labeled_cells`` invocation.

    Since the ``repro.obs`` metrics registry became the primary sink
    (see :func:`_publish_metrics`), this dataclass is the per-run
    compatibility view the experiments CLI serialises to
    ``<id>.telemetry.json`` — same fields, same JSON shape as always.
    """

    engine: str
    workers: int
    total: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    pool_restarts: int = 0
    elapsed: float = 0.0
    cell_seconds: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        timings = self.cell_seconds
        return {
            "kind": "sweep-telemetry",
            "version": 1,
            "engine": self.engine,
            "workers": self.workers,
            "cells_total": self.total,
            "cells_completed": self.completed,
            "cells_failed": self.failed,
            "cells_cached": self.cached,
            "pool_restarts": self.pool_restarts,
            "elapsed_seconds": round(self.elapsed, 6),
            "cell_seconds": [round(s, 6) for s in timings],
            "cell_seconds_mean": round(sum(timings) / len(timings), 6) if timings else 0.0,
            "cell_seconds_max": round(max(timings), 6) if timings else 0.0,
        }

    # The serialisation API is ``as_dict``/``from_dict``; ``to_dict``
    # remains as the original spelling callers already use.
    def as_dict(self) -> dict:
        return self.to_dict()

    @classmethod
    def from_dict(cls, data: dict) -> "SweepTelemetry":
        """Rebuild a record from :meth:`as_dict` output (round-trip safe
        modulo the 1e-6 rounding applied on the way out)."""
        if data.get("kind") != "sweep-telemetry":
            raise ValueError(f"not a sweep-telemetry record: {data.get('kind')!r}")
        return cls(
            engine=str(data["engine"]),
            workers=int(data["workers"]),
            total=int(data["cells_total"]),
            completed=int(data["cells_completed"]),
            failed=int(data["cells_failed"]),
            cached=int(data["cells_cached"]),
            pool_restarts=int(data["pool_restarts"]),
            elapsed=float(data["elapsed_seconds"]),
            cell_seconds=[float(s) for s in data.get("cell_seconds", [])],
        )

    def summary(self) -> str:
        return (
            f"{self.total} cells: {self.completed} done "
            f"({self.cached} from journal), {self.failed} failed, "
            f"{self.pool_restarts} pool restarts, "
            f"{self.workers} worker(s), engine={self.engine}, "
            f"{self.elapsed:.2f}s"
        )


class SweepCellError(RuntimeError):
    """One or more sweep cells failed; carries every failed envelope.

    The message names each failed cell's full identity so a 500-cell
    overnight sweep reports "dynamic-exclusion @ 32768 on gcc under the
    fast engine died", not a bare traceback from an anonymous future.
    """

    def __init__(self, failures: Sequence[CellOutcome], total: int) -> None:
        self.failures = list(failures)
        self.total = total
        lines = [f"{len(self.failures)} of {total} sweep cell(s) failed:"]
        for outcome in self.failures:
            lines.append(f"  [{outcome.identity.describe()}] {outcome.error}")
        super().__init__("\n".join(lines))


#: Retained run records for callers that never drain (a library user
#: driving run_labeled_cells in a loop): the deque discards the oldest
#: past this bound instead of growing for the life of the process.  The
#: obs metrics registry keeps the running totals regardless.
TELEMETRY_LOG_LIMIT = 256

_TELEMETRY_LOCK = threading.Lock()
_TELEMETRY_LOG: Deque[SweepTelemetry] = deque(maxlen=TELEMETRY_LOG_LIMIT)


def drain_telemetry() -> List[SweepTelemetry]:
    """Return and clear the telemetry records accumulated so far."""
    with _TELEMETRY_LOCK:
        drained = list(_TELEMETRY_LOG)
        _TELEMETRY_LOG.clear()
    return drained


def _log_telemetry(telemetry: SweepTelemetry) -> None:
    with _TELEMETRY_LOCK:
        _TELEMETRY_LOG.append(telemetry)


def _publish_metrics(telemetry: SweepTelemetry) -> None:
    """Fold one run's telemetry into the obs metrics registry."""
    engine = telemetry.engine
    obs_metrics.counter("sweep.runs", engine=engine)
    obs_metrics.counter("sweep.cells.total", telemetry.total, engine=engine)
    obs_metrics.counter("sweep.cells.completed", telemetry.completed, engine=engine)
    obs_metrics.counter("sweep.cells.failed", telemetry.failed, engine=engine)
    obs_metrics.counter("sweep.cells.cached", telemetry.cached, engine=engine)
    obs_metrics.counter("sweep.pool_restarts", telemetry.pool_restarts, engine=engine)
    obs_metrics.gauge("sweep.workers", telemetry.workers, engine=engine)
    for seconds in telemetry.cell_seconds:
        obs_metrics.histogram("cell.seconds", seconds, engine=engine)


# -- cell execution -----------------------------------------------------------

#: One sweep cell: (factory, parameter, trace).  The factory and the
#: trace reference must be picklable when workers > 1 — pass module
#: -level callables / dataclass instances and TraceKeys, not lambdas
#: and raw Traces.
Cell = Tuple[Callable[[object], object], object, TraceLike]

#: A labelled sweep cell: (label, factory, parameter, trace).
LabeledCell = Tuple[str, Callable[[object], object], object, TraceLike]


def simulate_cell(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: Optional[str] = None,
) -> float:
    """Build one simulator, run one trace, return the miss rate."""
    stats = engine_mod.simulate(factory(parameter), as_trace(trace), engine=engine)
    return stats.miss_rate


#: A custom per-cell measurement: ``(model, trace, engine) -> metrics``.
#: Must be picklable (module-level callable or frozen dataclass) when the
#: sweep fans out to workers; an address-free repr makes its cells
#: journalable.  The default (``None``) measures ``{"miss_rate": ...}``
#: through the engine dispatch.
CellEvaluator = Callable[[object, Trace, str], Dict[str, float]]


def evaluate_cell(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: Optional[str] = None,
    evaluator: Optional[CellEvaluator] = None,
) -> Dict[str, float]:
    """Build one model, run one trace, return the cell's metric dict."""
    engine = engine_mod.resolve_engine(engine)
    model = factory(parameter)
    materialised = as_trace(trace)
    if evaluator is None:
        stats = engine_mod.simulate(model, materialised, engine=engine)
        return {"miss_rate": stats.miss_rate}
    metrics = evaluator(model, materialised, engine)
    if not isinstance(metrics, dict) or not metrics:
        raise TypeError(
            f"cell evaluator {evaluator!r} must return a non-empty dict of "
            f"floats, got {metrics!r}"
        )
    return {str(key): float(value) for key, value in metrics.items()}


def _cell_task(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: str,
    evaluator: Optional[CellEvaluator] = None,
) -> "tuple[Dict[str, float], float]":
    """Worker-side cell execution: (metrics, compute seconds)."""
    started = time.perf_counter()
    metrics = evaluate_cell(factory, parameter, trace, engine, evaluator)
    return metrics, time.perf_counter() - started


def _resolve_journal(journal: "SweepJournal | str | Path | None") -> Optional[SweepJournal]:
    if journal is None:
        if _DEFAULT_JOURNAL_DIR is None:
            return None
        return SweepJournal(_DEFAULT_JOURNAL_DIR)
    if isinstance(journal, SweepJournal):
        return journal
    # Anything speaking the journal protocol — get/record/record_many —
    # works as a cell cache; repro.store.ResultStore passes itself here
    # so sweeps replay from (and record into) the content-addressed
    # store instead of one bare journal file.
    if hasattr(journal, "get") and hasattr(journal, "record_many"):
        return journal  # type: ignore[return-value]
    return SweepJournal(journal)


def _cell_attrs(outcome: CellOutcome) -> Dict[str, object]:
    """JSON-safe span attributes naming one cell."""
    identity = outcome.identity
    return {
        "label": identity.label,
        "parameter": repr(identity.parameter),
        "trace": identity.trace_name,
        "engine": identity.engine,
    }


def _record_pooled_span(outcome: CellOutcome) -> None:
    """Synthetic ``cell`` span for a pool-executed cell.

    Worker processes cannot reach the parent's tracer, so the parent
    back-dates a span from the envelope's worker-measured seconds once
    the cell resolves (success or terminal failure).
    """
    attrs = _cell_attrs(outcome)
    attrs["pooled"] = True
    if outcome.error is not None:
        attrs["error"] = outcome.error
    obs_tracing.record("cell", outcome.seconds, **attrs)


def _record_success(
    outcome: CellOutcome,
    metrics: Dict[str, float],
    seconds: float,
    journal: Optional[SweepJournal],
    telemetry: SweepTelemetry,
) -> None:
    outcome.metrics = dict(metrics)
    outcome.miss_rate = metrics.get("miss_rate")
    outcome.seconds = seconds
    telemetry.completed += 1
    telemetry.cell_seconds.append(seconds)
    if journal is not None and outcome.identity.journalable:
        identity = outcome.identity
        journal.record(identity.key(), identity.payload(), metrics, seconds)


# Per-thread hook observing every resolved cell (cached, computed, or
# failed) as run_labeled_cells reports it.  Thread-local so concurrent
# sweeps — e.g. two serve requests on different handler threads — each
# stream only their own cells.
_OUTCOME_OBSERVER = threading.local()


@contextmanager
def outcome_observer(callback: "Callable[[SweepTelemetry, CellOutcome], None]"):
    """Observe each resolved cell of any sweep run on this thread.

    The callback receives the run's live telemetry and the cell's
    envelope at the same points ``--progress`` would print a line:
    journal replays, pooled/batched completions, and failures alike.
    ``repro.serve`` uses this to stream per-cell progress over HTTP.
    Callback exceptions are swallowed (and counted under the
    ``sweep.observer_errors`` metric): a broken observer must not
    poison the sweep it is watching.
    """
    previous = getattr(_OUTCOME_OBSERVER, "callback", None)
    _OUTCOME_OBSERVER.callback = callback
    try:
        yield
    finally:
        _OUTCOME_OBSERVER.callback = previous


def _report_progress(enabled: bool, telemetry: SweepTelemetry, outcome: CellOutcome) -> None:
    observer = getattr(_OUTCOME_OBSERVER, "callback", None)
    if observer is not None:
        try:
            observer(telemetry, outcome)
        except Exception:
            obs_metrics.counter("sweep.observer_errors")
    if not enabled:
        return
    resolved = telemetry.completed + telemetry.failed
    if outcome.cached:
        status = "journal"
    elif outcome.error is not None:
        status = f"FAILED ({outcome.error})"
    else:
        status = f"{outcome.seconds:.2f}s"
    print(
        f"[sweep {resolved}/{telemetry.total}] {outcome.identity.describe()} -> {status}",
        file=sys.stderr,
        flush=True,
    )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill the pool's workers; used to enforce per-cell timeouts."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_sequential(
    cells: Sequence["LabeledCell"],
    outcomes: List["CellOutcome"],
    pending: Sequence[int],
    engine: str,
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
    evaluator: Optional[CellEvaluator] = None,
) -> None:
    """Inline per-cell execution (no pool; also the batch-group fallback)."""
    for index in pending:
        outcome = outcomes[index]
        _, factory, parameter, trace = cells[index]
        outcome.attempts += 1
        cell_started = time.perf_counter()
        with obs_tracing.span("cell", **_cell_attrs(outcome)) as cell_span:
            try:
                metrics = evaluate_cell(factory, parameter, trace, engine, evaluator)
            except Exception as exc:
                outcome.seconds = time.perf_counter() - cell_started
                outcome.error = f"{type(exc).__name__}: {exc}"
                telemetry.failed += 1
                if cell_span is not None:
                    cell_span.attrs["error"] = outcome.error
            else:
                _record_success(
                    outcome, metrics, time.perf_counter() - cell_started,
                    journal, telemetry,
                )
        _report_progress(progress, telemetry, outcome)


# -- batched execution --------------------------------------------------------


class _JournalBatch:
    """Defers journal appends so a batch group flushes with one write.

    Quacks like :class:`SweepJournal` for :func:`_record_success`; every
    buffered entry is still one per-cell journal line, so resume
    granularity is unchanged — only the open/flush count drops from one
    per cell to one per group.
    """

    def __init__(self, journal: Optional[SweepJournal]) -> None:
        self._journal = journal
        self._entries: List[tuple] = []

    def record(self, key: str, fields: dict, metrics: Dict[str, float], seconds: float) -> None:
        self._entries.append((key, fields, metrics, seconds))

    def flush(self) -> None:
        if self._journal is not None and self._entries:
            self._journal.record_many(self._entries)
        self._entries.clear()


def _record_batched_span(outcome: CellOutcome) -> None:
    """Synthetic ``cell`` span for a batch-executed cell.

    Batched cells execute jointly inside one kernel invocation, so the
    scheduler back-dates each cell's span (and the ``cell.seconds``
    histogram fed from it) with the cell's share of the group's
    wall time once the group resolves.
    """
    attrs = _cell_attrs(outcome)
    attrs["batched"] = True
    if outcome.error is not None:
        attrs["error"] = outcome.error
    obs_tracing.record("cell", outcome.seconds, **attrs)


def _cell_batch_spec(factory: Callable[[object], object], parameter: object):
    """The cell's batch spec straight from its factory, if it offers one.

    The ``batch_spec`` factory protocol: a factory may expose
    ``batch_spec(parameter)`` returning a registered batch spec (or
    ``None``) describing exactly the model ``factory(parameter)`` would
    build.  It exists purely to skip model construction — building a
    large cache allocates per-set arrays just so the engine can read
    three fields off it — so a factory whose models are *not* freshly
    cold must return ``None`` and let the model-based eligibility check
    decide.
    """
    getter = getattr(factory, "batch_spec", None)
    if getter is None:
        return None
    spec = getter(parameter)
    if spec is None or not engine_mod.is_batch_spec(spec):
        return None
    return spec


def _batch_task(
    specs: "List[tuple]",
    trace_ref: TraceLike,
    engine: str,
) -> "List[tuple]":
    """Worker-side group execution: one marker tuple per cell, in order.

    ``specs`` is ``[(factory, parameter), ...]``.  Cells whose factory
    speaks the ``batch_spec`` protocol go straight to the spec-level
    kernel entry point; the rest build their model and either join the
    batch via the model-based eligibility check or fall back to per-cell
    fast simulation.  A factory that raises fails only its own cell; the
    group's compute time is split evenly across its cells (they execute
    jointly, there is no per-cell clock).  Raises only for group-level
    failures (trace load, kernel error), which the scheduler answers by
    re-running the cells individually.
    """
    started = time.perf_counter()
    trace = as_trace(trace_ref)
    batch_specs: List[Optional[object]] = []
    failures: Dict[int, str] = {}
    models: Dict[int, object] = {}
    for position, (factory, parameter) in enumerate(specs):
        spec = _cell_batch_spec(factory, parameter)
        if spec is None and position not in failures:
            try:
                model = factory(parameter)
            except Exception as exc:
                failures[position] = f"{type(exc).__name__}: {exc}"
            else:
                spec = engine_mod.batch_spec_for(model)
                if spec is None:
                    models[position] = model
        batch_specs.append(spec)
    vectorized = [i for i, spec in enumerate(batch_specs) if spec is not None]
    obs_metrics.counter("batch.cells.vectorized", len(vectorized))
    obs_metrics.counter("batch.cells.fallback", len(specs) - len(vectorized))
    results: List[tuple] = [()] * len(specs)
    if vectorized:
        stats_list = engine_mod.simulate_batch_specs(
            trace, [batch_specs[i] for i in vectorized]
        )
        for position, stats in zip(vectorized, stats_list):
            results[position] = ("ok", {"miss_rate": stats.miss_rate}, 0.0)
    for position, model in models.items():
        stats = engine_mod.simulate(model, trace, engine="fast")
        results[position] = ("ok", {"miss_rate": stats.miss_rate}, 0.0)
    share = (time.perf_counter() - started) / max(1, len(specs))
    for position, error in failures.items():
        results[position] = ("error", error, share)
    return [
        (marker[0], marker[1], share) for marker in results
    ]


def _apply_group_results(
    results: "List[tuple]",
    group: Sequence[int],
    outcomes: List[CellOutcome],
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
) -> None:
    """Fold one group's worker markers into per-cell envelopes."""
    batch_journal = _JournalBatch(journal)
    for index, marker in zip(group, results):
        outcome = outcomes[index]
        outcome.attempts += 1
        status, payload, seconds = marker
        outcome.seconds = seconds
        if status == "ok":
            _record_success(outcome, payload, seconds, batch_journal, telemetry)
        else:
            outcome.error = str(payload)
            telemetry.failed += 1
        _record_batched_span(outcome)
        _report_progress(progress, telemetry, outcome)
    batch_journal.flush()


def _run_batched_inline(
    cells: Sequence["LabeledCell"],
    outcomes: List[CellOutcome],
    groups: List[List[int]],
    engine: str,
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
) -> None:
    """Batched execution without a pool: one kernel invocation per group.

    A group-level failure (kernel exception, trace generation error)
    demotes just that group to the per-cell sequential path, so a
    poisoned cell costs its group's batching, not the sweep.
    """
    for group in groups:
        trace_ref = cells[group[0]][3]
        specs = [(cells[index][1], cells[index][2]) for index in group]
        with obs_tracing.span("batch_group", cells=len(group)) as group_span:
            try:
                results = _batch_task(specs, trace_ref, engine)
            except Exception as exc:
                if group_span is not None:
                    group_span.attrs["fallback"] = f"{type(exc).__name__}: {exc}"
                obs_metrics.counter("batch.group_fallbacks", engine=engine)
                _run_sequential(
                    cells, outcomes, group, engine, journal, progress, telemetry,
                )
            else:
                _apply_group_results(
                    results, group, outcomes, journal, progress, telemetry,
                )


def _run_batched_pooled(
    cells: Sequence["LabeledCell"],
    outcomes: List[CellOutcome],
    groups: List[List[int]],
    engine: str,
    workers: int,
    timeout: Optional[float],
    pool_retries: int,
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
) -> None:
    """Pooled batched execution with zero-copy trace distribution.

    The parent materialises each distinct trace once into a shared-
    memory segment (:class:`~repro.perf.shared.SharedTrace`) and ships
    workers a handle; group timeouts scale the per-cell budget by group
    size.  Any group that times out, crashes its worker, or raises falls
    back — cells intact — to the per-cell pooled machinery, which owns
    retries, per-cell timeouts, and solo crash attribution.  Segments
    are unlinked in a ``finally`` so no ``/dev/shm`` entry outlives the
    sweep, whatever failed inside it.
    """
    shared_traces: Dict[object, SharedTrace] = {}
    fallback: List[int] = []

    def trace_handle(trace: TraceLike) -> object:
        key: object = trace if is_trace_recipe(trace) else id(trace)
        entry = shared_traces.get(key)
        if entry is None:
            recipe = trace if is_trace_recipe(trace) else None
            entry = SharedTrace.create(as_trace(trace), recipe=recipe)
            shared_traces[key] = entry
        return entry.handle

    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(groups)))
        broke = False
        try:
            submitted = [
                (
                    group,
                    pool.submit(
                        _batch_task,
                        [(cells[index][1], cells[index][2]) for index in group],
                        trace_handle(cells[group[0]][3]),
                        engine,
                    ),
                )
                for group in groups
            ]
            for group, future in submitted:
                group_timeout = timeout * len(group) if timeout is not None else None
                try:
                    results = future.result(timeout=group_timeout)
                except CancelledError:
                    fallback.extend(group)
                except FuturesTimeoutError:
                    if timeout is not None:
                        _terminate_pool(pool)
                        broke = True
                    obs_metrics.counter("batch.group_fallbacks", engine=engine)
                    fallback.extend(group)
                except BrokenProcessPool:
                    broke = True
                    obs_metrics.counter("batch.group_fallbacks", engine=engine)
                    fallback.extend(group)
                except Exception:
                    obs_metrics.counter("batch.group_fallbacks", engine=engine)
                    fallback.extend(group)
                else:
                    _apply_group_results(
                        results, group, outcomes, journal, progress, telemetry,
                    )
        finally:
            pool.shutdown(wait=not broke, cancel_futures=True)
        if broke:
            telemetry.pool_restarts += 1
    finally:
        for entry in shared_traces.values():
            entry.unlink()

    if fallback:
        # Per-cell machinery: full retry budget, per-cell timeout, solo
        # attribution of a deterministic crasher.
        _run_pooled(
            cells, outcomes, fallback, engine, workers, timeout, pool_retries,
            journal, progress, telemetry, None,
        )


def run_labeled_cells(
    cells: Sequence[LabeledCell],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    pool_retries: Optional[int] = None,
    journal: "SweepJournal | str | Path | None" = None,
    progress: Optional[bool] = None,
    evaluator: Optional[CellEvaluator] = None,
    batch_cells: Optional[int] = None,
) -> List[CellOutcome]:
    """Execute labelled cells, returning one envelope per cell (in order).

    Never raises for an individual cell failure: every exception is
    captured into its envelope's ``error`` field with full identity, and
    callers decide whether to raise (:func:`run_cells` and
    :func:`repro.analysis.sweep.run_sweep` raise :class:`SweepCellError`
    listing exactly the failed cells).

    ``journal`` (a :class:`~repro.perf.journal.SweepJournal` or a
    directory path; default: the process-wide ``--resume-dir``) replays
    already-completed cells and records each new success immediately, so
    a crashed or interrupted sweep re-runs only the remainder.

    ``timeout`` (seconds; pooled runs only — a sequential run cannot
    interrupt itself) terminates the worker of a cell that exceeds it
    and fails just that cell.  A worker death (``BrokenProcessPool``)
    triggers up to ``pool_retries`` full-concurrency pool re-creations;
    if the crash persists, execution drops to one-cell-in-flight so the
    crashing cell is identified exactly and everything else completes.

    ``engine="batch"`` keeps every per-cell contract above — identities,
    journal entries (written under the fast engine's keys, since the
    results are pinned equal), envelopes, per-cell ``cell.seconds`` —
    but schedules pending cells in trace-sharing groups of
    ``batch_cells`` (default ``REPRO_BATCH_CELLS``, then
    :data:`DEFAULT_BATCH_CELLS`) through the vectorized batch kernels,
    shipping each distinct trace to pooled workers once via shared
    memory.  Cells without a batch kernel, and whole groups that fail or
    time out as a unit, fall back to the per-cell machinery; custom
    ``evaluator`` sweeps bypass grouping entirely (an evaluator is a
    per-cell measurement by contract).
    """
    engine = engine_mod.resolve_engine(engine)
    workers = resolve_workers(workers)
    journal = _resolve_journal(journal)
    progress = _DEFAULT_PROGRESS if progress is None else progress
    timeout = _DEFAULT_CELL_TIMEOUT if timeout is None else timeout
    pool_retries = DEFAULT_POOL_RETRIES if pool_retries is None else pool_retries

    started = time.perf_counter()
    telemetry = SweepTelemetry(engine=engine, workers=workers, total=len(cells))
    outcomes = [
        CellOutcome(identity=identity_for(label, factory, parameter, trace, engine,
                                          digest=journal is not None,
                                          evaluator=evaluator))
        for label, factory, parameter, trace in cells
    ]

    with obs_tracing.span(
        "sweep", engine=engine, workers=workers, cells=len(cells)
    ) as sweep_span:
        pending: List[int] = []
        for index, outcome in enumerate(outcomes):
            entry = None
            if journal is not None and outcome.identity.journalable:
                entry = journal.get(outcome.identity.key())
            if entry is not None:
                outcome.metrics = SweepJournal.entry_metrics(entry)
                outcome.miss_rate = outcome.metrics.get("miss_rate")
                outcome.cached = True
                telemetry.cached += 1
                telemetry.completed += 1
                _report_progress(progress, telemetry, outcome)
            else:
                pending.append(index)

        batched = engine == "batch" and evaluator is None and len(pending) > 1
        if batched:
            groups = _group_pending(cells, pending, resolve_batch_cells(batch_cells))
            if workers <= 1:
                _run_batched_inline(
                    cells, outcomes, groups, engine, journal, progress, telemetry,
                )
            else:
                _run_batched_pooled(
                    cells, outcomes, groups, engine, workers, timeout, pool_retries,
                    journal, progress, telemetry,
                )
        elif workers <= 1 or len(pending) <= 1:
            _run_sequential(
                cells, outcomes, pending, engine, journal, progress, telemetry,
                evaluator,
            )
        else:
            _run_pooled(
                cells, outcomes, pending, engine, workers, timeout, pool_retries,
                journal, progress, telemetry, evaluator,
            )

        telemetry.elapsed = time.perf_counter() - started
        if sweep_span is not None:
            sweep_span.attrs["completed"] = telemetry.completed
            sweep_span.attrs["failed"] = telemetry.failed
            sweep_span.attrs["cached"] = telemetry.cached
    _log_telemetry(telemetry)
    _publish_metrics(telemetry)
    return outcomes


def _run_pooled(
    cells: Sequence[LabeledCell],
    outcomes: List[CellOutcome],
    pending: List[int],
    engine: str,
    workers: int,
    timeout: Optional[float],
    pool_retries: int,
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
    evaluator: Optional[CellEvaluator] = None,
) -> None:
    """Pool execution with crash retry, timeout enforcement, and solo
    fallback for exact attribution of a persistent crasher."""
    crash_retries_left = pool_retries
    solo = False
    while pending:
        with obs_tracing.span(
            "pool_attempt",
            workers=min(workers, len(pending)),
            pending=len(pending),
            solo=solo,
        ) as attempt_span:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
            broke = False
            crashed = False
            try:
                if solo:
                    pending, broke = _solo_round(
                        pool, cells, outcomes, pending, engine, timeout,
                        journal, progress, telemetry, evaluator,
                    )
                    crashed = False  # solo rounds attribute and consume the crasher
                else:
                    pending, crashed, broke = _concurrent_round(
                        pool, cells, outcomes, pending, engine, timeout,
                        journal, progress, telemetry, evaluator,
                    )
            finally:
                pool.shutdown(wait=not broke, cancel_futures=True)
            if attempt_span is not None and broke:
                attempt_span.attrs["broke"] = True
        if broke:
            telemetry.pool_restarts += 1
        if crashed:
            crash_retries_left -= 1
            if crash_retries_left < 0:
                solo = True


def _concurrent_round(
    pool: ProcessPoolExecutor,
    cells: Sequence[LabeledCell],
    outcomes: List[CellOutcome],
    pending: List[int],
    engine: str,
    timeout: Optional[float],
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
    evaluator: Optional[CellEvaluator] = None,
) -> "tuple[List[int], bool, bool]":
    """Submit every pending cell at once.

    Returns ``(still_pending, crashed, broke)``: ``crashed`` means a
    worker died (retry budget applies); ``broke`` means the pool is
    unusable (crash or timeout termination) and must be re-created.
    """
    submitted = [
        (index, pool.submit(_cell_task, cells[index][1], cells[index][2],
                            cells[index][3], engine, evaluator))
        for index in pending
    ]
    still_pending: List[int] = []
    crashed = False
    broke = False
    timed_out = False
    for index, future in submitted:
        outcome = outcomes[index]
        try:
            metrics, seconds = future.result(timeout=timeout)
        except CancelledError:
            still_pending.append(index)  # no attempt consumed
            continue
        except FuturesTimeoutError as exc:
            outcome.attempts += 1
            if timeout is None:
                # No wait timeout configured: the *cell* raised a
                # TimeoutError of its own — a deterministic failure.
                outcome.error = f"{type(exc).__name__}: {exc}"
                telemetry.failed += 1
            else:
                outcome.error = (
                    f"TimeoutError: cell exceeded the {timeout}s per-cell "
                    f"timeout (worker terminated)"
                )
                telemetry.failed += 1
                _terminate_pool(pool)
                broke = True
                timed_out = True
            _record_pooled_span(outcome)
        except BrokenProcessPool:
            outcome.attempts += 1
            broke = True
            if not timed_out:
                crashed = True  # self-inflicted breaks don't burn retries
            still_pending.append(index)  # retried; culprit unknown in this mode
        except Exception as exc:
            # Deterministic cell error (bad geometry, kernel exception,
            # factory raise): retrying cannot help — fail this cell only.
            outcome.attempts += 1
            outcome.error = f"{type(exc).__name__}: {exc}"
            telemetry.failed += 1
            _record_pooled_span(outcome)
        else:
            outcome.attempts += 1
            _record_success(outcome, metrics, seconds, journal, telemetry)
            _record_pooled_span(outcome)
        _report_progress(progress, telemetry, outcome)
    return still_pending, crashed, broke


def _solo_round(
    pool: ProcessPoolExecutor,
    cells: Sequence[LabeledCell],
    outcomes: List[CellOutcome],
    pending: List[int],
    engine: str,
    timeout: Optional[float],
    journal: Optional[SweepJournal],
    progress: bool,
    telemetry: SweepTelemetry,
    evaluator: Optional[CellEvaluator] = None,
) -> "tuple[List[int], bool]":
    """One cell in flight at a time: a pool break names its cell exactly.

    Returns ``(still_pending, broke)``.  Guaranteed progress — every
    iteration either completes or definitively fails its cell — so the
    outer loop terminates even against a factory that kills its worker
    on every attempt.
    """
    remaining = list(pending)
    while remaining:
        index = remaining[0]
        outcome = outcomes[index]
        _, factory, parameter, trace = cells[index]
        future = pool.submit(_cell_task, factory, parameter, trace, engine, evaluator)
        outcome.attempts += 1
        try:
            metrics, seconds = future.result(timeout=timeout)
        except FuturesTimeoutError as exc:
            if timeout is None:
                outcome.error = f"{type(exc).__name__}: {exc}"
                telemetry.failed += 1
                _record_pooled_span(outcome)
                _report_progress(progress, telemetry, outcome)
                remaining = remaining[1:]
                continue
            outcome.error = (
                f"TimeoutError: cell exceeded the {timeout}s per-cell timeout "
                f"(worker terminated)"
            )
            telemetry.failed += 1
            _terminate_pool(pool)
            _record_pooled_span(outcome)
            _report_progress(progress, telemetry, outcome)
            return remaining[1:], True
        except BrokenProcessPool as exc:
            outcome.error = (
                f"{type(exc).__name__}: worker process died while executing "
                f"this cell ({exc})"
            )
            telemetry.failed += 1
            _record_pooled_span(outcome)
            _report_progress(progress, telemetry, outcome)
            return remaining[1:], True
        except Exception as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            telemetry.failed += 1
        else:
            _record_success(outcome, metrics, seconds, journal, telemetry)
        _record_pooled_span(outcome)
        _report_progress(progress, telemetry, outcome)
        remaining = remaining[1:]
    return remaining, False


def run_cells(
    cells: Sequence[Cell],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    journal: "SweepJournal | str | Path | None" = None,
    progress: Optional[bool] = None,
) -> List[float]:
    """Miss rates for every cell, preserving order.

    ``workers <= 1`` runs inline (no pool, nothing needs pickling).
    Otherwise the cells are farmed to a :class:`ProcessPoolExecutor`;
    the engine name is resolved *before* submission so the CLI's
    ``--engine`` default reaches the workers even though module globals
    are not shared across processes.

    Cells are executed through the resilient envelope layer
    (:func:`run_labeled_cells`); any cell failure raises
    :class:`SweepCellError` naming the failed cells rather than losing
    the grid to an anonymous worker exception.
    """
    labeled: List[LabeledCell] = [
        (getattr(factory, "__name__", type(factory).__name__), factory, parameter, trace)
        for factory, parameter, trace in cells
    ]
    outcomes = run_labeled_cells(
        labeled, engine=engine, workers=workers, timeout=timeout,
        journal=journal, progress=progress,
    )
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise SweepCellError(failures, len(outcomes))
    return [outcome.miss_rate for outcome in outcomes]  # type: ignore[misc]
