"""The sweep runtime: orchestration over pluggable execution backends.

A figure sweep is a grid of independent (parameter, policy, benchmark)
cells.  This module owns the run-level contract — per-cell
:class:`CellOutcome` envelopes, journal replay and merge-on-arrival
resume, telemetry, progress/observer streaming — and delegates *how*
pending cells execute to a :class:`~repro.perf.backends.SweepBackend`:

* ``inline`` — this process, no pool (the single-worker default);
* ``local-pool`` — one machine's ProcessPoolExecutor with crash retry,
  solo-mode crash attribution, per-cell timeouts, and the batched
  shared-memory tier;
* ``fleet`` — cells sharded across long-lived ``repro worker``
  subprocesses (local or SSH) with worker retirement and re-dispatch.

Backend selection: an explicit ``backend=`` argument > the CLI's
``--backend`` default > ``REPRO_BACKEND`` > automatic (``inline`` for
single-worker or single-cell runs, ``local-pool`` otherwise — exactly
the pre-backend dispatch).

Worker count resolution, in priority order:

1. an explicit ``workers=`` argument,
2. the process default set by ``--workers`` on the experiments CLI,
3. the ``REPRO_WORKERS`` environment variable (validated like
   ``REPRO_TRACE_SCALE``),
4. 1 (sequential — no process pool is created at all).

The split history: trace recipes live in
:mod:`repro.perf.trace_cache`, identity/envelope types in
:mod:`repro.perf.cells`, telemetry in :mod:`repro.perf.telemetry`, and
the execution strategies in :mod:`repro.perf.backends`.  Everything
historically importable from this module still is.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..env import env_batch_cells
from ..env import env_fleet_hosts  # noqa: F401 (re-exported; the one parser)
from ..env import env_workers  # noqa: F401 (re-exported; the one parser)
from ..obs import distributed as obs_distributed
from ..obs import tracing as obs_tracing
from . import engine as engine_mod
from .backends import (
    SweepContext,
    create_backend,
    default_backend,
    outcome_observer,  # noqa: F401 (public API, re-exported)
    resolve_backend,
    set_default_backend,  # noqa: F401 (public API, re-exported)
)
from .backends.base import cell_attrs as _cell_attrs  # noqa: F401 (compat)
from .backends.base import report_outcome as _report_outcome
from .backends.batched import group_pending as _group_pending  # noqa: F401 (compat)
from .cells import (  # noqa: F401 (public API, re-exported)
    Cell,
    CellEvaluator,
    CellIdentity,
    CellOutcome,
    LabeledCell,
    SweepCellError,
    cell_task as _cell_task,  # compat alias: the pre-split private name
    evaluate_cell,
    identity_for,
    simulate_cell,
)
from .journal import SweepJournal
from .telemetry import (  # noqa: F401 (public API, re-exported)
    TELEMETRY_LOG_LIMIT,
    SweepTelemetry,
    drain_telemetry,
    log_telemetry as _log_telemetry,  # compat alias: the pre-split private name
    publish_metrics as _publish_metrics,
)
from .trace_cache import (  # noqa: F401 (public API, re-exported)
    TraceKey,
    TraceLike,
    as_trace,
    clear_trace_cache,
    is_trace_recipe,
)


# -- worker-count resolution --------------------------------------------------

_DEFAULT_WORKERS: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default (the CLI's ``--workers`` flag)."""
    if workers is not None and workers < 1:
        raise ValueError("workers must be at least 1")
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > CLI default > REPRO_WORKERS > 1."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        return workers
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = env_workers()
    if env is not None:
        return env
    return 1


# -- batch-group sizing -------------------------------------------------------

#: Cells per vectorized batch-kernel invocation.  Wide enough that the
#: shared trace factorization amortises; small enough that one group's
#: failure or timeout forfeits little work to the per-cell fallback.
DEFAULT_BATCH_CELLS = 16


def resolve_batch_cells(batch_cells: Optional[int] = None) -> int:
    """Explicit argument > REPRO_BATCH_CELLS > DEFAULT_BATCH_CELLS."""
    if batch_cells is not None:
        if batch_cells < 1:
            raise ValueError("batch_cells must be at least 1")
        return batch_cells
    env = env_batch_cells()
    if env is not None:
        return env
    return DEFAULT_BATCH_CELLS


# -- resilience defaults (the CLI's --resume-dir / --progress flags) ----------

#: Pool re-creations attempted after a worker crash before switching to
#: one-cell-in-flight execution to attribute the crasher precisely.
#: The fleet backend spends the same budget as per-cell re-dispatches.
DEFAULT_POOL_RETRIES = 2

_DEFAULT_JOURNAL_DIR: Optional[Path] = None
_DEFAULT_PROGRESS = False
_DEFAULT_CELL_TIMEOUT: Optional[float] = None


def set_default_journal_dir(directory: "str | Path | None") -> None:
    """Journal every sweep in this process under ``directory`` (CLI ``--resume-dir``)."""
    global _DEFAULT_JOURNAL_DIR
    _DEFAULT_JOURNAL_DIR = Path(directory) if directory is not None else None


def default_journal_dir() -> Optional[Path]:
    """The process-wide resume directory (None = journaling off)."""
    return _DEFAULT_JOURNAL_DIR


def set_default_progress(enabled: bool) -> None:
    """Print per-cell progress lines to stderr (CLI ``--progress``)."""
    global _DEFAULT_PROGRESS
    _DEFAULT_PROGRESS = bool(enabled)


def set_default_cell_timeout(seconds: Optional[float]) -> None:
    """Per-cell timeout for pooled runs (None disables)."""
    if seconds is not None and seconds <= 0:
        raise ValueError("cell timeout must be positive")
    global _DEFAULT_CELL_TIMEOUT
    _DEFAULT_CELL_TIMEOUT = seconds


def _resolve_journal(journal: "SweepJournal | str | Path | None") -> Optional[SweepJournal]:
    if journal is None:
        if _DEFAULT_JOURNAL_DIR is None:
            return None
        return SweepJournal(_DEFAULT_JOURNAL_DIR)
    if isinstance(journal, SweepJournal):
        return journal
    # Anything speaking the journal protocol — get/record/record_many —
    # works as a cell cache; repro.store.ResultStore passes itself here
    # so sweeps replay from (and record into) the content-addressed
    # store instead of one bare journal file.
    if hasattr(journal, "get") and hasattr(journal, "record_many"):
        return journal  # type: ignore[return-value]
    return SweepJournal(journal)


def _auto_backend(workers: int, pending: int) -> str:
    """The automatic strategy: exactly the pre-backend dispatch.

    Single-worker and single-cell runs stay inline (no pool, nothing
    needs pickling); everything else pools on this machine.  The inline
    and local-pool backends each route ``engine="batch"`` runs to their
    batched tier internally.
    """
    if workers <= 1 or pending <= 1:
        return "inline"
    return "local-pool"


def run_labeled_cells(
    cells: Sequence[LabeledCell],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    pool_retries: Optional[int] = None,
    journal: "SweepJournal | str | Path | None" = None,
    progress: Optional[bool] = None,
    evaluator: Optional[CellEvaluator] = None,
    batch_cells: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[CellOutcome]:
    """Execute labelled cells, returning one envelope per cell (in order).

    Never raises for an individual cell failure: every exception is
    captured into its envelope's ``error`` field with full identity, and
    callers decide whether to raise (:func:`run_cells` and
    :func:`repro.analysis.sweep.run_sweep` raise :class:`SweepCellError`
    listing exactly the failed cells).

    ``journal`` (a :class:`~repro.perf.journal.SweepJournal` or a
    directory path; default: the process-wide ``--resume-dir``) replays
    already-completed cells and records each new success immediately, so
    a crashed or interrupted sweep re-runs only the remainder.  Journal
    keys are backend-independent: a journal written under any backend
    resumes under any other.

    ``timeout`` (seconds; pooled/fleet runs only — a sequential run
    cannot interrupt itself) terminates the worker of a cell that
    exceeds it and fails just that cell.  A worker death triggers up to
    ``pool_retries`` re-executions (pool re-creations under
    ``local-pool``, re-dispatches to surviving workers under ``fleet``);
    if the crash persists, the crashing cell is failed with exact
    attribution and everything else completes.

    ``engine="batch"`` keeps every per-cell contract above — identities,
    journal entries (written under the fast engine's keys, since the
    results are pinned equal), envelopes, per-cell ``cell.seconds`` —
    but schedules pending cells in trace-sharing groups of
    ``batch_cells`` (default ``REPRO_BATCH_CELLS``, then
    :data:`DEFAULT_BATCH_CELLS`) through the vectorized batch kernels.

    ``backend`` picks the execution strategy (``inline`` /
    ``local-pool`` / ``fleet``); ``None`` defers to the CLI default,
    then ``REPRO_BACKEND``, then the automatic per-run choice.
    """
    engine = engine_mod.resolve_engine(engine)
    workers = resolve_workers(workers)
    journal = _resolve_journal(journal)
    progress = _DEFAULT_PROGRESS if progress is None else progress
    timeout = _DEFAULT_CELL_TIMEOUT if timeout is None else timeout
    pool_retries = DEFAULT_POOL_RETRIES if pool_retries is None else pool_retries
    backend = resolve_backend(backend)

    started = time.perf_counter()
    telemetry = SweepTelemetry(engine=engine, workers=workers, total=len(cells))
    outcomes = [
        CellOutcome(identity=identity_for(label, factory, parameter, trace, engine,
                                          digest=journal is not None,
                                          evaluator=evaluator))
        for label, factory, parameter, trace in cells
    ]

    with obs_tracing.span(
        "sweep", engine=engine, workers=workers, cells=len(cells)
    ) as sweep_span:
        pending: List[int] = []
        for index, outcome in enumerate(outcomes):
            entry = None
            if journal is not None and outcome.identity.journalable:
                entry = journal.get(outcome.identity.key())
            if entry is not None:
                outcome.metrics = SweepJournal.entry_metrics(entry)
                outcome.miss_rate = outcome.metrics.get("miss_rate")
                outcome.cached = True
                telemetry.cached += 1
                telemetry.completed += 1
                _report_outcome(progress, telemetry, outcome)
            else:
                pending.append(index)

        backend_name = backend or _auto_backend(workers, len(pending))
        telemetry.backend = backend_name
        if sweep_span is not None:
            sweep_span.attrs["backend"] = backend_name
        ctx = SweepContext(
            cells=cells,
            outcomes=outcomes,
            engine=engine,
            workers=workers,
            timeout=timeout,
            pool_retries=pool_retries,
            journal=journal,
            progress=progress,
            telemetry=telemetry,
            evaluator=evaluator,
            batch_cells=resolve_batch_cells(batch_cells),
            fleet_hosts=env_fleet_hosts(),
            # Captured inside the sweep span, so shipped worker spans
            # parent under it (per thread, the innermost open span).
            obs_ctx=obs_distributed.propagation_context(),
        )
        runner = create_backend(backend_name)
        try:
            if pending:
                for outcome in runner.submit_cells(pending, ctx):
                    ctx.report(outcome)
        finally:
            runner.close()
        telemetry.elapsed = time.perf_counter() - started
        if sweep_span is not None:
            sweep_span.attrs["completed"] = telemetry.completed
            sweep_span.attrs["failed"] = telemetry.failed
            sweep_span.attrs["cached"] = telemetry.cached
    _log_telemetry(telemetry)
    _publish_metrics(telemetry)
    return outcomes


def run_cells(
    cells: Sequence[Cell],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    journal: "SweepJournal | str | Path | None" = None,
    progress: Optional[bool] = None,
    backend: Optional[str] = None,
) -> List[float]:
    """Miss rates for every cell, preserving order.

    ``workers <= 1`` runs inline (no pool, nothing needs pickling).
    Otherwise the cells are farmed to the selected backend; the engine
    name is resolved *before* submission so the CLI's ``--engine``
    default reaches the workers even though module globals are not
    shared across processes.

    Cells are executed through the resilient envelope layer
    (:func:`run_labeled_cells`); any cell failure raises
    :class:`SweepCellError` naming the failed cells rather than losing
    the grid to an anonymous worker exception.
    """
    labeled: List[LabeledCell] = [
        (getattr(factory, "__name__", type(factory).__name__), factory, parameter, trace)
        for factory, parameter, trace in cells
    ]
    outcomes = run_labeled_cells(
        labeled, engine=engine, workers=workers, timeout=timeout,
        journal=journal, progress=progress, backend=backend,
    )
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise SweepCellError(failures, len(outcomes))
    return [outcome.miss_rate for outcome in outcomes]  # type: ignore[misc]
