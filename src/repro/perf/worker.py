"""The ``repro worker`` protocol loop for the fleet backend.

A fleet worker is a long-lived subprocess — launched locally or via
``ssh host python -m repro.cli worker`` — that executes sweep cells one
at a time, speaking newline-delimited JSON over stdin/stdout:

Requests (one JSON object per line, parent → worker)::

    {"op": "ping", "id": 7}
    {"op": "cell", "id": 8, "engine": "fast", "payload": "<base64 pickle>",
     "obs": {"version": 1, "trace_id": "...", "parent_span_id": 3}}
    {"op": "shutdown"}

``payload`` is a base64-encoded pickle of ``(factory, parameter,
trace, evaluator)`` — the same objects a process pool would pickle, so
the fleet inherits the pool's picklability contract (module-level
factories, trace recipes instead of raw arrays).

Responses (worker → parent)::

    {"event": "ready", "pid": 1234, "host": "..."}       # once, at start
    {"event": "pong", "id": 7}
    {"event": "result", "id": 8, "ok": true,
     "metrics": {"miss_rate": 0.0123}, "seconds": 0.45}
    {"event": "result", "id": 8, "ok": false,
     "error": "RuntimeError: poisoned parameter 2048", "seconds": 0.01}

Deterministic cell failures (a factory raise, a bad geometry) are
captured worker-side into ``ok: false`` results — only a worker *death*
(missing response + EOF) is a crash the parent retries.  stdout is
reserved for the protocol; anything the simulation says goes to stderr.

When the request carries an ``obs`` trace-propagation context the cell
runs under a :class:`repro.obs.distributed.WorkerCapture`, and the
result event (success *and* failure) gains an ``obs`` key with the
captured spans and metric deltas for the parent to merge.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import sys
import time
from typing import IO, Optional

from repro.obs import tracing as obs_tracing
from repro.obs.distributed import WorkerCapture

from .cells import evaluate_cell


def _emit(stream: IO[str], payload: dict) -> None:
    stream.write(json.dumps(payload, sort_keys=True) + "\n")
    stream.flush()


def _run_cell(request: dict) -> dict:
    obs_ctx = request.get("obs")
    capture = None
    if isinstance(obs_ctx, dict):
        # Enter before payload decode so the capture epoch brackets
        # everything the parent's back-dated cell span times.
        capture = WorkerCapture(obs_ctx)
        capture.__enter__()
    started = time.perf_counter()
    try:
        # cell_exec brackets the exact region ``seconds`` times (decode
        # included), so the shipped trace accounts for the parent's
        # whole back-dated cell span even when GC or the scheduler
        # pauses the worker between sub-phase spans.
        with obs_tracing.span("cell_exec"):
            raw = base64.b64decode(request["payload"].encode("ascii"))
            factory, parameter, trace, evaluator = pickle.loads(raw)
            metrics = evaluate_cell(
                factory, parameter, trace, request.get("engine"), evaluator
            )
    except Exception as exc:
        result = {
            "event": "result",
            "id": request.get("id"),
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "seconds": time.perf_counter() - started,
        }
        if capture is not None:
            capture.__exit__(None, None, None)
            result["obs"] = capture.payload()
        return result
    result = {
        "event": "result",
        "id": request.get("id"),
        "ok": True,
        "metrics": metrics,
        "seconds": time.perf_counter() - started,
    }
    if capture is not None:
        capture.__exit__(None, None, None)
        result["obs"] = capture.payload()
    return result


def worker_main(
    stdin: Optional[IO[str]] = None, stdout: Optional[IO[str]] = None
) -> int:
    """Serve cell requests until EOF or a ``shutdown`` op; returns 0.

    Runs one request at a time (the parent keeps at most one cell in
    flight per worker, so a dead worker forfeits exactly one cell).
    Malformed lines are answered with an ``error`` event rather than
    killing the worker — a protocol hiccup must not cost the fleet a
    member mid-sweep.
    """
    in_stream = sys.stdin if stdin is None else stdin
    out_stream = sys.stdout if stdout is None else stdout
    _emit(out_stream, {
        "event": "ready",
        "pid": os.getpid(),
        "host": socket.gethostname(),
    })
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            _emit(out_stream, {
                "event": "error",
                "error": f"malformed request line: {line[:120]!r}",
            })
            continue
        op = request.get("op")
        if op == "shutdown":
            break
        if op == "ping":
            _emit(out_stream, {"event": "pong", "id": request.get("id")})
        elif op == "cell":
            _emit(out_stream, _run_cell(request))
        else:
            _emit(out_stream, {
                "event": "error",
                "id": request.get("id"),
                "error": f"unknown op {op!r}",
            })
    return 0
