"""Simulation-engine dispatch: fast kernels with reference fallback.

:func:`simulate` is the one entry point the sweep/experiment layers go
through.  With ``engine="reference"`` it simply calls the model's own
``simulate`` (the per-reference Python loop).  With ``engine="fast"`` it
consults the kernel registry: configurations with a set-partitioned
kernel (:mod:`repro.perf.kernels`) — direct-mapped, dynamic exclusion
with the ideal store, the Belady-optimal family, LRU set-associative —
run through it, everything else — victim caches, FIFO/random
replacement, hierarchies, non-ideal hit-last stores, multi-level sticky
bits — silently falls back to the reference path, so callers never need
to know which configurations are accelerated.

The fast path is *pure*: it requires a freshly constructed model (cold
arrays, zero stats) and does not mutate it, returning a standalone
:class:`~repro.caches.stats.CacheStats`.  A model that has already been
touched falls back to the reference engine, which accumulates into the
model exactly as before.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..caches.base import Cache, OfflineCache
from ..obs import profiling as obs_profiling
from ..obs import tracing as obs_tracing
from ..caches.direct_mapped import DirectMappedCache
from ..caches.optimal import (
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
)
from ..caches.set_associative import SetAssociativeCache
from ..caches.stats import CacheStats
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..trace.trace import Trace
from . import kernels

#: The recognised engine names.
ENGINES = ("fast", "reference")


class KernelExecutionError(RuntimeError):
    """A fast kernel raised mid-simulation.

    Wraps the original exception (available as ``__cause__``) with the
    model type and trace identity, so a failure deep inside a vectorized
    kernel during a 500-cell sweep is attributable without a debugger.
    """

Simulator = Union[Cache, OfflineCache]
KernelRunner = Callable[[Trace], CacheStats]

#: Exact model type -> matcher returning a kernel runner (or None when
#: the particular instance is not kernel-eligible).
_KERNEL_FACTORIES: Dict[type, Callable[[Simulator], Optional[KernelRunner]]] = {}


def register_kernel(cache_type: type):
    """Class decorator target: register a kernel matcher for a model type.

    The matcher receives the model *instance* and returns a callable
    ``trace -> CacheStats`` when the instance's configuration is
    supported, else ``None``.  Matching is by exact type, so subclasses
    with changed behaviour never inherit a kernel silently.
    """

    def decorator(matcher: Callable[[Simulator], Optional[KernelRunner]]):
        _KERNEL_FACTORIES[cache_type] = matcher
        return matcher

    return decorator


def _is_cold(cache: Cache) -> bool:
    """Freshly built: no accesses counted and nothing resident."""
    stats = cache.stats
    return stats.accesses == 0 and stats.misses == 0 and not cache.resident_lines()


@register_kernel(DirectMappedCache)
def _direct_mapped_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not DirectMappedCache:
        return None
    if not cache.allocate_on_miss or not _is_cold(cache):
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_direct_mapped(trace, geometry)


@register_kernel(DynamicExclusionCache)
def _dynamic_exclusion_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not DynamicExclusionCache:
        return None
    if cache.sticky_levels != 1:
        return None
    store = cache.store
    if type(store) is not IdealHitLastStore or len(store) != 0:
        return None
    if not _is_cold(cache):
        return None
    geometry = cache.geometry
    default = store.default
    return lambda trace: kernels.simulate_dynamic_exclusion(
        trace, geometry, default_hit_last=default
    )


@register_kernel(OptimalCache)
def _optimal_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not OptimalCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_belady(trace, geometry)


@register_kernel(OptimalDirectMappedCache)
def _optimal_direct_mapped_kernel(cache: Simulator) -> Optional[KernelRunner]:
    # Same simulation as OptimalCache (the subclass only constrains the
    # geometry), but registered separately to keep exact-type matching.
    if type(cache) is not OptimalDirectMappedCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_belady(trace, geometry)


@register_kernel(OptimalLastLineCache)
def _optimal_last_line_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not OptimalLastLineCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_optimal_last_line(trace, geometry)


@register_kernel(SetAssociativeCache)
def _lru_set_associative_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not SetAssociativeCache:
        return None
    if cache.policy_name != "lru" or not _is_cold(cache):
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_lru(trace, geometry)


def registered_kernel_types() -> "tuple[type, ...]":
    """The exact model types with a registered kernel matcher."""
    return tuple(_KERNEL_FACTORIES)


def kernel_for(simulator: Simulator) -> Optional[KernelRunner]:
    """The fast kernel for this exact configuration, or ``None``."""
    matcher = _KERNEL_FACTORIES.get(type(simulator))
    if matcher is None:
        return None
    return matcher(simulator)


def has_kernel(simulator: Simulator) -> bool:
    """Whether ``simulate(..., engine="fast")`` would avoid the fallback."""
    return kernel_for(simulator) is not None


# -- engine selection ---------------------------------------------------------

_DEFAULT_ENGINE = "reference"


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name, substituting the process default for None."""
    if engine is None:
        return _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {list(ENGINES)}")
    return engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (the CLI's ``--engine`` flag)."""
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {list(ENGINES)}")
    _DEFAULT_ENGINE = engine


def default_engine() -> str:
    """The process-wide default engine name."""
    return _DEFAULT_ENGINE


def simulate(
    simulator: Simulator, trace: Trace, engine: Optional[str] = None
) -> CacheStats:
    """Run ``trace`` through ``simulator`` under the chosen engine.

    ``engine=None`` uses the process default (``reference`` unless the
    experiments CLI was invoked with ``--engine fast``).
    """
    engine = resolve_engine(engine)
    model = type(simulator).__name__
    runner = kernel_for(simulator) if engine == "fast" else None
    path = "kernel" if runner is not None else "reference"
    with obs_tracing.span(
        "simulate",
        model=model,
        trace=trace.name or "<unnamed>",
        refs=len(trace),
        engine=engine,
        path=path,
    ):
        if runner is not None:
            with obs_profiling.section(f"kernel:{model}"):
                try:
                    return runner(trace)
                except Exception as exc:
                    raise KernelExecutionError(
                        f"fast kernel for {model} failed on "
                        f"trace {trace.name or '<unnamed>'!r} ({len(trace)} refs): "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
        with obs_profiling.section(f"reference:{model}"):
            return simulator.simulate(trace)
