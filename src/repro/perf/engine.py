"""Simulation-engine dispatch: fast kernels with reference fallback.

:func:`simulate` is the one entry point the sweep/experiment layers go
through.  With ``engine="reference"`` it simply calls the model's own
``simulate`` (the per-reference Python loop).  With ``engine="fast"`` it
consults the kernel registry: configurations with a set-partitioned
kernel (:mod:`repro.perf.kernels`) — direct-mapped, dynamic exclusion
with the ideal store, the Belady-optimal family, LRU set-associative —
run through it, everything else — victim caches, FIFO/random
replacement, hierarchies, non-ideal hit-last stores, multi-level sticky
bits — silently falls back to the reference path, so callers never need
to know which configurations are accelerated.

The fast path is *pure*: it requires a freshly constructed model (cold
arrays, zero stats) and does not mutate it, returning a standalone
:class:`~repro.caches.stats.CacheStats`.  A model that has already been
touched falls back to the reference engine, which accumulates into the
model exactly as before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from ..caches.base import Cache, OfflineCache
from ..obs import metrics as obs_metrics
from ..obs import profiling as obs_profiling
from ..obs import tracing as obs_tracing
from ..caches.direct_mapped import DirectMappedCache
from ..caches.optimal import (
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
)
from ..caches.set_associative import SetAssociativeCache
from ..caches.stats import CacheStats
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..trace.trace import Trace
from . import kernels
from .batch import DEBatchSpec, simulate_dynamic_exclusion_batch

#: The recognised engine names.  ``batch`` behaves exactly like ``fast``
#: for a single model; its value is in :func:`simulate_batch`, which
#: simulates many cells sharing one trace in a single vectorized
#: invocation.
ENGINES = ("fast", "batch", "reference")


class KernelExecutionError(RuntimeError):
    """A fast kernel raised mid-simulation.

    Wraps the original exception (available as ``__cause__``) with the
    model type and trace identity, so a failure deep inside a vectorized
    kernel during a 500-cell sweep is attributable without a debugger.
    """

Simulator = Union[Cache, OfflineCache]
KernelRunner = Callable[[Trace], CacheStats]

#: Exact model type -> matcher returning a kernel runner (or None when
#: the particular instance is not kernel-eligible).
_KERNEL_FACTORIES: Dict[type, Callable[[Simulator], Optional[KernelRunner]]] = {}


def register_kernel(cache_type: type):
    """Class decorator target: register a kernel matcher for a model type.

    The matcher receives the model *instance* and returns a callable
    ``trace -> CacheStats`` when the instance's configuration is
    supported, else ``None``.  Matching is by exact type, so subclasses
    with changed behaviour never inherit a kernel silently.
    """

    def decorator(matcher: Callable[[Simulator], Optional[KernelRunner]]):
        _KERNEL_FACTORIES[cache_type] = matcher
        return matcher

    return decorator


def _is_cold(cache: Cache) -> bool:
    """Freshly built: no accesses counted and nothing resident."""
    stats = cache.stats
    return stats.accesses == 0 and stats.misses == 0 and not cache.resident_lines()


@register_kernel(DirectMappedCache)
def _direct_mapped_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not DirectMappedCache:
        return None
    if not cache.allocate_on_miss or not _is_cold(cache):
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_direct_mapped(trace, geometry)


@register_kernel(DynamicExclusionCache)
def _dynamic_exclusion_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not DynamicExclusionCache:
        return None
    if cache.sticky_levels != 1:
        return None
    store = cache.store
    if type(store) is not IdealHitLastStore or len(store) != 0:
        return None
    if not _is_cold(cache):
        return None
    geometry = cache.geometry
    default = store.default
    return lambda trace: kernels.simulate_dynamic_exclusion(
        trace, geometry, default_hit_last=default
    )


@register_kernel(OptimalCache)
def _optimal_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not OptimalCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_belady(trace, geometry)


@register_kernel(OptimalDirectMappedCache)
def _optimal_direct_mapped_kernel(cache: Simulator) -> Optional[KernelRunner]:
    # Same simulation as OptimalCache (the subclass only constrains the
    # geometry), but registered separately to keep exact-type matching.
    if type(cache) is not OptimalDirectMappedCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_belady(trace, geometry)


@register_kernel(OptimalLastLineCache)
def _optimal_last_line_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not OptimalLastLineCache:
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_optimal_last_line(trace, geometry)


@register_kernel(SetAssociativeCache)
def _lru_set_associative_kernel(cache: Simulator) -> Optional[KernelRunner]:
    if type(cache) is not SetAssociativeCache:
        return None
    if cache.policy_name != "lru" or not _is_cold(cache):
        return None
    geometry = cache.geometry
    return lambda trace: kernels.simulate_lru(trace, geometry)


def registered_kernel_types() -> "tuple[type, ...]":
    """The exact model types with a registered kernel matcher."""
    return tuple(_KERNEL_FACTORIES)


def kernel_for(simulator: Simulator) -> Optional[KernelRunner]:
    """The fast kernel for this exact configuration, or ``None``."""
    matcher = _KERNEL_FACTORIES.get(type(simulator))
    if matcher is None:
        return None
    return matcher(simulator)


def has_kernel(simulator: Simulator) -> bool:
    """Whether ``simulate(..., engine="fast")`` would avoid the fallback."""
    return kernel_for(simulator) is not None


# -- batch kernels ------------------------------------------------------------
#
# A batch kernel simulates MANY cells that share one trace in a single
# vectorized invocation, amortizing the per-trace factorization (address
# sort, run detection) that a per-cell kernel repeats for every
# geometry.  The indirection mirrors the per-cell registry: a *spec
# extractor* keyed by exact model type turns an eligible instance into a
# lightweight, hashable spec, and a *runner* keyed by spec type executes
# a homogeneous group of specs against one trace.

#: Exact model type -> extractor returning a batch spec (or None when
#: the instance is not batch-eligible).
_BATCH_SPEC_FACTORIES: Dict[type, Callable[[Simulator], Optional[object]]] = {}

#: Spec type -> runner ``(trace, specs) -> [CacheStats, ...]``.
_BATCH_RUNNERS: Dict[type, Callable[[Trace, Sequence[object]], List[CacheStats]]] = {}


def register_batch_spec(cache_type: type):
    """Register a batch-spec extractor for an exact model type."""

    def decorator(extractor: Callable[[Simulator], Optional[object]]):
        _BATCH_SPEC_FACTORIES[cache_type] = extractor
        return extractor

    return decorator


def register_batch_kernel(spec_type: type):
    """Register the vectorized runner for a batch-spec type."""

    def decorator(runner: Callable[[Trace, Sequence[object]], List[CacheStats]]):
        _BATCH_RUNNERS[spec_type] = runner
        return runner

    return decorator


@register_batch_spec(DynamicExclusionCache)
def _dynamic_exclusion_batch_spec(cache: Simulator) -> Optional[DEBatchSpec]:
    # Same eligibility surface as the per-cell fast kernel, narrowed to
    # the direct-mapped geometry the batched FSM supports.
    if type(cache) is not DynamicExclusionCache:
        return None
    if cache.sticky_levels != 1:
        return None
    store = cache.store
    if type(store) is not IdealHitLastStore or len(store) != 0:
        return None
    if not _is_cold(cache):
        return None
    if cache.geometry.associativity != 1:
        return None
    return DEBatchSpec(cache.geometry, default_hit_last=store.default)


register_batch_kernel(DEBatchSpec)(simulate_dynamic_exclusion_batch)


def is_batch_spec(spec: object) -> bool:
    """Whether ``spec``'s type has a registered batch runner."""
    return type(spec) in _BATCH_RUNNERS


def batch_spec_for(simulator: Simulator) -> Optional[object]:
    """The batch spec for this exact configuration, or ``None``."""
    extractor = _BATCH_SPEC_FACTORIES.get(type(simulator))
    if extractor is None:
        return None
    spec = extractor(simulator)
    if spec is None or not is_batch_spec(spec):
        return None
    return spec


def has_batch_kernel(simulator: Simulator) -> bool:
    """Whether :func:`simulate_batch` would vectorize this model."""
    return batch_spec_for(simulator) is not None


def simulate_batch_specs(
    trace: Trace, specs: Sequence[object]
) -> List[CacheStats]:
    """Run batch specs (every one registered) against one shared trace.

    The spec-level entry point: callers that can describe their cells
    without building models (see the ``batch_spec`` factory protocol in
    :mod:`repro.perf.parallel`) skip model construction entirely —
    constructing a large cache allocates arrays proportional to its set
    count, real money across a wide sweep.  Specs are grouped by type
    and each group runs in one vectorized kernel invocation; results
    come back in input order.
    """
    results: List[Optional[CacheStats]] = [None] * len(specs)
    groups: Dict[type, List[int]] = {}
    for i, spec in enumerate(specs):
        if not is_batch_spec(spec):
            raise ValueError(
                f"no batch kernel registered for spec {spec!r} "
                f"(type {type(spec).__name__})"
            )
        groups.setdefault(type(spec), []).append(i)
    obs_metrics.counter("batch.groups", max(1, len(groups)))
    with obs_tracing.span(
        "simulate_batch",
        trace=trace.name or "<unnamed>",
        refs=len(trace),
        cells=len(specs),
        vectorized=len(specs),
    ):
        for spec_type, indices in groups.items():
            runner = _BATCH_RUNNERS[spec_type]
            group_specs = [specs[i] for i in indices]
            with obs_profiling.section(f"batch_kernel:{spec_type.__name__}"):
                try:
                    group_stats = runner(trace, group_specs)
                except Exception as exc:
                    raise KernelExecutionError(
                        f"batch kernel for {spec_type.__name__} failed on "
                        f"trace {trace.name or '<unnamed>'!r} "
                        f"({len(trace)} refs, {len(indices)} cells): "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
            if len(group_stats) != len(indices):
                raise KernelExecutionError(
                    f"batch kernel for {spec_type.__name__} returned "
                    f"{len(group_stats)} results for {len(indices)} cells"
                )
            for i, stats in zip(indices, group_stats):
                results[i] = stats
    return results  # type: ignore[return-value]


def simulate_batch(
    simulators: Sequence[Simulator],
    trace: Trace,
    engine: Optional[str] = None,
) -> List[CacheStats]:
    """Simulate many models against one shared trace.

    With ``engine="batch"``, models whose configuration has a batch
    kernel are grouped by spec type and executed in one vectorized
    invocation per group (:func:`simulate_batch_specs`); the rest fall
    back to per-cell :func:`simulate` under the fast engine.  Any other
    engine simply maps :func:`simulate` over the models.  Results come
    back in input order either way, one :class:`CacheStats` per model.
    """
    engine = resolve_engine(engine)
    if engine != "batch":
        return [simulate(sim, trace, engine=engine) for sim in simulators]

    results: List[Optional[CacheStats]] = [None] * len(simulators)
    specs: List[Optional[object]] = [batch_spec_for(sim) for sim in simulators]
    vectorized = [i for i, spec in enumerate(specs) if spec is not None]
    obs_metrics.counter("batch.cells.vectorized", len(vectorized))
    obs_metrics.counter("batch.cells.fallback", len(simulators) - len(vectorized))
    if vectorized:
        for i, stats in zip(
            vectorized,
            simulate_batch_specs(trace, [specs[i] for i in vectorized]),
        ):
            results[i] = stats
    for i, sim in enumerate(simulators):
        if results[i] is None:
            results[i] = simulate(sim, trace, engine="fast")
    return results  # type: ignore[return-value]


# -- engine selection ---------------------------------------------------------

_DEFAULT_ENGINE = "reference"


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name, substituting the process default for None."""
    if engine is None:
        return _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {list(ENGINES)}")
    return engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (the CLI's ``--engine`` flag)."""
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {list(ENGINES)}")
    _DEFAULT_ENGINE = engine


def default_engine() -> str:
    """The process-wide default engine name."""
    return _DEFAULT_ENGINE


def simulate(
    simulator: Simulator, trace: Trace, engine: Optional[str] = None
) -> CacheStats:
    """Run ``trace`` through ``simulator`` under the chosen engine.

    ``engine=None`` uses the process default (``reference`` unless the
    experiments CLI was invoked with ``--engine fast``).
    """
    engine = resolve_engine(engine)
    model = type(simulator).__name__
    runner = kernel_for(simulator) if engine in ("fast", "batch") else None
    path = "kernel" if runner is not None else "reference"
    with obs_tracing.span(
        "simulate",
        model=model,
        trace=trace.name or "<unnamed>",
        refs=len(trace),
        engine=engine,
        path=path,
    ):
        if runner is not None:
            with obs_profiling.section(f"kernel:{model}"):
                try:
                    return runner(trace)
                except Exception as exc:
                    raise KernelExecutionError(
                        f"fast kernel for {model} failed on "
                        f"trace {trace.name or '<unnamed>'!r} ({len(trace)} refs): "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
        with obs_profiling.section(f"reference:{model}"):
            return simulator.simulate(trace)
