"""Trace recipes and the per-process memoised trace cache.

A figure sweep's cells parallelise trivially — except that shipping
megabyte trace arrays to worker processes would swamp the win.
Benchmark traces are deterministic functions of their ``(name, kind,
max_refs)`` key, so :class:`TraceKey` sends the *key* instead and each
worker regenerates (and memoises) the trace on first use.

Any hashable, picklable recipe exposing ``name``/``kind``/``max_refs``
attributes plus a ``load() -> Trace`` method works wherever a
:class:`TraceKey` does (the experiment-spec layer defines e.g.
timeshared and analytic-pattern recipes); :func:`as_trace` memoises
every recipe through the same per-process cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from ..obs import metrics as obs_metrics
from ..obs import profiling as obs_profiling
from ..obs import tracing as obs_tracing
from ..trace.trace import Trace


@dataclass(frozen=True)
class TraceKey:
    """A deterministic recipe for a benchmark trace.

    Cheap to pickle (three scalars); :meth:`load` regenerates the trace
    through :func:`repro.workloads.registry.trace_by_kind` and memoises
    it per process, so a pool worker builds each benchmark once no
    matter how many sweep cells it executes.
    """

    name: str
    kind: str = "instruction"
    max_refs: int = 200_000

    def load(self) -> Trace:
        return as_trace(self)  # memoised per process

    def _build(self) -> Trace:
        from ..workloads.registry import trace_by_kind

        return trace_by_kind(self.name, self.kind, max_refs=self.max_refs)


#: Anything :func:`as_trace` accepts: a materialised Trace or a recipe.
TraceLike = Union[Trace, TraceKey, object]

_TRACE_CACHE: Dict[object, Trace] = {}

#: Ten benchmarks x three kinds fit comfortably; anything past this is
#: a scale change or a synthetic flood, and old entries are evicted FIFO.
_TRACE_CACHE_LIMIT = 64


def is_trace_recipe(trace: object) -> bool:
    """Whether ``trace`` is a deterministic recipe rather than raw data."""
    return (
        not isinstance(trace, Trace)
        and hasattr(trace, "load")
        and hasattr(trace, "name")
        and hasattr(trace, "kind")
        and hasattr(trace, "max_refs")
    )


def clear_trace_cache() -> None:
    """Drop this process's memoised recipe traces."""
    _TRACE_CACHE.clear()


def as_trace(trace: TraceLike) -> Trace:
    """Materialise a trace recipe (memoised); pass a Trace through unchanged."""
    if isinstance(trace, Trace):
        return trace
    if not is_trace_recipe(trace):
        raise TypeError(
            f"expected a Trace or a trace recipe with name/kind/max_refs/load, "
            f"got {type(trace).__name__}"
        )
    cached = _TRACE_CACHE.get(trace)
    if cached is None:
        if len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            # Drop the oldest memoised trace (insertion order): the
            # cache otherwise grows without bound when sweeps mix
            # many distinct recipes.
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        # Recipes with a raw ``_build`` (TraceKey) route their public
        # ``load`` back through this memo; plain recipes just load.
        build = getattr(trace, "_build", None) or trace.load
        with obs_tracing.span(
            "trace_gen",
            trace=str(trace.name),
            trace_kind=str(trace.kind),
            refs=int(trace.max_refs),
        ):
            with obs_profiling.section("trace_gen"):
                cached = build()
        obs_metrics.counter("trace.cache.miss")
        _TRACE_CACHE[trace] = cached
    else:
        obs_metrics.counter("trace.cache.hit")
    return cached
