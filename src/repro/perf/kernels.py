"""Set-partitioned simulation kernels.

A direct-mapped cache (with or without dynamic exclusion) decomposes
exactly: each set's behaviour depends only on the subsequence of
references that map to it, and sets never interact.  Both kernels here
exploit that by sorting the trace's line addresses by set index once
(a stable argsort over a narrow integer dtype, so each set's
subsequence keeps its program order) and then working on the compact
per-set groups:

* :func:`simulate_direct_mapped` is fully vectorized — with
  always-allocate replacement the resident line is simply the
  previously referenced line of the set, so a hit is "same line as the
  predecessor within the set group", one vectorized compare;
* :func:`simulate_dynamic_exclusion` runs the paper's FSM (ideal
  hit-last store, one sticky bit) over *runs* of identical consecutive
  line addresses within each set group.  A run of ``k`` identical
  references collapses to O(1) FSM work, so the Python loop executes
  once per run, not once per reference — on looping instruction traces
  most sets see long runs of a single line, and the hit-last dict is
  touched only on replacement decisions, never per reference;
* :func:`simulate_belady` runs Belady-with-bypass (the paper's
  "optimal" comparison point) over the same run-compressed groups: the
  next-use arrays are built fully vectorised
  (:func:`repro.caches.optimal.next_use_array`, a stable argsort
  instead of the reference's per-reference Python dict scan) and
  permuted into set order, so the greedy keep-sooner rule reduces to
  integer comparisons per run.  Associativities above 1 carry one
  line → next-use dict per set with the identical victim tie-breaking
  (first-inserted wins ``max``) as the reference simulator;
* :func:`simulate_lru` is the set-associative LRU kernel: each set
  keeps an insertion-ordered dict as the recency stack (LRU first), so
  a hit is a delete/reinsert and a victim is ``next(iter(...))``, both
  O(1), and runs again collapse to one decision;
* :func:`simulate_optimal_last_line` composes the Belady kernel with
  :func:`~repro.trace.transforms.collapse_sequential_lines`, mirroring
  :class:`~repro.caches.optimal.OptimalLastLineCache`.

All kernels return a :class:`~repro.caches.stats.CacheStats` that is
field-for-field identical to the reference simulators'
(``tests/perf/test_engine_equivalence.py`` proves it differentially);
they never allocate per-reference objects, and every result passes
:meth:`~repro.caches.stats.CacheStats.check` before it is returned so a
kernel bug fails loudly instead of skewing a figure.
"""

from __future__ import annotations

import numpy as np

from ..caches.geometry import CacheGeometry
from ..caches.optimal import NEVER, next_use_array
from ..caches.stats import CacheStats, ExclusionEvents
from ..trace.trace import Trace


def _require_direct_mapped(geometry: CacheGeometry) -> None:
    if geometry.associativity != 1:
        raise ValueError("this set-partitioned kernel requires associativity 1")


def _set_partition(trace: Trace, geometry: CacheGeometry):
    """``(grouped_lines, new_set, order)``: line addresses reordered
    set-by-set (program order preserved within a set), the boolean mask
    marking the first position of each set group, and the permutation
    that produced the grouping (so per-position metadata such as
    next-use arrays can be carried into set order).

    The set indices are narrowed to the smallest integer dtype before
    the stable argsort — numpy's radix sort is per-byte, so sorting
    16-bit keys is roughly twice as fast as sorting the raw ``uint64``
    line addresses.
    """
    lines = trace.lines(geometry.offset_bits)
    sets = lines & np.uint64(geometry.num_sets - 1)
    if geometry.num_sets <= 1 << 16:
        sets = sets.astype(np.uint16)
    elif geometry.num_sets <= 1 << 32:
        sets = sets.astype(np.uint32)
    order = np.argsort(sets, kind="stable")
    grouped_lines = lines[order]
    grouped_sets = sets[order]
    new_set = np.empty(len(lines), dtype=bool)
    new_set[0] = True
    np.not_equal(grouped_sets[1:], grouped_sets[:-1], out=new_set[1:])
    return grouped_lines, new_set, order


def _run_starts(grouped_lines: np.ndarray, new_set: np.ndarray) -> np.ndarray:
    """Indices (in grouped order) where a run of identical consecutive
    line addresses within one set group begins."""
    boundary = new_set.copy()
    boundary[1:] |= grouped_lines[1:] != grouped_lines[:-1]
    return np.flatnonzero(boundary)


def simulate_direct_mapped(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Vectorized direct-mapped simulation (always-allocate).

    Within each set group the resident line is always the previously
    referenced line, so hits are exactly the positions equal to their
    predecessor; the first position of each group is the set's one cold
    miss and every other miss displaces a line.
    """
    _require_direct_mapped(geometry)
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        stats.check()
        return stats
    grouped_lines, new_set, _ = _set_partition(trace, geometry)
    same_line = np.empty(n, dtype=bool)
    same_line[0] = False
    np.equal(grouped_lines[1:], grouped_lines[:-1], out=same_line[1:])
    hits = int(np.count_nonzero(same_line & ~new_set))
    cold = int(np.count_nonzero(new_set))
    stats.hits = hits
    stats.misses = n - hits
    stats.cold_misses = cold
    stats.evictions = stats.misses - cold
    stats.check()
    return stats


def simulate_dynamic_exclusion(
    trace: Trace,
    geometry: CacheGeometry,
    default_hit_last: bool = True,
) -> CacheStats:
    """Run-compressed dynamic-exclusion simulation.

    Models :class:`~repro.core.exclusion_cache.DynamicExclusionCache`
    with an :class:`~repro.core.hitlast.IdealHitLastStore` (cold value
    ``default_hit_last``) and ``sticky_levels=1``, starting from a cold
    cache and an empty store.
    """
    _require_direct_mapped(geometry)
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        stats.check()
        return stats
    grouped_lines, new_set, _ = _set_partition(trace, geometry)
    starts = _run_starts(grouped_lines, new_set)
    run_words = grouped_lines[starts].tolist()
    run_lengths = np.diff(starts, append=n).tolist()
    run_new_set = new_set[starts].tolist()

    bits: "dict[int, bool]" = {}
    bits_get = bits.get
    hits = cold = evictions = bypasses = 0
    # Paper-mechanism event counters, matching the reference cache's
    # ExclusionEvents definitions (see caches/stats.py): a write-back
    # "flips" when it changes the store's answer for that word,
    # including the first write over the cold default.
    hit_last_loads = flips = 0
    # Per-set FSM registers (sticky_levels == 1 throughout).  The store
    # is touched only on replacement decisions, so the dict costs scale
    # with conflict traffic, not trace length.
    resident = -1
    sticky = 0
    hit_last = False
    for word, length, starts_set in zip(run_words, run_lengths, run_new_set):
        if starts_set:
            resident = -1
            sticky = 0
            hit_last = False
        if word == resident:
            # k hits: each refreshes sticky and sets the hl copy.
            hits += length
            sticky = 1
            hit_last = True
        elif resident < 0:
            # Cold set: allocate, then k-1 hits.
            cold += 1
            hits += length - 1
            resident = word
            sticky = 1
            hit_last = True
        elif sticky == 0:
            # Unsticky resident: replace (write back its hl copy) with
            # the optimistic hl=1 start, then k-1 hits.
            if bits_get(resident, default_hit_last) != hit_last:
                flips += 1
            bits[resident] = hit_last
            evictions += 1
            hits += length - 1
            resident = word
            sticky = 1
            hit_last = True
        elif bits_get(word, default_hit_last):
            # Sticky resident loses to a hit-last word: replace with the
            # pessimistic hl=0 start; any repeat is a hit (hl back to 1).
            hit_last_loads += 1
            if bits_get(resident, default_hit_last) != hit_last:
                flips += 1
            bits[resident] = hit_last
            evictions += 1
            resident = word
            sticky = 1
            if length > 1:
                hits += length - 1
                hit_last = True
            else:
                hit_last = False
        else:
            # Sticky resident wins: bypass and clear the sticky bit.  A
            # repeat then replaces (sticky exhausted) and the rest hit.
            bypasses += 1
            sticky = 0
            if length > 1:
                if bits_get(resident, default_hit_last) != hit_last:
                    flips += 1
                bits[resident] = hit_last
                evictions += 1
                hits += length - 2
                resident = word
                sticky = 1
                hit_last = True
    stats.hits = hits
    stats.misses = n - hits
    stats.cold_misses = cold
    stats.evictions = evictions
    stats.bypasses = bypasses
    ExclusionEvents(
        sticky_saves=bypasses,
        hit_last_loads=hit_last_loads,
        exclusion_flips=flips,
    ).publish(trace.name, engine="fast")
    stats.check()
    return stats


def simulate_belady(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Belady-with-bypass over set-partitioned, run-compressed groups.

    Models :class:`~repro.caches.optimal.OptimalCache` (and therefore
    :class:`~repro.caches.optimal.OptimalDirectMappedCache`) at any
    associativity.

    Run compression is exact here because a run of ``k > 1`` identical
    references can never bypass: the incoming line's next use is the
    run's own second element, while every resident line of the set is
    next referenced only *after* the run ends (a line maps to exactly
    one set, and the run is consecutive in the set's subsequence), so
    the keep-sooner rule always installs the incoming line.  The
    ``k - 1`` following references are then hits whose only effect is
    to advance the stored next-use time.

    The keep-sooner comparisons only ever rank next-use times of lines
    in the *same* set, and within one set the global reference order is
    the group order is the run order — so the greedy rule is computed in
    **run coordinates**: the next-use array is built vectorised over the
    compressed run words (:func:`~repro.caches.optimal.next_use_array`,
    an argsort over the runs instead of the reference's per-reference
    Python dict scan), and a run whose length exceeds 1 is its own
    "immediate" next use.  This is order-isomorphic to the reference's
    global positions, so every decision — including NEVER-vs-NEVER
    victim ties, which Python's insertion-ordered ``max`` resolves the
    same way in both simulators — is identical.
    """
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        stats.check()
        return stats
    grouped_lines, new_set, _ = _set_partition(trace, geometry)
    starts = _run_starts(grouped_lines, new_set)
    num_runs = len(starts)
    run_word_array = grouped_lines[starts]
    # Next run referencing the same word; a word belongs to exactly one
    # set, so this is automatically per-set.
    run_next = next_use_array(run_word_array).tolist()
    run_words = run_word_array.tolist()
    run_new_set = new_set[starts].tolist()
    # Runs longer than one reference re-reference their word immediately
    # and therefore always install (see above).
    run_immediate = (np.diff(starts, append=n) > 1).tolist()

    # Every run contributes length-1 hits except a fully-hitting run,
    # which contributes one more, and a bypassed run (always length 1),
    # which contributes length-1 = 0.  So only the run *classification*
    # is tracked in the loop.
    hit_runs = cold = evictions = bypasses = 0
    if geometry.associativity == 1:
        resident = -1
        resident_next = NEVER
        for word, nxt, starts_set, immediate in zip(
            run_words, run_next, run_new_set, run_immediate
        ):
            if starts_set:
                resident = -1
            if word == resident:
                hit_runs += 1
                resident_next = nxt
            elif resident < 0:
                cold += 1
                resident = word
                resident_next = nxt
            elif immediate or nxt < resident_next:
                evictions += 1
                resident = word
                resident_next = nxt
            else:
                bypasses += 1
    else:
        ways = geometry.associativity
        # One line -> next-use dict per set.  The dict sees the same
        # insert/delete sequence as the reference simulator's per-set
        # dict, so ``max`` resolves victim ties to the same line.
        content: "dict[int, int]" = {}
        for word, nxt, starts_set, immediate in zip(
            run_words, run_next, run_new_set, run_immediate
        ):
            if starts_set:
                content = {}
            if word in content:
                hit_runs += 1
                content[word] = nxt
            elif len(content) < ways:
                cold += 1
                content[word] = nxt
            else:
                victim = max(content, key=content.__getitem__)
                if immediate or nxt < content[victim]:
                    del content[victim]
                    evictions += 1
                    content[word] = nxt
                else:
                    bypasses += 1
    stats.hits = n - num_runs + hit_runs
    stats.misses = num_runs - hit_runs
    stats.cold_misses = cold
    stats.evictions = evictions
    stats.bypasses = bypasses
    stats.check()
    return stats


def simulate_lru(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Set-associative LRU simulation over run-compressed set groups.

    Models :class:`~repro.caches.set_associative.SetAssociativeCache`
    with the ``lru`` policy at any associativity.  Each set's recency
    stack is an insertion-ordered dict (least recently used first): a
    hit deletes and reinserts the line (O(1) move-to-back), a fill
    appends, and the victim is the first key.  LRU always allocates, so
    every run installs its line on the first reference and the rest of
    the run hits.
    """
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        stats.check()
        return stats
    grouped_lines, new_set, _ = _set_partition(trace, geometry)
    starts = _run_starts(grouped_lines, new_set)
    run_words = grouped_lines[starts].tolist()
    run_lengths = np.diff(starts, append=n).tolist()
    run_new_set = new_set[starts].tolist()

    ways = geometry.associativity
    hits = cold = evictions = 0
    recency: "dict[int, None]" = {}
    for word, length, starts_set in zip(run_words, run_lengths, run_new_set):
        if starts_set:
            recency = {}
        if word in recency:
            hits += length
            del recency[word]
            recency[word] = None
        else:
            if len(recency) < ways:
                cold += 1
            else:
                del recency[next(iter(recency))]
                evictions += 1
            recency[word] = None
            hits += length - 1
    stats.hits = hits
    stats.misses = n - hits
    stats.cold_misses = cold
    stats.evictions = evictions
    stats.check()
    return stats


def simulate_optimal_last_line(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Belady-with-bypass over collapsed line-reference events.

    Models :class:`~repro.caches.optimal.OptimalLastLineCache`: runs
    of consecutive references to one line are collapsed to a single
    event (the last-line buffer serves the rest, counted as
    ``buffer_hits``) and the Belady kernel runs on the collapsed
    stream.
    """
    from ..trace.transforms import collapse_sequential_lines

    collapsed = collapse_sequential_lines(trace, geometry.line_size)
    inner = simulate_belady(collapsed, geometry)
    buffer_hits = len(trace) - len(collapsed)
    stats = CacheStats(
        accesses=len(trace),
        hits=inner.hits + buffer_hits,
        misses=inner.misses,
        bypasses=inner.bypasses,
        evictions=inner.evictions,
        buffer_hits=buffer_hits,
        cold_misses=inner.cold_misses,
    )
    stats.check()
    return stats
