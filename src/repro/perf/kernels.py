"""Set-partitioned simulation kernels.

A direct-mapped cache (with or without dynamic exclusion) decomposes
exactly: each set's behaviour depends only on the subsequence of
references that map to it, and sets never interact.  Both kernels here
exploit that by sorting the trace's line addresses by set index once
(a stable argsort over a narrow integer dtype, so each set's
subsequence keeps its program order) and then working on the compact
per-set groups:

* :func:`simulate_direct_mapped` is fully vectorized — with
  always-allocate replacement the resident line is simply the
  previously referenced line of the set, so a hit is "same line as the
  predecessor within the set group", one vectorized compare;
* :func:`simulate_dynamic_exclusion` runs the paper's FSM (ideal
  hit-last store, one sticky bit) over *runs* of identical consecutive
  line addresses within each set group.  A run of ``k`` identical
  references collapses to O(1) FSM work, so the Python loop executes
  once per run, not once per reference — on looping instruction traces
  most sets see long runs of a single line, and the hit-last dict is
  touched only on replacement decisions, never per reference.

Both kernels return a :class:`~repro.caches.stats.CacheStats` that is
field-for-field identical to the reference simulators'
(``tests/perf/test_engine_equivalence.py`` proves it differentially);
they never allocate per-reference objects.
"""

from __future__ import annotations

import numpy as np

from ..caches.geometry import CacheGeometry
from ..caches.stats import CacheStats
from ..trace.trace import Trace


def _require_direct_mapped(geometry: CacheGeometry) -> None:
    if geometry.associativity != 1:
        raise ValueError("set-partitioned kernels require associativity 1")


def _set_partition(trace: Trace, geometry: CacheGeometry):
    """``(grouped_lines, new_set)``: line addresses reordered set-by-set
    (program order preserved within a set) and the boolean mask marking
    the first position of each set group.

    The set indices are narrowed to the smallest integer dtype before
    the stable argsort — numpy's radix sort is per-byte, so sorting
    16-bit keys is roughly twice as fast as sorting the raw ``uint64``
    line addresses.
    """
    lines = trace.lines(geometry.offset_bits)
    sets = lines & np.uint64(geometry.num_sets - 1)
    if geometry.num_sets <= 1 << 16:
        sets = sets.astype(np.uint16)
    elif geometry.num_sets <= 1 << 32:
        sets = sets.astype(np.uint32)
    order = np.argsort(sets, kind="stable")
    grouped_lines = lines[order]
    grouped_sets = sets[order]
    new_set = np.empty(len(lines), dtype=bool)
    new_set[0] = True
    np.not_equal(grouped_sets[1:], grouped_sets[:-1], out=new_set[1:])
    return grouped_lines, new_set


def simulate_direct_mapped(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Vectorized direct-mapped simulation (always-allocate).

    Within each set group the resident line is always the previously
    referenced line, so hits are exactly the positions equal to their
    predecessor; the first position of each group is the set's one cold
    miss and every other miss displaces a line.
    """
    _require_direct_mapped(geometry)
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        return stats
    grouped_lines, new_set = _set_partition(trace, geometry)
    same_line = np.empty(n, dtype=bool)
    same_line[0] = False
    np.equal(grouped_lines[1:], grouped_lines[:-1], out=same_line[1:])
    hits = int(np.count_nonzero(same_line & ~new_set))
    cold = int(np.count_nonzero(new_set))
    stats.hits = hits
    stats.misses = n - hits
    stats.cold_misses = cold
    stats.evictions = stats.misses - cold
    return stats


def simulate_dynamic_exclusion(
    trace: Trace,
    geometry: CacheGeometry,
    default_hit_last: bool = True,
) -> CacheStats:
    """Run-compressed dynamic-exclusion simulation.

    Models :class:`~repro.core.exclusion_cache.DynamicExclusionCache`
    with an :class:`~repro.core.hitlast.IdealHitLastStore` (cold value
    ``default_hit_last``) and ``sticky_levels=1``, starting from a cold
    cache and an empty store.
    """
    _require_direct_mapped(geometry)
    n = len(trace)
    stats = CacheStats(accesses=n)
    if n == 0:
        return stats
    grouped_lines, new_set = _set_partition(trace, geometry)
    # Run boundaries: a new set group, or a different line than the
    # predecessor within the group.
    boundary = new_set.copy()
    boundary[1:] |= grouped_lines[1:] != grouped_lines[:-1]
    starts = np.flatnonzero(boundary)
    run_words = grouped_lines[starts].tolist()
    run_lengths = np.diff(starts, append=n).tolist()
    run_new_set = new_set[starts].tolist()

    bits: "dict[int, bool]" = {}
    bits_get = bits.get
    hits = cold = evictions = bypasses = 0
    # Per-set FSM registers (sticky_levels == 1 throughout).  The store
    # is touched only on replacement decisions, so the dict costs scale
    # with conflict traffic, not trace length.
    resident = -1
    sticky = 0
    hit_last = False
    for word, length, starts_set in zip(run_words, run_lengths, run_new_set):
        if starts_set:
            resident = -1
            sticky = 0
            hit_last = False
        if word == resident:
            # k hits: each refreshes sticky and sets the hl copy.
            hits += length
            sticky = 1
            hit_last = True
        elif resident < 0:
            # Cold set: allocate, then k-1 hits.
            cold += 1
            hits += length - 1
            resident = word
            sticky = 1
            hit_last = True
        elif sticky == 0:
            # Unsticky resident: replace (write back its hl copy) with
            # the optimistic hl=1 start, then k-1 hits.
            bits[resident] = hit_last
            evictions += 1
            hits += length - 1
            resident = word
            sticky = 1
            hit_last = True
        elif bits_get(word, default_hit_last):
            # Sticky resident loses to a hit-last word: replace with the
            # pessimistic hl=0 start; any repeat is a hit (hl back to 1).
            bits[resident] = hit_last
            evictions += 1
            resident = word
            sticky = 1
            if length > 1:
                hits += length - 1
                hit_last = True
            else:
                hit_last = False
        else:
            # Sticky resident wins: bypass and clear the sticky bit.  A
            # repeat then replaces (sticky exhausted) and the rest hit.
            bypasses += 1
            sticky = 0
            if length > 1:
                bits[resident] = hit_last
                evictions += 1
                hits += length - 2
                resident = word
                sticky = 1
                hit_last = True
    stats.hits = hits
    stats.misses = n - hits
    stats.cold_misses = cold
    stats.evictions = evictions
    stats.bypasses = bypasses
    return stats
