"""The ``local-pool`` backend: one machine's ProcessPoolExecutor.

The extracted pre-backend pooled machinery, behaviour-identical:

* bounded retry with pool re-creation when a worker dies
  (``BrokenProcessPool`` — an OOM-killed worker on a scaled trace is
  the motivating case), falling back to one-cell-in-flight execution to
  attribute a deterministic crasher precisely;
* an optional per-cell ``timeout`` that terminates the stuck worker and
  fails just that cell;
* for ``engine="batch"``, trace-sharing groups shipped to workers with
  zero-copy shared-memory trace distribution
  (:class:`~repro.perf.shared.SharedTrace`), falling back — cells
  intact — to the per-cell machinery when a group fails as a unit.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterator, List, Sequence

from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from ..cells import CellOutcome, cell_task
from ..shared import SharedTrace
from ..trace_cache import TraceLike, as_trace, is_trace_recipe
from .base import (
    SweepBackend,
    SweepContext,
    merge_worker_obs,
    record_cell_span,
    register_backend,
)
from .batched import apply_group_results, batch_eligible, batch_task, group_pending


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill the pool's workers; used to enforce per-cell timeouts."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@register_backend
class LocalPoolBackend(SweepBackend):
    name = "local-pool"

    def submit_cells(
        self, pending: Sequence[int], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        if batch_eligible(pending, ctx):
            groups = group_pending(ctx.cells, pending, ctx.batch_cells)
            yield from self._run_batched_pooled(groups, ctx)
        else:
            yield from self._run_pooled(list(pending), ctx)

    # -- per-cell pooled execution -------------------------------------------

    def _run_pooled(
        self, pending: List[int], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        """Pool execution with crash retry, timeout enforcement, and solo
        fallback for exact attribution of a persistent crasher."""
        crash_retries_left = ctx.pool_retries
        solo = False
        while pending:
            with obs_tracing.span(
                "pool_attempt",
                workers=min(ctx.workers, len(pending)),
                pending=len(pending),
                solo=solo,
            ) as attempt_span:
                pool = ProcessPoolExecutor(
                    max_workers=min(ctx.workers, len(pending))
                )
                broke = False
                crashed = False
                try:
                    if solo:
                        pending, broke = yield from self._solo_round(
                            pool, pending, ctx
                        )
                        crashed = False  # solo rounds attribute and consume the crasher
                    else:
                        pending, crashed, broke = yield from self._concurrent_round(
                            pool, pending, ctx
                        )
                finally:
                    pool.shutdown(wait=not broke, cancel_futures=True)
                if attempt_span is not None and broke:
                    attempt_span.attrs["broke"] = True
            if broke:
                ctx.telemetry.pool_restarts += 1
            if crashed:
                crash_retries_left -= 1
                if crash_retries_left < 0:
                    solo = True

    def _concurrent_round(
        self, pool: ProcessPoolExecutor, pending: List[int], ctx: SweepContext
    ):
        """Submit every pending cell at once.

        Returns ``(still_pending, crashed, broke)``: ``crashed`` means a
        worker died (retry budget applies); ``broke`` means the pool is
        unusable (crash or timeout termination) and must be re-created.
        """
        cells = ctx.cells
        submitted = [
            (index, pool.submit(cell_task, cells[index][1], cells[index][2],
                                cells[index][3], ctx.engine, ctx.evaluator,
                                ctx.obs_ctx))
            for index in pending
        ]
        still_pending: List[int] = []
        crashed = False
        broke = False
        timed_out = False
        for index, future in submitted:
            outcome = ctx.outcomes[index]
            try:
                result = future.result(timeout=ctx.timeout)
                metrics, seconds = result[0], result[1]
                obs_payload = result[2] if len(result) > 2 else None
            except CancelledError:
                still_pending.append(index)  # no attempt consumed
                continue
            except FuturesTimeoutError as exc:
                outcome.attempts += 1
                if ctx.timeout is None:
                    # No wait timeout configured: the *cell* raised a
                    # TimeoutError of its own — a deterministic failure.
                    ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
                else:
                    ctx.fail(outcome, (
                        f"TimeoutError: cell exceeded the {ctx.timeout}s "
                        f"per-cell timeout (worker terminated)"
                    ))
                    terminate_pool(pool)
                    broke = True
                    timed_out = True
                record_cell_span(outcome, pooled=True)
            except BrokenProcessPool:
                outcome.attempts += 1
                broke = True
                if not timed_out:
                    crashed = True  # self-inflicted breaks don't burn retries
                still_pending.append(index)  # retried; culprit unknown in this mode
            except Exception as exc:
                # Deterministic cell error (bad geometry, kernel exception,
                # factory raise): retrying cannot help — fail this cell only.
                outcome.attempts += 1
                ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
                record_cell_span(outcome, pooled=True)
            else:
                outcome.attempts += 1
                ctx.record_success(outcome, metrics, seconds)
                cell_span = record_cell_span(outcome, pooled=True)
                if obs_payload is not None:
                    merge_worker_obs(outcome, cell_span, obs_payload)
            yield outcome
        return still_pending, crashed, broke

    def _solo_round(
        self, pool: ProcessPoolExecutor, pending: List[int], ctx: SweepContext
    ):
        """One cell in flight at a time: a pool break names its cell exactly.

        Returns ``(still_pending, broke)``.  Guaranteed progress — every
        iteration either completes or definitively fails its cell — so the
        outer loop terminates even against a factory that kills its worker
        on every attempt.
        """
        remaining = list(pending)
        while remaining:
            index = remaining[0]
            outcome = ctx.outcomes[index]
            _, factory, parameter, trace = ctx.cells[index]
            future = pool.submit(
                cell_task, factory, parameter, trace, ctx.engine, ctx.evaluator,
                ctx.obs_ctx
            )
            outcome.attempts += 1
            try:
                result = future.result(timeout=ctx.timeout)
                metrics, seconds = result[0], result[1]
                obs_payload = result[2] if len(result) > 2 else None
            except FuturesTimeoutError as exc:
                if ctx.timeout is None:
                    ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
                    record_cell_span(outcome, pooled=True)
                    yield outcome
                    remaining = remaining[1:]
                    continue
                ctx.fail(outcome, (
                    f"TimeoutError: cell exceeded the {ctx.timeout}s per-cell "
                    f"timeout (worker terminated)"
                ))
                terminate_pool(pool)
                record_cell_span(outcome, pooled=True)
                yield outcome
                return remaining[1:], True
            except BrokenProcessPool as exc:
                ctx.fail(outcome, (
                    f"{type(exc).__name__}: worker process died while "
                    f"executing this cell ({exc})"
                ))
                record_cell_span(outcome, pooled=True)
                yield outcome
                return remaining[1:], True
            except Exception as exc:
                ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
                record_cell_span(outcome, pooled=True)
            else:
                ctx.record_success(outcome, metrics, seconds)
                cell_span = record_cell_span(outcome, pooled=True)
                if obs_payload is not None:
                    merge_worker_obs(outcome, cell_span, obs_payload)
            yield outcome
            remaining = remaining[1:]
        return remaining, False

    # -- batched pooled execution --------------------------------------------

    def _run_batched_pooled(
        self, groups: List[List[int]], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        """Pooled batched execution with zero-copy trace distribution.

        The parent materialises each distinct trace once into a shared-
        memory segment (:class:`~repro.perf.shared.SharedTrace`) and ships
        workers a handle; group timeouts scale the per-cell budget by group
        size.  Any group that times out, crashes its worker, or raises falls
        back — cells intact — to the per-cell pooled machinery, which owns
        retries, per-cell timeouts, and solo crash attribution.  Segments
        are unlinked in a ``finally`` so no ``/dev/shm`` entry outlives the
        sweep, whatever failed inside it.
        """
        cells = ctx.cells
        shared_traces: Dict[object, SharedTrace] = {}
        fallback: List[int] = []

        def trace_handle(trace: TraceLike) -> object:
            key: object = trace if is_trace_recipe(trace) else id(trace)
            entry = shared_traces.get(key)
            if entry is None:
                recipe = trace if is_trace_recipe(trace) else None
                entry = SharedTrace.create(as_trace(trace), recipe=recipe)
                shared_traces[key] = entry
            return entry.handle

        try:
            pool = ProcessPoolExecutor(
                max_workers=min(ctx.workers, len(groups))
            )
            broke = False
            try:
                submitted = [
                    (
                        group,
                        pool.submit(
                            batch_task,
                            [(cells[index][1], cells[index][2]) for index in group],
                            trace_handle(cells[group[0]][3]),
                            ctx.engine,
                        ),
                    )
                    for group in groups
                ]
                for group, future in submitted:
                    group_timeout = (
                        ctx.timeout * len(group) if ctx.timeout is not None else None
                    )
                    try:
                        results = future.result(timeout=group_timeout)
                    except CancelledError:
                        fallback.extend(group)
                    except FuturesTimeoutError:
                        if ctx.timeout is not None:
                            terminate_pool(pool)
                            broke = True
                        obs_metrics.counter("batch.group_fallbacks", engine=ctx.engine)
                        fallback.extend(group)
                    except BrokenProcessPool:
                        broke = True
                        obs_metrics.counter("batch.group_fallbacks", engine=ctx.engine)
                        fallback.extend(group)
                    except Exception:
                        obs_metrics.counter("batch.group_fallbacks", engine=ctx.engine)
                        fallback.extend(group)
                    else:
                        yield from apply_group_results(results, group, ctx)
            finally:
                pool.shutdown(wait=not broke, cancel_futures=True)
            if broke:
                ctx.telemetry.pool_restarts += 1
        finally:
            for entry in shared_traces.values():
                entry.unlink()

        if fallback:
            # Per-cell machinery: full retry budget, per-cell timeout, solo
            # attribution of a deterministic crasher.
            yield from self._run_pooled(fallback, ctx)
