"""The ``fleet`` backend: cells sharded across ``repro worker`` processes.

Where ``local-pool`` stops at one machine's ProcessPoolExecutor, the
fleet shards a sweep across long-lived worker subprocesses speaking the
NDJSON protocol of :mod:`repro.perf.worker` over stdin/stdout.  Each
endpoint is launched from a command template, so the same code path
covers local multi-process and SSH multi-host:

* ``local`` — ``python -m repro.cli worker`` as a subprocess of this
  machine (the default: ``--workers N`` spawns N of these);
* ``user@host`` — ``ssh -o BatchMode=yes user@host python3 -m
  repro.cli worker`` (the repo must be importable on the remote);
* anything containing whitespace — used verbatim as the worker command
  (``"kubectl exec pod -- python -m repro.cli worker"``).

Endpoints come from ``REPRO_FLEET_HOSTS`` (comma-separated) when set.

Scheduling keeps **one cell in flight per worker**: a dead worker
forfeits exactly one cell, which is re-dispatched to a surviving worker
with a per-cell crash budget (``pool_retries``) before it is failed
with exact attribution — the same envelope discipline the local pool's
solo mode provides, without serialising the healthy remainder.  A
worker that dies after proving itself (its ``ready`` handshake) is
respawned and counted under ``pool_restarts``; one that never comes up
(unreachable host, broken command) is retired permanently so a typo'd
endpoint cannot respawn-loop.  Per-cell timeouts kill the stuck worker
and fail only its cell, exactly like the pool.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import queue
import shlex
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ...obs import metrics as obs_metrics
from ..cells import CellOutcome
from .base import (
    SweepBackend,
    SweepContext,
    merge_worker_obs,
    record_cell_span,
    register_backend,
)

#: Seconds close() waits for a worker to exit after a shutdown request
#: before killing it.
SHUTDOWN_GRACE = 2.0


def worker_command(endpoint: str) -> List[str]:
    """The argv that launches one fleet worker for ``endpoint``."""
    if endpoint == "local":
        return [sys.executable, "-m", "repro.cli", "worker"]
    if any(ch.isspace() for ch in endpoint):
        return shlex.split(endpoint)
    return [
        "ssh", "-o", "BatchMode=yes", endpoint,
        "python3", "-m", "repro.cli", "worker",
    ]


def _worker_env() -> Dict[str, str]:
    """The subprocess environment, with this repro importable.

    The parent found ``repro`` somehow; a ``local`` worker launched as
    ``python -m repro.cli`` must find the same one even when the parent
    was started from a different working directory.
    """
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


# Live-worker registry: serve's /healthz and /metrics report how many
# fleet workers this process currently has running, across all sweeps.
_LIVE_LOCK = threading.Lock()
_LIVE_WORKERS: "Set[FleetWorker]" = set()


def live_workers() -> int:
    """Fleet workers currently alive in this process."""
    with _LIVE_LOCK:
        return len(_LIVE_WORKERS)


def live_worker_ids() -> List[str]:
    with _LIVE_LOCK:
        return sorted(worker.id for worker in _LIVE_WORKERS)


def live_worker_status() -> List[dict]:
    """Per-worker snapshot for the serve daemon's ``/statusz``."""
    with _LIVE_LOCK:
        workers = sorted(_LIVE_WORKERS, key=lambda worker: worker.id)
        return [
            {
                "id": worker.id,
                "endpoint": worker.endpoint,
                "slot": worker.slot,
                "pid": worker.process.pid,
                "ready": worker.ready,
                "in_flight": worker.in_flight,
                "cells_done": worker.cells_done,
            }
            for worker in workers
        ]


def _track(worker: "FleetWorker", alive: bool) -> None:
    with _LIVE_LOCK:
        if alive:
            _LIVE_WORKERS.add(worker)
        else:
            _LIVE_WORKERS.discard(worker)
        count = len(_LIVE_WORKERS)
    obs_metrics.gauge("fleet.workers.live", count)


class FleetWorker:
    """One worker subprocess plus its reader thread.

    The reader pushes ``(worker, line)`` events onto the backend's queue
    and ``(worker, None)`` at EOF, so the scheduler consumes results and
    deaths from a single stream.
    """

    def __init__(
        self, slot: int, endpoint: str, events: "queue.Queue"
    ) -> None:
        self.slot = slot
        self.endpoint = endpoint
        self.id = f"{endpoint}#{slot}"
        self.in_flight: Optional[int] = None
        self.dispatched_at = 0.0
        self.ready = False
        self.retired = False
        self.cells_done = 0
        self.process = subprocess.Popen(
            worker_command(endpoint),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the parent's stderr
            text=True,
            env=_worker_env(),
        )
        self._events = events
        self._reader = threading.Thread(
            target=self._read, name=f"fleet-reader-{self.id}", daemon=True
        )
        self._reader.start()
        _track(self, True)

    def _read(self) -> None:
        try:
            for line in self.process.stdout:
                self._events.put((self, line))
        except Exception:  # pragma: no cover - pipe teardown races
            pass
        self._events.put((self, None))

    def send(self, request: dict) -> bool:
        try:
            self.process.stdin.write(json.dumps(request) + "\n")
            self.process.stdin.flush()
        except (OSError, ValueError):
            return False  # dying worker: its EOF event carries the cleanup
        return True

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        # Reap immediately: a long-lived parent (the serve daemon) runs
        # many sweeps, and an unwaited kill leaves a zombie per timeout.
        try:
            self.process.wait(timeout=SHUTDOWN_GRACE)
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    def describe(self) -> str:
        return f"{self.id} (pid {self.process.pid})"


@register_backend
class FleetBackend(SweepBackend):
    name = "fleet"

    def __init__(self) -> None:
        self._workers: List[FleetWorker] = []
        self._events: "queue.Queue" = queue.Queue()

    # -- scheduling -----------------------------------------------------------

    def submit_cells(
        self, pending: Sequence[int], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        endpoints = list(ctx.fleet_hosts) or ["local"] * max(1, ctx.workers)
        for slot, endpoint in enumerate(endpoints):
            self._spawn(slot, endpoint)
        ctx.telemetry.workers = len(endpoints)

        todo = deque(pending)
        unresolved = set(pending)
        crashes: Dict[int, int] = {}

        while unresolved:
            # Keep every live worker busy (one cell in flight each).  A
            # free worker must drain past dispatch failures — an
            # unpicklable payload resolves its cell immediately without
            # occupying the worker, and stopping at the first one would
            # leave the loop blocked on an event no worker will send.
            for worker in self._alive():
                while worker.in_flight is None and todo:
                    index = todo.popleft()
                    if not self._dispatch(worker, index, ctx):
                        # Unpicklable cell payload: deterministic, fail it.
                        outcome = ctx.outcomes[index]
                        yield outcome
                        unresolved.discard(index)
            if not unresolved:
                break  # every remaining cell failed at dispatch
            if not self._alive():
                for index in sorted(unresolved):
                    outcome = ctx.outcomes[index]
                    ctx.fail(outcome, (
                        f"BrokenFleetError: no live fleet workers remain "
                        f"({len(self._workers)} retired) — cell was never "
                        f"completed"
                    ))
                    record_cell_span(outcome, fleet=True)
                    yield outcome
                unresolved.clear()
                break

            event = self._next_event(ctx)
            if event is None:
                # Per-cell timeout expired for at least one in-flight cell.
                for worker in self._expired(ctx):
                    index = worker.in_flight
                    worker.in_flight = None
                    worker.retired = True
                    worker.kill()
                    _track(worker, False)
                    outcome = ctx.outcomes[index]
                    outcome.attempts += 1
                    outcome.worker = worker.id
                    ctx.fail(outcome, (
                        f"TimeoutError: cell exceeded the {ctx.timeout}s "
                        f"per-cell timeout (worker terminated)"
                    ))
                    record_cell_span(outcome, fleet=True)
                    yield outcome
                    unresolved.discard(index)
                    self._respawn(worker, ctx)
                continue

            worker, line = event
            if worker.retired:
                continue  # stale event from a deliberately killed worker
            if line is None:
                yield from self._worker_died(worker, todo, unresolved, crashes, ctx)
                continue
            message = self._parse(line)
            if message is None:
                continue
            kind = message.get("event")
            if kind == "ready":
                worker.ready = True
            elif kind == "result":
                index = worker.in_flight
                if index is None or message.get("id") != index:
                    continue  # response to a cell already timed out/requeued
                worker.in_flight = None
                outcome = ctx.outcomes[index]
                outcome.attempts += 1
                outcome.worker = worker.id
                seconds = float(message.get("seconds", 0.0))
                if message.get("ok"):
                    worker.cells_done += 1
                    metrics = {
                        str(k): float(v)
                        for k, v in message.get("metrics", {}).items()
                    }
                    ctx.record_success(outcome, metrics, seconds)
                else:
                    # Captured worker-side: deterministic, not retried.
                    outcome.seconds = seconds
                    ctx.fail(outcome, str(message.get("error")))
                cell_span = record_cell_span(outcome, fleet=True)
                obs_payload = message.get("obs")
                if obs_payload is not None:
                    merge_worker_obs(outcome, cell_span, obs_payload)
                yield outcome
                unresolved.discard(index)
            # "pong" and "error" events need no scheduling action.

    # -- helpers --------------------------------------------------------------

    def _alive(self) -> List[FleetWorker]:
        return [worker for worker in self._workers if not worker.retired]

    def _spawn(self, slot: int, endpoint: str) -> Optional[FleetWorker]:
        try:
            worker = FleetWorker(slot, endpoint, self._events)
        except OSError as exc:
            print(
                f"[fleet] failed to launch worker {endpoint}#{slot}: {exc}",
                file=sys.stderr,
            )
            obs_metrics.counter("fleet.workers.spawn_failures")
            return None
        self._workers.append(worker)
        obs_metrics.counter("fleet.workers.spawned")
        return worker

    def _respawn(self, dead: FleetWorker, ctx: SweepContext) -> None:
        """Replace a worker that died after proving itself.

        A worker that never completed its ``ready`` handshake is not
        replaced: an unreachable SSH host or a broken command template
        would otherwise respawn-loop for the whole sweep.
        """
        if not dead.ready:
            return
        replacement = self._spawn(dead.slot, dead.endpoint)
        if replacement is not None:
            ctx.telemetry.pool_restarts += 1
            obs_metrics.counter("fleet.workers.respawned")

    def _worker_died(
        self,
        worker: FleetWorker,
        todo: "deque",
        unresolved: set,
        crashes: Dict[int, int],
        ctx: SweepContext,
    ) -> Iterator[CellOutcome]:
        worker.retired = True
        _track(worker, False)
        obs_metrics.counter("fleet.workers.retired")
        exit_code = worker.process.poll()
        index = worker.in_flight
        worker.in_flight = None
        if index is not None:
            crashes[index] = crashes.get(index, 0) + 1
            outcome = ctx.outcomes[index]
            outcome.attempts += 1
            if crashes[index] > ctx.pool_retries:
                outcome.worker = worker.id
                ctx.fail(outcome, (
                    f"BrokenFleetWorker: fleet worker {worker.describe()} "
                    f"died while executing this cell (exit code {exit_code})"
                ))
                record_cell_span(outcome, fleet=True)
                yield outcome
                unresolved.discard(index)
            else:
                todo.appendleft(index)  # re-dispatch to a surviving worker
        if unresolved:
            self._respawn(worker, ctx)

    def _dispatch(
        self, worker: FleetWorker, index: int, ctx: SweepContext
    ) -> bool:
        _, factory, parameter, trace = ctx.cells[index]
        outcome = ctx.outcomes[index]
        try:
            payload = base64.b64encode(
                pickle.dumps((factory, parameter, trace, ctx.evaluator))
            ).decode("ascii")
        except Exception as exc:
            outcome.attempts += 1
            ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
            record_cell_span(outcome, fleet=True)
            return False
        worker.in_flight = index
        worker.dispatched_at = time.monotonic()
        request = {
            "op": "cell",
            "id": index,
            "engine": ctx.engine,
            "payload": payload,
        }
        if ctx.obs_ctx is not None:
            request["obs"] = ctx.obs_ctx
        worker.send(request)
        # A send failure surfaces as the worker's EOF event; the cell is
        # re-dispatched there.
        return True

    def _next_event(self, ctx: SweepContext):
        """The next worker event, or None when a per-cell timeout expired."""
        if ctx.timeout is None:
            return self._events.get()
        while True:
            in_flight = [w for w in self._alive() if w.in_flight is not None]
            if not in_flight:
                return self._events.get()
            now = time.monotonic()
            deadline = min(
                w.dispatched_at + ctx.timeout for w in in_flight
            )
            if deadline <= now:
                if self._expired(ctx):
                    return None
                continue
            try:
                return self._events.get(timeout=deadline - now)
            except queue.Empty:
                if self._expired(ctx):
                    return None

    def _expired(self, ctx: SweepContext) -> List[FleetWorker]:
        if ctx.timeout is None:
            return []
        now = time.monotonic()
        return [
            worker
            for worker in self._alive()
            if worker.in_flight is not None
            and now - worker.dispatched_at > ctx.timeout
        ]

    def close(self) -> None:
        for worker in self._workers:
            if worker.retired:
                continue
            worker.send({"op": "shutdown"})
        deadline = time.monotonic() + SHUTDOWN_GRACE
        for worker in self._workers:
            if worker.retired:
                worker.process.poll()  # reap a zombie left by its death
                continue
            remaining = deadline - time.monotonic()
            try:
                worker.process.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                worker.kill()
            worker.retired = True
            _track(worker, False)
        self._workers.clear()

    def _parse(self, line: str) -> Optional[dict]:
        line = line.strip()
        if not line:
            return None
        try:
            message = json.loads(line)
        except ValueError:
            obs_metrics.counter("fleet.protocol_errors")
            return None
        if not isinstance(message, dict):
            obs_metrics.counter("fleet.protocol_errors")
            return None
        return message
