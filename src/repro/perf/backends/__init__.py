"""Pluggable sweep execution backends.

The sweep runtime (:func:`repro.perf.parallel.run_labeled_cells`)
delegates *how* pending cells execute to a :class:`SweepBackend`:

========== ===================================================
``inline``      this process, no pool (single-worker default)
``local-pool``  one machine's ProcessPoolExecutor + batched shm
``fleet``       NDJSON worker subprocesses, local or SSH
========== ===================================================

Selection: ``backend=`` argument > CLI ``--backend`` default >
``REPRO_BACKEND`` > automatic (``inline``/``local-pool`` by worker and
cell count, the pre-backend dispatch).  All backends share journal,
telemetry, and envelope semantics through :class:`SweepContext`, so a
journal written under one backend resumes under any other.
"""

from .base import (  # noqa: F401
    BACKENDS,
    SweepBackend,
    SweepContext,
    backend_names,
    cell_attrs,
    create_backend,
    default_backend,
    merge_worker_obs,
    outcome_observer,
    record_cell_span,
    register_backend,
    report_outcome,
    resolve_backend,
    set_default_backend,
)
from .batched import (  # noqa: F401
    JournalBatch,
    apply_group_results,
    batch_eligible,
    batch_task,
    group_pending,
    run_batched_inline,
    run_sequential,
)
from .fleet import (  # noqa: F401
    FleetBackend,
    FleetWorker,
    live_worker_ids,
    live_worker_status,
    live_workers,
    worker_command,
)
from .inline import InlineBackend  # noqa: F401
from .local_pool import LocalPoolBackend, terminate_pool  # noqa: F401

__all__ = [
    "BACKENDS",
    "SweepBackend",
    "SweepContext",
    "InlineBackend",
    "LocalPoolBackend",
    "FleetBackend",
    "FleetWorker",
    "backend_names",
    "create_backend",
    "default_backend",
    "live_worker_ids",
    "live_worker_status",
    "live_workers",
    "merge_worker_obs",
    "outcome_observer",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "worker_command",
]
