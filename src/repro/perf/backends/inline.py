"""The ``inline`` backend: everything in this process, no pool.

The degenerate — and often correct — strategy: single-worker runs,
single-cell runs, and environments where forking is unwelcome (test
harnesses, notebook kernels).  ``engine="batch"`` still batches; the
kernel invocations just happen in this process.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..cells import CellOutcome
from .base import SweepBackend, SweepContext, register_backend
from .batched import (
    batch_eligible,
    group_pending,
    run_batched_inline,
    run_sequential,
)


@register_backend
class InlineBackend(SweepBackend):
    name = "inline"

    def submit_cells(
        self, pending: Sequence[int], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        if batch_eligible(pending, ctx):
            groups = group_pending(ctx.cells, pending, ctx.batch_cells)
            yield from run_batched_inline(groups, ctx)
        else:
            yield from run_sequential(pending, ctx)
