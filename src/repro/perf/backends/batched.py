"""Batch-group scheduling shared by the inline and local-pool backends.

``engine="batch"`` keeps every per-cell contract — identities, journal
entries (written under the fast engine's keys, since the results are
pinned equal), envelopes, per-cell ``cell.seconds`` — but schedules
pending cells in trace-sharing groups through the vectorized batch
kernels.  This module owns the group partitioning, the worker-side
group task, and the fold of group results back into per-cell envelopes;
the backends own *where* groups execute (inline or a process pool).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from .. import engine as engine_mod
from ..cells import CellOutcome, LabeledCell
from ..journal import SweepJournal
from ..trace_cache import TraceLike, as_trace, is_trace_recipe
from .base import SweepContext, record_cell_span


def group_pending(
    cells: Sequence[LabeledCell], pending: Sequence[int], limit: int
) -> List[List[int]]:
    """Partition pending cell indices into batch groups.

    Cells sharing one trace — the same recipe, or the very same Trace
    object — land in one group (chunked at ``limit``) so the batch
    kernel simulates them against a single materialisation.  Groups keep
    first-appearance order and cells keep their original order within a
    group; the concatenation of all groups is exactly ``pending``, each
    index once.
    """
    by_trace: Dict[object, List[int]] = {}
    order: List[object] = []
    for index in pending:
        trace = cells[index][3]
        key: object = trace if is_trace_recipe(trace) else id(trace)
        bucket = by_trace.get(key)
        if bucket is None:
            by_trace[key] = bucket = []
            order.append(key)
        bucket.append(index)
    groups: List[List[int]] = []
    for key in order:
        bucket = by_trace[key]
        for start in range(0, len(bucket), limit):
            groups.append(bucket[start : start + limit])
    return groups


class JournalBatch:
    """Defers journal appends so a batch group flushes with one write.

    Quacks like :class:`SweepJournal` for ``ctx.record_success``; every
    buffered entry is still one per-cell journal line, so resume
    granularity is unchanged — only the open/flush count drops from one
    per cell to one per group.
    """

    def __init__(self, journal: Optional[SweepJournal]) -> None:
        self._journal = journal
        self._entries: List[tuple] = []

    def record(self, key: str, fields: dict, metrics: Dict[str, float], seconds: float) -> None:
        self._entries.append((key, fields, metrics, seconds))

    def flush(self) -> None:
        if self._journal is not None and self._entries:
            self._journal.record_many(self._entries)
        self._entries.clear()


def _cell_batch_spec(factory: Callable[[object], object], parameter: object):
    """The cell's batch spec straight from its factory, if it offers one.

    The ``batch_spec`` factory protocol: a factory may expose
    ``batch_spec(parameter)`` returning a registered batch spec (or
    ``None``) describing exactly the model ``factory(parameter)`` would
    build.  It exists purely to skip model construction — building a
    large cache allocates per-set arrays just so the engine can read
    three fields off it — so a factory whose models are *not* freshly
    cold must return ``None`` and let the model-based eligibility check
    decide.
    """
    getter = getattr(factory, "batch_spec", None)
    if getter is None:
        return None
    spec = getter(parameter)
    if spec is None or not engine_mod.is_batch_spec(spec):
        return None
    return spec


def batch_task(
    specs: "List[tuple]",
    trace_ref: TraceLike,
    engine: str,
) -> "List[tuple]":
    """Worker-side group execution: one marker tuple per cell, in order.

    ``specs`` is ``[(factory, parameter), ...]``.  Cells whose factory
    speaks the ``batch_spec`` protocol go straight to the spec-level
    kernel entry point; the rest build their model and either join the
    batch via the model-based eligibility check or fall back to per-cell
    fast simulation.  A factory that raises fails only its own cell; the
    group's compute time is split evenly across its cells (they execute
    jointly, there is no per-cell clock).  Raises only for group-level
    failures (trace load, kernel error), which the scheduler answers by
    re-running the cells individually.
    """
    started = time.perf_counter()
    trace = as_trace(trace_ref)
    batch_specs: List[Optional[object]] = []
    failures: Dict[int, str] = {}
    models: Dict[int, object] = {}
    for position, (factory, parameter) in enumerate(specs):
        spec = _cell_batch_spec(factory, parameter)
        if spec is None and position not in failures:
            try:
                model = factory(parameter)
            except Exception as exc:
                failures[position] = f"{type(exc).__name__}: {exc}"
            else:
                spec = engine_mod.batch_spec_for(model)
                if spec is None:
                    models[position] = model
        batch_specs.append(spec)
    vectorized = [i for i, spec in enumerate(batch_specs) if spec is not None]
    obs_metrics.counter("batch.cells.vectorized", len(vectorized))
    obs_metrics.counter("batch.cells.fallback", len(specs) - len(vectorized))
    results: List[tuple] = [()] * len(specs)
    if vectorized:
        stats_list = engine_mod.simulate_batch_specs(
            trace, [batch_specs[i] for i in vectorized]
        )
        for position, stats in zip(vectorized, stats_list):
            results[position] = ("ok", {"miss_rate": stats.miss_rate}, 0.0)
    for position, model in models.items():
        stats = engine_mod.simulate(model, trace, engine="fast")
        results[position] = ("ok", {"miss_rate": stats.miss_rate}, 0.0)
    share = (time.perf_counter() - started) / max(1, len(specs))
    for position, error in failures.items():
        results[position] = ("error", error, share)
    return [
        (marker[0], marker[1], share) for marker in results
    ]


def apply_group_results(
    results: "List[tuple]",
    group: Sequence[int],
    ctx: SweepContext,
) -> Iterator[CellOutcome]:
    """Fold one group's worker markers into per-cell envelopes."""
    batch_journal = JournalBatch(ctx.journal)
    for index, marker in zip(group, results):
        outcome = ctx.outcomes[index]
        outcome.attempts += 1
        status, payload, seconds = marker
        outcome.seconds = seconds
        if status == "ok":
            ctx.record_success(outcome, payload, seconds, journal=batch_journal)
        else:
            ctx.fail(outcome, str(payload))
        record_cell_span(outcome, batched=True)
        yield outcome
    batch_journal.flush()


def run_sequential(
    pending: Sequence[int], ctx: SweepContext
) -> Iterator[CellOutcome]:
    """Inline per-cell execution (no pool; also the batch-group fallback)."""
    from ..cells import evaluate_cell
    from .base import cell_attrs

    for index in pending:
        outcome = ctx.outcomes[index]
        _, factory, parameter, trace = ctx.cells[index]
        outcome.attempts += 1
        cell_started = time.perf_counter()
        with obs_tracing.span("cell", **cell_attrs(outcome)) as cell_span:
            try:
                metrics = evaluate_cell(
                    factory, parameter, trace, ctx.engine, ctx.evaluator
                )
            except Exception as exc:
                outcome.seconds = time.perf_counter() - cell_started
                ctx.fail(outcome, f"{type(exc).__name__}: {exc}")
                if cell_span is not None:
                    cell_span.attrs["error"] = outcome.error
            else:
                ctx.record_success(
                    outcome, metrics, time.perf_counter() - cell_started
                )
        yield outcome


def run_batched_inline(
    groups: List[List[int]], ctx: SweepContext
) -> Iterator[CellOutcome]:
    """Batched execution without a pool: one kernel invocation per group.

    A group-level failure (kernel exception, trace generation error)
    demotes just that group to the per-cell sequential path, so a
    poisoned cell costs its group's batching, not the sweep.
    """
    for group in groups:
        trace_ref = ctx.cells[group[0]][3]
        specs = [(ctx.cells[index][1], ctx.cells[index][2]) for index in group]
        with obs_tracing.span("batch_group", cells=len(group)) as group_span:
            try:
                results = batch_task(specs, trace_ref, ctx.engine)
            except Exception as exc:
                if group_span is not None:
                    group_span.attrs["fallback"] = f"{type(exc).__name__}: {exc}"
                obs_metrics.counter("batch.group_fallbacks", engine=ctx.engine)
                yield from run_sequential(group, ctx)
            else:
                yield from apply_group_results(results, group, ctx)


def batch_eligible(pending: Sequence[int], ctx: SweepContext) -> bool:
    """Whether this run should schedule in batch groups at all.

    Custom ``evaluator`` sweeps bypass grouping entirely (an evaluator
    is a per-cell measurement by contract), and a single pending cell
    has nothing to amortise.
    """
    return ctx.engine == "batch" and ctx.evaluator is None and len(pending) > 1
