"""The sweep-backend interface, registry, and shared execution helpers.

A **backend** is one strategy for executing a sweep's pending cells:
``inline`` (this process, no pool), ``local-pool`` (one machine's
:class:`~concurrent.futures.ProcessPoolExecutor` plus the batched
shared-memory tier), or ``fleet`` (long-lived ``repro worker``
subprocesses — local or SSH — speaking NDJSON).  Backends share one
contract:

* :meth:`SweepBackend.submit_cells` receives the pending cell indices
  and a :class:`SweepContext` and *yields* each :class:`CellOutcome` as
  it resolves, having already folded it into the run's journal and
  telemetry via the context helpers.  The orchestrator
  (:func:`repro.perf.parallel.run_labeled_cells`) reports each yielded
  outcome to observers/progress, so cells stream in completion order
  whatever strategy ran them.
* :meth:`SweepBackend.close` releases whatever the run held (pools,
  worker subprocesses); the orchestrator always calls it.

Selection, in priority order: an explicit ``backend=`` argument, the
process default set by ``--backend`` on a CLI, the ``REPRO_BACKEND``
environment variable, and finally the automatic choice that preserves
the pre-backend behaviour (``inline`` for single-worker or single-cell
runs, ``local-pool`` otherwise).
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Type

from ...env import env_backend
from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from ..cells import CellEvaluator, CellOutcome, LabeledCell
from ..journal import SweepJournal
from ..telemetry import SweepTelemetry


@dataclass
class SweepContext:
    """Everything one sweep run hands its backend.

    The mutation helpers (:meth:`record_success`, :meth:`fail`) are the
    single place cell results turn into journal entries and telemetry
    counters, so every backend journals and counts identically — the
    backend-invariance tests pin exactly that.
    """

    cells: Sequence[LabeledCell]
    outcomes: List[CellOutcome]
    engine: str
    workers: int
    timeout: Optional[float]
    pool_retries: int
    journal: Optional[SweepJournal]
    progress: bool
    telemetry: SweepTelemetry
    evaluator: Optional[CellEvaluator] = None
    batch_cells: int = 16
    fleet_hosts: List[str] = field(default_factory=list)
    #: Trace propagation context (:func:`repro.obs.distributed
    #: .propagation_context`) the backend forwards to worker processes;
    #: None when tracing is off.
    obs_ctx: Optional[Dict[str, object]] = None

    def record_success(
        self,
        outcome: CellOutcome,
        metrics: Dict[str, float],
        seconds: float,
        journal: "SweepJournal | None | object" = None,
    ) -> None:
        """Fold one computed cell into its envelope, the journal, and
        telemetry.  ``journal`` overrides the run journal (the batched
        tier passes its deferred-flush buffer)."""
        outcome.metrics = dict(metrics)
        outcome.miss_rate = metrics.get("miss_rate")
        outcome.seconds = seconds
        self.telemetry.completed += 1
        self.telemetry.cell_seconds.append(seconds)
        if outcome.worker:
            counts = self.telemetry.worker_cells
            counts[outcome.worker] = counts.get(outcome.worker, 0) + 1
        sink = self.journal if journal is None else journal
        if sink is not None and outcome.identity.journalable:
            identity = outcome.identity
            sink.record(identity.key(), identity.payload(), metrics, seconds)

    def fail(self, outcome: CellOutcome, error: str) -> None:
        outcome.error = error
        self.telemetry.failed += 1

    def report(self, outcome: CellOutcome) -> None:
        """Stream one resolved cell to the observer hook and, when
        ``--progress`` is on, a stderr progress line."""
        report_outcome(self.progress, self.telemetry, outcome)


class SweepBackend:
    """One execution strategy for a sweep's pending cells."""

    #: Registry key ("inline", "local-pool", "fleet").
    name = ""

    def submit_cells(
        self, pending: Sequence[int], ctx: SweepContext
    ) -> Iterator[CellOutcome]:
        """Execute the pending cells, yielding each resolved envelope.

        Implementations must fold every yielded outcome into the journal
        and telemetry (via the ``ctx`` helpers) *before* yielding it.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release run-scoped resources (pools, worker processes)."""


# -- registry -----------------------------------------------------------------

BACKENDS: Dict[str, Type[SweepBackend]] = {}


def register_backend(cls: Type[SweepBackend]) -> Type[SweepBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    if not cls.name:
        raise ValueError(f"backend class {cls.__name__} has no name")
    BACKENDS[cls.name] = cls
    return cls


def backend_names() -> List[str]:
    return sorted(BACKENDS)


def create_backend(name: str) -> SweepBackend:
    """Instantiate a registered backend for one sweep run."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (choose from {', '.join(backend_names())})"
        ) from None
    return cls()


# -- backend selection --------------------------------------------------------

_DEFAULT_BACKEND: Optional[str] = None


def set_default_backend(backend: Optional[str]) -> None:
    """Set the process-wide default (the CLI's ``--backend`` flag)."""
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (choose from {', '.join(backend_names())})"
        )
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def default_backend() -> Optional[str]:
    return _DEFAULT_BACKEND


def resolve_backend(backend: Optional[str] = None) -> Optional[str]:
    """Explicit argument > CLI default > REPRO_BACKEND > None (automatic).

    ``None`` means the orchestrator picks per run: ``inline`` when the
    run is single-worker or has at most one pending cell, otherwise
    ``local-pool`` — exactly the pre-backend dispatch.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(choose from {', '.join(backend_names())})"
            )
        return backend
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    return env_backend()


# -- outcome observation and progress -----------------------------------------

# Per-thread hook observing every resolved cell (cached, computed, or
# failed) as run_labeled_cells reports it.  Thread-local so concurrent
# sweeps — e.g. two serve requests on different handler threads — each
# stream only their own cells.
_OUTCOME_OBSERVER = threading.local()


@contextmanager
def outcome_observer(callback: "Callable[[SweepTelemetry, CellOutcome], None]"):
    """Observe each resolved cell of any sweep run on this thread.

    The callback receives the run's live telemetry and the cell's
    envelope at the same points ``--progress`` would print a line:
    journal replays, pooled/batched completions, and failures alike.
    ``repro.serve`` uses this to stream per-cell progress over HTTP.
    Callback exceptions are swallowed (and counted under the
    ``sweep.observer_errors`` metric): a broken observer must not
    poison the sweep it is watching.
    """
    previous = getattr(_OUTCOME_OBSERVER, "callback", None)
    _OUTCOME_OBSERVER.callback = callback
    try:
        yield
    finally:
        _OUTCOME_OBSERVER.callback = previous


def report_outcome(
    enabled: bool, telemetry: SweepTelemetry, outcome: CellOutcome
) -> None:
    observer = getattr(_OUTCOME_OBSERVER, "callback", None)
    if observer is not None:
        try:
            observer(telemetry, outcome)
        except Exception:
            obs_metrics.counter("sweep.observer_errors")
    if not enabled:
        return
    resolved = telemetry.completed + telemetry.failed
    if outcome.cached:
        status = "journal"
    elif outcome.error is not None:
        status = f"FAILED ({outcome.error})"
    else:
        status = f"{outcome.seconds:.2f}s"
    print(
        f"[sweep {resolved}/{telemetry.total}] {outcome.identity.describe()} -> {status}",
        file=sys.stderr,
        flush=True,
    )


# -- span helpers -------------------------------------------------------------


def cell_attrs(outcome: CellOutcome) -> Dict[str, object]:
    """JSON-safe span attributes naming one cell."""
    identity = outcome.identity
    return {
        "label": identity.label,
        "parameter": repr(identity.parameter),
        "trace": identity.trace_name,
        "engine": identity.engine,
    }


def record_cell_span(
    outcome: CellOutcome, **extra: object
) -> "Optional[obs_tracing.Span]":
    """Synthetic ``cell`` span for a cell executed outside this process.

    Worker processes cannot reach the parent's tracer, so the parent
    back-dates a span from the envelope's worker-measured seconds once
    the cell resolves (success or terminal failure).  ``extra`` tags the
    strategy (``pooled=True``, ``batched=True``, ``worker=...``).
    Returns the recorded span (None when tracing is off) so the
    distributed merge can parent the worker's shipped spans under it.
    """
    attrs = cell_attrs(outcome)
    attrs.update(extra)
    if outcome.worker:
        attrs["worker"] = outcome.worker
    if outcome.error is not None:
        attrs["error"] = outcome.error
    return obs_tracing.record("cell", outcome.seconds, **attrs)


def merge_worker_obs(
    outcome: CellOutcome,
    cell_span: "Optional[obs_tracing.Span]",
    payload: object,
) -> int:
    """Fold a worker's shipped obs payload under the cell's span.

    Thin wrapper over :func:`repro.obs.distributed.merge_cell_payload`
    adding the sweep-side attribution (the envelope's ``worker`` id,
    when the backend assigned one).
    """
    if not isinstance(payload, dict):
        return 0
    from ...obs import distributed as obs_distributed

    return obs_distributed.merge_cell_payload(
        payload, cell_span, worker=outcome.worker or ""
    )
