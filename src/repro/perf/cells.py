"""Cell identity, result envelopes, and single-cell execution.

The execution layer is built around per-cell **result envelopes**
(:class:`CellOutcome`) instead of bare ``future.result()`` calls: every
cell carries its full :class:`CellIdentity` — factory label and
fingerprint, parameter, trace recipe, engine — plus wall time and any
captured exception, so a failure names exactly which cell died instead
of aborting the whole grid anonymously.  Everything here is backend-
independent: the execution strategies in :mod:`repro.perf.backends`
consume these envelopes, and :mod:`repro.perf.parallel` orchestrates.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import tracing as obs_tracing
from ..trace.trace import Trace
from . import engine as engine_mod
from .journal import canonical_parameter, content_key, is_stable_parameter
from .trace_cache import TraceLike, as_trace, is_trace_recipe


@dataclass(frozen=True)
class CellIdentity:
    """Everything needed to name one sweep cell in an error, journal
    entry, or progress line: which curve (factory label + fingerprint),
    which parameter, which trace (with its reference budget, i.e. the
    ``max_refs``/``REPRO_TRACE_SCALE`` the run used), which engine."""

    label: str
    factory: str
    parameter: object
    trace_name: str
    trace_kind: str
    trace_refs: int
    engine: str
    trace_digest: str = ""
    journalable: bool = True
    evaluator: str = ""

    def describe(self) -> str:
        return (
            f"{self.label} | {self.parameter!r} | "
            f"{self.trace_name}({self.trace_kind}, {self.trace_refs} refs) | "
            f"engine={self.engine}"
        )

    def payload(self) -> dict:
        """The content-hashed identity dict (journal key material).

        The ``evaluator`` field is included only when a custom metric
        evaluator is in play, so default miss-rate cells hash to exactly
        the keys the pre-spec sweep runner wrote — an old journal
        resumes under the new pipeline unchanged.
        """
        payload = {
            "label": self.label,
            "factory": self.factory,
            "parameter": canonical_parameter(self.parameter)
            if self.journalable
            else repr(self.parameter),
            "trace_name": self.trace_name,
            "trace_kind": self.trace_kind,
            "trace_refs": self.trace_refs,
            "trace_digest": self.trace_digest,
            # The batched engine is a scheduling strategy, not a different
            # simulation: its results are pinned equal to the fast tier's,
            # so its journal entries hash to the same keys and the two
            # engines resume each other's sweeps interchangeably.
            "engine": "fast" if self.engine == "batch" else self.engine,
        }
        if self.evaluator:
            payload["evaluator"] = self.evaluator
        return payload

    def key(self) -> str:
        return content_key(self.payload())


def _factory_fingerprint(factory: object) -> Optional[str]:
    """A repr stable across processes, or None when there isn't one.

    Frozen-dataclass factories (``StandardFactory`` etc.) repr their
    configuration deterministically.  Lambdas and local closures repr a
    memory address, which a resumed run cannot be matched against — and
    a *reused* address must never cause a false journal hit — so such
    cells are executed but never journaled.
    """
    text = repr(factory)
    if " at 0x" in text or "<locals>" in text or "object at" in text:
        return None
    return text


def _trace_digest(trace: Trace) -> str:
    """Stable content digest of a raw (non-TraceKey) trace."""
    digest = hashlib.sha256()
    digest.update(trace.addrs.tobytes())
    digest.update(trace.kinds.tobytes())
    return digest.hexdigest()[:16]


def identity_for(
    label: str,
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: str,
    digest: bool = False,
    evaluator: Optional[Callable] = None,
) -> CellIdentity:
    """Build the full identity envelope for one cell.

    ``digest`` asks for a content hash of raw Trace objects (needed only
    when journaling, where a name collision must not replay the wrong
    trace's result; trace recipes are already deterministic).
    """
    fingerprint = _factory_fingerprint(factory)
    if is_trace_recipe(trace):
        name, kind, refs, trace_dig = (
            str(trace.name), str(trace.kind), int(trace.max_refs), ""
        )
    else:
        name = trace.name or "<anonymous>"
        kind = "<trace>"
        refs = len(trace)
        trace_dig = _trace_digest(trace) if digest else ""
    evaluator_print = None
    if evaluator is not None:
        evaluator_print = _factory_fingerprint(evaluator)
    return CellIdentity(
        label=label,
        factory=fingerprint if fingerprint is not None else repr(factory),
        parameter=parameter,
        trace_name=name,
        trace_kind=kind,
        trace_refs=refs,
        engine=engine,
        trace_digest=trace_dig,
        journalable=(
            fingerprint is not None
            and is_stable_parameter(parameter)
            and (evaluator is None or evaluator_print is not None)
        ),
        evaluator=evaluator_print or "",
    )


@dataclass
class CellOutcome:
    """One cell's result envelope: identity + value or captured error.

    ``metrics`` carries every number the cell's evaluator produced; the
    default evaluator yields ``{"miss_rate": ...}`` and ``miss_rate``
    mirrors that entry for the existing single-metric callers.
    ``worker`` names the fleet worker that computed the cell (empty for
    single-process backends).
    """

    identity: CellIdentity
    miss_rate: Optional[float] = None
    metrics: Optional[Dict[str, float]] = None
    seconds: float = 0.0
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None and self.metrics is not None


class SweepCellError(RuntimeError):
    """One or more sweep cells failed; carries every failed envelope.

    The message names each failed cell's full identity so a 500-cell
    overnight sweep reports "dynamic-exclusion @ 32768 on gcc under the
    fast engine died", not a bare traceback from an anonymous future.
    """

    def __init__(self, failures: Sequence[CellOutcome], total: int) -> None:
        self.failures = list(failures)
        self.total = total
        lines = [f"{len(self.failures)} of {total} sweep cell(s) failed:"]
        for outcome in self.failures:
            lines.append(f"  [{outcome.identity.describe()}] {outcome.error}")
        super().__init__("\n".join(lines))


# -- cell execution -----------------------------------------------------------

#: One sweep cell: (factory, parameter, trace).  The factory and the
#: trace reference must be picklable when workers > 1 — pass module
#: -level callables / dataclass instances and TraceKeys, not lambdas
#: and raw Traces.
Cell = Tuple[Callable[[object], object], object, TraceLike]

#: A labelled sweep cell: (label, factory, parameter, trace).
LabeledCell = Tuple[str, Callable[[object], object], object, TraceLike]


def simulate_cell(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: Optional[str] = None,
) -> float:
    """Build one simulator, run one trace, return the miss rate."""
    stats = engine_mod.simulate(factory(parameter), as_trace(trace), engine=engine)
    return stats.miss_rate


#: A custom per-cell measurement: ``(model, trace, engine) -> metrics``.
#: Must be picklable (module-level callable or frozen dataclass) when the
#: sweep fans out to workers; an address-free repr makes its cells
#: journalable.  The default (``None``) measures ``{"miss_rate": ...}``
#: through the engine dispatch.
CellEvaluator = Callable[[object, Trace, str], Dict[str, float]]


def evaluate_cell(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: Optional[str] = None,
    evaluator: Optional[CellEvaluator] = None,
) -> Dict[str, float]:
    """Build one model, run one trace, return the cell's metric dict."""
    engine = engine_mod.resolve_engine(engine)
    with obs_tracing.span("build_model", parameter=str(parameter)):
        model = factory(parameter)
    materialised = as_trace(trace)
    if evaluator is None:
        stats = engine_mod.simulate(model, materialised, engine=engine)
        return {"miss_rate": stats.miss_rate}
    metrics = evaluator(model, materialised, engine)
    if not isinstance(metrics, dict) or not metrics:
        raise TypeError(
            f"cell evaluator {evaluator!r} must return a non-empty dict of "
            f"floats, got {metrics!r}"
        )
    return {str(key): float(value) for key, value in metrics.items()}


def cell_task(
    factory: Callable[[object], object],
    parameter: object,
    trace: TraceLike,
    engine: str,
    evaluator: Optional[CellEvaluator] = None,
    obs_ctx: "Optional[Dict[str, object]]" = None,
) -> tuple:
    """Worker-side cell execution.

    Returns ``(metrics, compute_seconds)``, or — when the parent passed
    a trace propagation context (``obs_ctx``) — a third element: the
    worker's captured span/metric payload for
    :func:`repro.obs.distributed.merge_cell_payload`.
    """
    if obs_ctx is None:
        started = time.perf_counter()
        metrics = evaluate_cell(factory, parameter, trace, engine, evaluator)
        return metrics, time.perf_counter() - started
    from repro.obs.distributed import WorkerCapture

    with WorkerCapture(obs_ctx) as capture:
        started = time.perf_counter()
        # The cell_exec bracket ships the worker's own measurement of
        # the region the parent back-dates as the cell span, so pauses
        # that land between sub-phase spans (GC, scheduler preemption)
        # are still accounted for in the merged trace.
        with obs_tracing.span("cell_exec"):
            metrics = evaluate_cell(
                factory, parameter, trace, engine, evaluator
            )
        seconds = time.perf_counter() - started
    return metrics, seconds, capture.payload()
