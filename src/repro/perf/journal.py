"""On-disk sweep journal: resumable per-cell results.

A large figure sweep at ``REPRO_TRACE_SCALE`` 5+ runs for minutes per
figure; a single worker crash used to discard every finished cell.  The
journal makes completed cells durable: each successful cell appends one
JSON line keyed by a content hash of the full cell identity (factory
fingerprint, parameter, trace recipe incl. ``max_refs``, engine), and a
later run with the same journal directory replays those results instead
of recomputing them.

The format follows the :mod:`repro.analysis.serialize` conventions —
``kind`` + ``version`` fields, ``sort_keys`` output — and is append-only
so a crash mid-write costs at most the torn final line (which is
skipped on load and simply recomputed).

This module also owns :func:`canonical_parameter`, the single source of
truth for which sweep parameter types survive a JSON round trip; the
sweep serialiser reuses it so journal keys and persisted sweeps agree.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..obs.tracing import iter_jsonl

JOURNAL_VERSION = 1

#: File name used inside a resume directory.
JOURNAL_FILENAME = "journal.jsonl"


def canonical_parameter(value: object, where: str = "sweep parameter") -> object:
    """Return a JSON-stable form of a sweep parameter.

    Scalars (``str``/``int``/``float``/``bool``/``None``) pass through;
    tuples — including nested ones — become JSON arrays and are restored
    as tuples by :func:`parameter_from_json`, so ``Series.points``
    lookups keyed by tuple parameters still hit after a reload.
    Anything else (lists, dicts, arbitrary objects, non-finite floats)
    does not survive a JSON round trip losslessly and is rejected with a
    descriptive :class:`TypeError` instead of coming back subtly
    different.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TypeError(f"{where} {value!r} is a non-finite float and has no stable JSON form")
        return value
    if isinstance(value, tuple):
        return [canonical_parameter(item, where=where) for item in value]
    raise TypeError(
        f"{where} {value!r} of type {type(value).__name__} does not survive a "
        f"JSON round trip; use str/int/float/bool/None or (nested) tuples of them"
    )


def parameter_from_json(value: object) -> object:
    """Restore a canonical parameter (JSON arrays come back as tuples)."""
    if isinstance(value, list):
        return tuple(parameter_from_json(item) for item in value)
    return value


def is_stable_parameter(value: object) -> bool:
    """Whether :func:`canonical_parameter` accepts ``value``."""
    try:
        canonical_parameter(value)
    except TypeError:
        return False
    return True


def content_key(payload: dict) -> str:
    """Deterministic hex digest of a cell-identity payload dict.

    ``allow_nan=False`` rejects non-finite floats outright: Python would
    otherwise serialise them as bare ``NaN``/``Infinity`` tokens, which
    are not JSON — and ``NaN != NaN``, so such a payload could never be
    a stable content address anyway.
    """
    try:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except ValueError:
        raise ValueError(
            f"cell-identity payload contains a non-finite float and has no "
            f"stable content key: {payload!r}"
        ) from None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-only JSONL cache of completed sweep cells.

    ``get`` answers "has this exact cell already been computed?" from
    the in-memory index built at load time; ``record`` appends and
    flushes one line per completed cell so an interrupted run loses at
    most the cell in flight.  Lines that fail to parse (torn tail write
    from a crash), carry an unknown ``kind``, or come from a newer
    format version are skipped — their cells are recomputed, never
    trusted.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self._entries: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        # iter_jsonl (shared with the span trace) already skips blank,
        # torn, and non-object lines; such cells are recomputed.
        for entry in iter_jsonl(self.path):
            if entry.get("kind") != "sweep-cell":
                continue
            if entry.get("version", 0) > JOURNAL_VERSION:
                continue
            key = entry.get("key")
            if isinstance(key, str) and self.entry_metrics(entry) is not None:
                self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The recorded entry for ``key``, or ``None``."""
        return self._entries.get(key)

    @staticmethod
    def entry_metrics(entry: dict) -> "Optional[Dict[str, float]]":
        """The metric dict a journal entry replays, or ``None`` if unusable.

        Single-metric entries (the original format — one ``miss_rate``
        number) come back as ``{"miss_rate": value}``; multi-metric
        entries written by custom cell evaluators carry an explicit
        ``metrics`` dict.
        """
        metrics = entry.get("metrics")
        if isinstance(metrics, dict):
            if metrics and all(
                isinstance(value, (int, float)) and not isinstance(value, bool)
                for value in metrics.values()
            ):
                return {str(k): float(v) for k, v in metrics.items()}
            return None
        rate = entry.get("miss_rate")
        if isinstance(rate, (int, float)) and not isinstance(rate, bool):
            return {"miss_rate": float(rate)}
        return None

    def record(
        self,
        key: str,
        fields: dict,
        metrics: "Union[Dict[str, float], float]",
        seconds: float,
    ) -> None:
        """Append one completed cell (flushed immediately).

        ``metrics`` is the cell's metric dict; a bare number is accepted
        as shorthand for ``{"miss_rate": value}``.  A plain miss-rate
        metric set is written in the original single-number format, so
        journals produced by the spec pipeline stay readable by (and
        byte-compatible with) the pre-spec tooling; any other metric set
        adds a ``metrics`` dict.
        """
        self.record_many([(key, fields, metrics, seconds)])

    def record_many(
        self,
        entries: "Sequence[Tuple[str, dict, Union[Dict[str, float], float], float]]",
    ) -> None:
        """Append a batch of completed cells with one open/flush.

        Each element is ``(key, fields, metrics, seconds)`` exactly as
        :meth:`record` takes them, and each becomes its own journal line
        — batching changes only the I/O granularity (the batched sweep
        scheduler flushes once per cell *group*), never the entry format
        or the resume granularity.
        """
        built = []
        for key, fields, metrics, seconds in entries:
            if not isinstance(metrics, dict):
                metrics = {"miss_rate": float(metrics)}
            for name, value in metrics.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    # A custom evaluator that returns a string/None/bool
                    # metric used to crash math.isfinite with a bare
                    # TypeError; name the cell and the metric instead,
                    # exactly like the non-finite rejection below.
                    raise ValueError(
                        f"journal entry {key!r} metric {name!r} is not a "
                        f"number ({value!r} of type {type(value).__name__}); "
                        f"refusing to record it"
                    )
                if not math.isfinite(value):
                    # json.dumps would emit a bare NaN/Infinity token —
                    # not JSON, unreadable by other tools — and a
                    # non-finite metric is a broken measurement, not a
                    # result worth replaying.
                    raise ValueError(
                        f"journal entry {key!r} metric {name!r} is "
                        f"non-finite ({value!r}); refusing to record it"
                    )
            entry = {
                "kind": "sweep-cell",
                "version": JOURNAL_VERSION,
                "key": key,
                "seconds": round(seconds, 6),
                **fields,
            }
            if "miss_rate" in metrics:
                entry["miss_rate"] = metrics["miss_rate"]
            if set(metrics) != {"miss_rate"}:
                entry["metrics"] = dict(metrics)
            built.append((key, entry))
        if not built:
            return
        with self.path.open("a", encoding="utf-8") as handle:
            for _, entry in built:
                handle.write(json.dumps(entry, sort_keys=True, allow_nan=False) + "\n")
            handle.flush()
        for key, entry in built:
            self._entries[key] = entry
