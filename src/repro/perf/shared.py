"""Zero-copy trace distribution over POSIX shared memory.

Pooled sweeps ship traces to workers either as :class:`TraceKey`-style
recipes (each worker regenerates the trace) or, before this module, as
pickled megabyte arrays.  Batched execution makes the regeneration cost
visible — a batch group is one task, so the old per-process memoisation
amortises over fewer cells — and pickling copies the arrays once per
task.  Here the parent instead materialises the trace once into a
``multiprocessing.shared_memory`` segment and sends workers a tiny
:class:`SharedTraceHandle`; each worker maps the segment read-only and
wraps the *same physical pages* in a :class:`~repro.trace.trace.Trace`
(``Trace`` builds on ``np.asarray``, so no copy happens).

Lifecycle contract:

* The **parent** owns the segment: :meth:`SharedTrace.create` copies the
  arrays in, and :meth:`SharedTrace.unlink` (idempotent) removes it.
  Sweep code must unlink in a ``finally`` so failed sweeps
  (:class:`~repro.perf.parallel.SweepCellError`, worker crashes,
  timeouts) cannot leak ``/dev/shm`` entries.  If the parent itself is
  SIGKILLed, the ``multiprocessing`` resource tracker — a separate
  process that outlives it — unlinks every segment the parent created,
  which is why the creator deliberately stays registered with it.
* A **worker** only ever attaches.  Attaches are memoised per process
  (one mapping no matter how many batch groups reuse the trace) and are
  explicitly *unregistered* from the worker's resource tracker:
  otherwise every attaching process records the segment as its own and
  the first worker to exit destroys it for everyone (CPython < 3.13
  tracks attached segments too; 3.13's ``track=False`` is not available
  on this toolchain).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..trace.trace import Trace

#: Prefix for every segment this module creates; tests match on it to
#: assert nothing leaked into /dev/shm.
SHM_PREFIX = "repro-trace"

_NEXT_SEGMENT = 0


def _segment_name() -> str:
    """A per-process unique segment name (pid + counter)."""
    global _NEXT_SEGMENT
    _NEXT_SEGMENT += 1
    return f"{SHM_PREFIX}-{os.getpid()}-{_NEXT_SEGMENT}"


def _unregister_attachment(shm: shared_memory.SharedMemory) -> None:
    """Undo the attach-time resource-tracker registration where it is
    harmful.

    CPython 3.11 registers a segment with the resource tracker on
    *attach*, not just create.  A ``multiprocessing`` child shares the
    parent's tracker process, so there the extra registration is
    deduplicated and must be left alone — unregistering would erase the
    creator's registration and lose the crash-cleanup guarantee.  A
    standalone attaching process, however, runs its own tracker, which
    would unlink the creator's segment when this process exits; that
    registration must be dropped.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


@dataclass(frozen=True)
class SharedTraceHandle:
    """A picklable pointer to a trace living in shared memory.

    Mirrors the recipe surface (``name``/``kind``/``max_refs`` plus
    ``load()``) so the existing worker-side plumbing treats it exactly
    like a :class:`~repro.perf.parallel.TraceKey`.  The sweep scheduler
    never lets handles reach cell *identities* — journal keys are built
    from the original recipe in the parent — so the handle only carries
    what a worker needs to map and label the data.
    """

    shm_name: str
    refs: int
    name: str
    kind: str
    max_refs: int

    def load(self) -> Trace:
        return attach(self)


#: Per-process attach memo: segment name -> (mapping, wrapped trace).
#: The SharedMemory object must stay referenced for as long as the
#: Trace's arrays do — both live here until detach_all().
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Trace]] = {}


def attach(handle: SharedTraceHandle) -> Trace:
    """Map a shared segment and wrap it as a (zero-copy) Trace."""
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    _unregister_attachment(shm)
    try:
        addrs = np.ndarray((handle.refs,), dtype=np.uint64, buffer=shm.buf)
        kinds = np.ndarray(
            (handle.refs,), dtype=np.uint8, buffer=shm.buf, offset=handle.refs * 8
        )
        trace = Trace(addrs, kinds, name=handle.name)
    except Exception:
        shm.close()
        raise
    _ATTACHED[handle.shm_name] = (shm, trace)
    return trace


def attached_count() -> int:
    """How many segments this process currently has mapped (tests)."""
    return len(_ATTACHED)


def detach_all() -> None:
    """Drop every memoised attachment (worker teardown / tests).

    Closing invalidates the numpy views, so callers must not hold on to
    traces returned by :func:`attach` across this call.
    """
    while _ATTACHED:
        _, (shm, trace) = _ATTACHED.popitem()
        del trace
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass


class SharedTrace:
    """Parent-side owner of one shared-memory trace segment."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedTraceHandle) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.handle = handle
        self._unlinked = False

    @classmethod
    def create(cls, trace: Trace, recipe: object = None) -> "SharedTrace":
        """Copy ``trace`` into a fresh segment and return its owner.

        ``recipe`` (a TraceKey-like object) supplies the ``kind`` and
        ``max_refs`` labels; a raw trace is labelled with its own length.
        """
        refs = len(trace)
        size = max(1, refs * 8 + refs)  # uint64 addrs then uint8 kinds
        shm = shared_memory.SharedMemory(create=True, name=_segment_name(), size=size)
        if refs:
            addrs_view = np.ndarray((refs,), dtype=np.uint64, buffer=shm.buf)
            kinds_view = np.ndarray(
                (refs,), dtype=np.uint8, buffer=shm.buf, offset=refs * 8
            )
            np.copyto(addrs_view, trace.addrs)
            np.copyto(kinds_view, trace.kinds)
            # Release the views before anyone tries to close the mapping:
            # mmap refuses to close while exported buffers exist.
            del addrs_view, kinds_view
        handle = SharedTraceHandle(
            shm_name=shm.name,
            refs=refs,
            name=trace.name or (str(getattr(recipe, "name", "")) or "<shared>"),
            kind=str(getattr(recipe, "kind", "<trace>")),
            max_refs=int(getattr(recipe, "max_refs", refs)),
        )
        return cls(shm, handle)

    def unlink(self) -> None:
        """Close and remove the segment (idempotent, crash-path safe)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - parent kept a view alive
            pass
        if not self._unlinked:
            self._unlinked = True
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC backstop only
        try:
            self.unlink()
        except Exception:
            pass
