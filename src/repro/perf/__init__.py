"""Fast simulation: set-partitioned kernels, engine dispatch, parallel sweeps.

* :mod:`repro.perf.kernels` — numpy set-partitioned kernels for the
  direct-mapped, dynamic-exclusion, Belady-optimal (any associativity,
  plus the last-line variant), and LRU set-associative caches;
* :mod:`repro.perf.engine` — ``simulate(model, trace, engine=...)``
  dispatch with a kernel registry and automatic reference fallback,
  plus ``simulate_batch`` for many cells sharing one trace;
* :mod:`repro.perf.batch` — the batched dynamic-exclusion kernel: one
  vectorized invocation simulates a whole geometry sweep against a
  single trace factorization;
* :mod:`repro.perf.shared` — zero-copy trace distribution to pool
  workers over ``multiprocessing.shared_memory``;
* :mod:`repro.perf.parallel` — a fault-tolerant process-pool sweep
  runner: per-cell result envelopes with full identity, bounded retry
  with pool re-creation on worker crashes, per-cell timeouts, and
  structured telemetry; ships deterministic
  :class:`~repro.perf.parallel.TraceKey` recipes instead of trace
  arrays;
* :mod:`repro.perf.journal` — the opt-in on-disk result journal that
  lets a crashed or interrupted sweep resume from its completed cells;
* :mod:`repro.perf.backends` — the pluggable execution backends the
  sweep runner delegates to: ``inline`` (this process), ``local-pool``
  (one machine's process pool + batched shared-memory tier), and
  ``fleet`` (cells sharded across long-lived ``repro worker``
  subprocesses, local or SSH);
* :mod:`repro.perf.worker` — the NDJSON protocol loop a fleet worker
  subprocess runs (``python -m repro.cli worker``).
"""

from .batch import DEBatchSpec, simulate_dynamic_exclusion_batch
from .engine import (
    ENGINES,
    KernelExecutionError,
    batch_spec_for,
    is_batch_spec,
    default_engine,
    has_batch_kernel,
    has_kernel,
    kernel_for,
    registered_kernel_types,
    resolve_engine,
    set_default_engine,
    simulate,
    simulate_batch,
    simulate_batch_specs,
)
from .journal import SweepJournal, canonical_parameter, parameter_from_json
from .shared import SharedTrace, SharedTraceHandle
from .kernels import (
    simulate_belady,
    simulate_direct_mapped,
    simulate_dynamic_exclusion,
    simulate_lru,
    simulate_optimal_last_line,
)
from .backends import (
    BACKENDS,
    SweepBackend,
    SweepContext,
    backend_names,
    create_backend,
    default_backend,
    live_worker_ids,
    live_workers,
    register_backend,
    resolve_backend,
    set_default_backend,
    worker_command,
)
from .parallel import (
    DEFAULT_BATCH_CELLS,
    CellIdentity,
    CellOutcome,
    SweepCellError,
    SweepTelemetry,
    TraceKey,
    as_trace,
    clear_trace_cache,
    default_journal_dir,
    drain_telemetry,
    env_workers,
    evaluate_cell,
    identity_for,
    is_trace_recipe,
    outcome_observer,
    resolve_batch_cells,
    resolve_workers,
    run_cells,
    run_labeled_cells,
    set_default_cell_timeout,
    set_default_journal_dir,
    set_default_progress,
    set_default_workers,
    simulate_cell,
)
from .worker import worker_main

__all__ = [
    "BACKENDS",
    "ENGINES",
    "CellIdentity",
    "CellOutcome",
    "KernelExecutionError",
    "SweepBackend",
    "SweepCellError",
    "SweepContext",
    "SweepJournal",
    "SweepTelemetry",
    "TraceKey",
    "as_trace",
    "backend_names",
    "batch_spec_for",
    "is_batch_spec",
    "canonical_parameter",
    "clear_trace_cache",
    "create_backend",
    "DEBatchSpec",
    "DEFAULT_BATCH_CELLS",
    "default_backend",
    "default_engine",
    "default_journal_dir",
    "drain_telemetry",
    "env_workers",
    "evaluate_cell",
    "has_batch_kernel",
    "has_kernel",
    "identity_for",
    "is_trace_recipe",
    "kernel_for",
    "live_worker_ids",
    "live_workers",
    "outcome_observer",
    "parameter_from_json",
    "register_backend",
    "registered_kernel_types",
    "resolve_backend",
    "resolve_batch_cells",
    "resolve_engine",
    "resolve_workers",
    "run_cells",
    "run_labeled_cells",
    "SharedTrace",
    "SharedTraceHandle",
    "set_default_backend",
    "set_default_cell_timeout",
    "set_default_engine",
    "set_default_journal_dir",
    "set_default_progress",
    "set_default_workers",
    "simulate",
    "simulate_batch",
    "simulate_batch_specs",
    "simulate_belady",
    "simulate_cell",
    "simulate_direct_mapped",
    "simulate_dynamic_exclusion",
    "simulate_dynamic_exclusion_batch",
    "simulate_lru",
    "simulate_optimal_last_line",
    "worker_command",
    "worker_main",
]
