"""Fast simulation: set-partitioned kernels, engine dispatch, parallel sweeps.

* :mod:`repro.perf.kernels` — numpy set-partitioned kernels for the
  direct-mapped, dynamic-exclusion, Belady-optimal (any associativity,
  plus the last-line variant), and LRU set-associative caches;
* :mod:`repro.perf.engine` — ``simulate(model, trace, engine=...)``
  dispatch with a kernel registry and automatic reference fallback;
* :mod:`repro.perf.parallel` — a process-pool sweep runner that ships
  deterministic :class:`~repro.perf.parallel.TraceKey` recipes instead
  of trace arrays.
"""

from .engine import (
    ENGINES,
    default_engine,
    has_kernel,
    kernel_for,
    registered_kernel_types,
    resolve_engine,
    set_default_engine,
    simulate,
)
from .kernels import (
    simulate_belady,
    simulate_direct_mapped,
    simulate_dynamic_exclusion,
    simulate_lru,
    simulate_optimal_last_line,
)
from .parallel import (
    TraceKey,
    env_workers,
    resolve_workers,
    run_cells,
    set_default_workers,
    simulate_cell,
)

__all__ = [
    "ENGINES",
    "TraceKey",
    "default_engine",
    "env_workers",
    "has_kernel",
    "kernel_for",
    "registered_kernel_types",
    "resolve_engine",
    "resolve_workers",
    "run_cells",
    "set_default_engine",
    "set_default_workers",
    "simulate",
    "simulate_belady",
    "simulate_cell",
    "simulate_direct_mapped",
    "simulate_dynamic_exclusion",
    "simulate_lru",
    "simulate_optimal_last_line",
]
