"""Fast simulation: set-partitioned kernels, engine dispatch, parallel sweeps.

* :mod:`repro.perf.kernels` — numpy set-partitioned kernels for the
  direct-mapped and dynamic-exclusion caches;
* :mod:`repro.perf.engine` — ``simulate(model, trace, engine=...)``
  dispatch with a kernel registry and automatic reference fallback;
* :mod:`repro.perf.parallel` — a process-pool sweep runner that ships
  deterministic :class:`~repro.perf.parallel.TraceKey` recipes instead
  of trace arrays.
"""

from .engine import (
    ENGINES,
    default_engine,
    has_kernel,
    kernel_for,
    resolve_engine,
    set_default_engine,
    simulate,
)
from .kernels import simulate_direct_mapped, simulate_dynamic_exclusion
from .parallel import (
    TraceKey,
    env_workers,
    resolve_workers,
    run_cells,
    set_default_workers,
    simulate_cell,
)

__all__ = [
    "ENGINES",
    "TraceKey",
    "default_engine",
    "env_workers",
    "has_kernel",
    "kernel_for",
    "resolve_engine",
    "resolve_workers",
    "run_cells",
    "set_default_engine",
    "set_default_workers",
    "simulate",
    "simulate_cell",
    "simulate_direct_mapped",
    "simulate_dynamic_exclusion",
]
