"""Structured sweep telemetry: per-run records, the drain log, metrics.

Since the ``repro.obs`` metrics registry became the primary sink (see
:func:`publish_metrics`), :class:`SweepTelemetry` is the per-run
compatibility view the experiments CLI serialises to
``<id>.telemetry.json`` — same fields, same JSON shape as always, plus
backend/worker attribution since the backend split.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

from ..obs import metrics as obs_metrics


@dataclass
class SweepTelemetry:
    """Structured counters for one ``run_labeled_cells`` invocation.

    ``backend`` names the execution backend that ran the sweep
    (``inline`` / ``local-pool`` / ``fleet``; empty for records
    predating the backend split).  ``worker_cells`` counts computed
    cells per fleet worker id — empty for single-process backends.
    """

    engine: str
    workers: int
    total: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    pool_restarts: int = 0
    elapsed: float = 0.0
    cell_seconds: List[float] = field(default_factory=list)
    backend: str = ""
    worker_cells: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        timings = self.cell_seconds
        data = {
            "kind": "sweep-telemetry",
            "version": 1,
            "engine": self.engine,
            "workers": self.workers,
            "cells_total": self.total,
            "cells_completed": self.completed,
            "cells_failed": self.failed,
            "cells_cached": self.cached,
            "pool_restarts": self.pool_restarts,
            "elapsed_seconds": round(self.elapsed, 6),
            "cell_seconds": [round(s, 6) for s in timings],
            "cell_seconds_mean": round(sum(timings) / len(timings), 6) if timings else 0.0,
            "cell_seconds_max": round(max(timings), 6) if timings else 0.0,
            "backend": self.backend,
        }
        if self.worker_cells:
            data["worker_cells"] = dict(self.worker_cells)
        return data

    # The serialisation API is ``as_dict``/``from_dict``; ``to_dict``
    # remains as the original spelling callers already use.
    def as_dict(self) -> dict:
        return self.to_dict()

    @classmethod
    def from_dict(cls, data: dict) -> "SweepTelemetry":
        """Rebuild a record from :meth:`as_dict` output (round-trip safe
        modulo the 1e-6 rounding applied on the way out)."""
        if data.get("kind") != "sweep-telemetry":
            raise ValueError(f"not a sweep-telemetry record: {data.get('kind')!r}")
        return cls(
            engine=str(data["engine"]),
            workers=int(data["workers"]),
            total=int(data["cells_total"]),
            completed=int(data["cells_completed"]),
            failed=int(data["cells_failed"]),
            cached=int(data["cells_cached"]),
            pool_restarts=int(data["pool_restarts"]),
            elapsed=float(data["elapsed_seconds"]),
            cell_seconds=[float(s) for s in data.get("cell_seconds", [])],
            backend=str(data.get("backend", "")),
            worker_cells={
                str(k): int(v)
                for k, v in data.get("worker_cells", {}).items()
            },
        )

    def summary(self) -> str:
        backend = f", backend={self.backend}" if self.backend else ""
        return (
            f"{self.total} cells: {self.completed} done "
            f"({self.cached} from journal), {self.failed} failed, "
            f"{self.pool_restarts} pool restarts, "
            f"{self.workers} worker(s), engine={self.engine}{backend}, "
            f"{self.elapsed:.2f}s"
        )


#: Retained run records for callers that never drain (a library user
#: driving run_labeled_cells in a loop): the deque discards the oldest
#: past this bound instead of growing for the life of the process.  The
#: obs metrics registry keeps the running totals regardless.
TELEMETRY_LOG_LIMIT = 256

_TELEMETRY_LOCK = threading.Lock()
_TELEMETRY_LOG: Deque[SweepTelemetry] = deque(maxlen=TELEMETRY_LOG_LIMIT)


def drain_telemetry() -> List[SweepTelemetry]:
    """Return and clear the telemetry records accumulated so far."""
    with _TELEMETRY_LOCK:
        drained = list(_TELEMETRY_LOG)
        _TELEMETRY_LOG.clear()
    return drained


def log_telemetry(telemetry: SweepTelemetry) -> None:
    with _TELEMETRY_LOCK:
        _TELEMETRY_LOG.append(telemetry)


def publish_metrics(telemetry: SweepTelemetry) -> None:
    """Fold one run's telemetry into the obs metrics registry."""
    engine = telemetry.engine
    obs_metrics.counter("sweep.runs", engine=engine)
    obs_metrics.counter("sweep.cells.total", telemetry.total, engine=engine)
    obs_metrics.counter("sweep.cells.completed", telemetry.completed, engine=engine)
    obs_metrics.counter("sweep.cells.failed", telemetry.failed, engine=engine)
    obs_metrics.counter("sweep.cells.cached", telemetry.cached, engine=engine)
    obs_metrics.counter("sweep.pool_restarts", telemetry.pool_restarts, engine=engine)
    obs_metrics.gauge("sweep.workers", telemetry.workers, engine=engine)
    if telemetry.backend:
        obs_metrics.counter("sweep.runs.by_backend", backend=telemetry.backend)
    for worker_id, count in telemetry.worker_cells.items():
        obs_metrics.counter("sweep.cells.by_worker", count, worker=worker_id)
    for seconds in telemetry.cell_seconds:
        obs_metrics.histogram("cell.seconds", seconds, engine=engine)
