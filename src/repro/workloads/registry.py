"""Benchmark registry: build traces by name.

This is the public face of :mod:`repro.workloads`: experiments ask for
``instruction_trace("gcc", max_refs=200_000)`` and get a deterministic
trace.  Programs and traces are *not* cached here (that is the job of
:mod:`repro.experiments.common`); the registry only maps names to
builders.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..trace.trace import Trace
from ..trace.transforms import only_data, only_instructions
from .program import Program
from .spec import SPEC_BUILDERS, SPEC_DESCRIPTIONS, SPEC_NAMES

#: Default reference budget per benchmark trace.  The paper uses the
#: first 10 M references of each benchmark; we default to 200 k so the
#: full figure suite runs in minutes on a laptop (see DESIGN.md §2).
DEFAULT_MAX_REFS = 200_000


def benchmark_names() -> List[str]:
    """The ten SPEC benchmark names, sorted."""
    return list(SPEC_NAMES)


def describe(name: str) -> str:
    """The paper's one-line description of a benchmark."""
    _require_known(name)
    return SPEC_DESCRIPTIONS[name]


def build_program(name: str) -> Program:
    """Construct a benchmark's synthetic program (deterministic)."""
    _require_known(name)
    return SPEC_BUILDERS[name]()


def mixed_trace(name: str, max_refs: Optional[int] = DEFAULT_MAX_REFS) -> Trace:
    """The benchmark's full instruction + data trace.

    With a ``max_refs`` budget the program repeats until the budget is
    exhausted; with ``max_refs=None`` it runs exactly once.
    """
    program = build_program(name)
    repeat = 1 if max_refs is None else 1_000_000
    return program.trace(max_refs=max_refs, repeat=repeat, name=name)


def instruction_trace(name: str, max_refs: Optional[int] = DEFAULT_MAX_REFS) -> Trace:
    """Only the instruction fetches (paper Sections 3-6).

    ``max_refs`` bounds the *instruction* count, so an extra margin of
    mixed references is generated before filtering.
    """
    if max_refs is None:
        return only_instructions(mixed_trace(name, None))
    mixed = mixed_trace(name, max_refs * 2)
    instructions = only_instructions(mixed)
    return instructions[:max_refs].with_name(name)


def data_trace(name: str, max_refs: Optional[int] = DEFAULT_MAX_REFS) -> Trace:
    """Only the data references (paper Section 7).

    Data references are sparser than instruction fetches, so the mixed
    budget is scaled up before filtering; the result may still be
    shorter than ``max_refs`` for instruction-heavy benchmarks.
    """
    if max_refs is None:
        return only_data(mixed_trace(name, None))
    mixed = mixed_trace(name, max_refs * 6)
    data = only_data(mixed)
    return data[:max_refs].with_name(name)


_KIND_BUILDERS: Dict[str, Callable[[str, Optional[int]], Trace]] = {
    "instruction": instruction_trace,
    "data": data_trace,
    "mixed": mixed_trace,
}


def trace_by_kind(name: str, kind: str, max_refs: Optional[int] = DEFAULT_MAX_REFS) -> Trace:
    """Dispatch on ``kind`` in {"instruction", "data", "mixed"}."""
    try:
        builder = _KIND_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown trace kind {kind!r}; expected one of {sorted(_KIND_BUILDERS)}"
        ) from None
    return builder(name, max_refs)


def _require_known(name: str) -> None:
    if name not in SPEC_BUILDERS:
        raise ValueError(f"unknown benchmark {name!r}; known: {SPEC_NAMES}")
