"""SPEC'89-like synthetic benchmarks (paper Figure 2).

The paper traces ten SPEC benchmarks with ``pixie``.  We cannot ship
those traces, so each benchmark is modelled as a seeded synthetic
program whose *structure* — code footprint, loop nesting, call density,
basic-block length, and data-reference mix — follows the published
character of the original:

===========  ============================================  ==============
benchmark    paper description                             modelled as
===========  ============================================  ==============
doduc        Monte Carlo simulation                        mid-size numeric phases, deep loops, strided + scalar data
eqntott      equation to truth table conversion            small hot loops with long trip counts, bit-vector streams
espresso     boolean function minimisation                 mid-size symbolic phases, nested loops, reused heap region
fpppp        quantum chemistry                             few procedures with very long basic blocks
gcc          GNU C compiler                                many large code phases, short trip counts, stack traffic
li           lisp interpreter                              dispatch switch over many small handlers, recursion, pointer chase
matrix300    matrix multiplication                         tiny triple loop, large streaming arrays
nasa7        NASA Ames FORTRAN kernels                     seven small kernels run in sequence
spice        circuit simulation                            large numeric phases, moderate loops
tomcatv      vectorised mesh generation                    tiny loops, several large streaming arrays
===========  ============================================  ==============

**How the conflict patterns arise.**  Each benchmark lays out a large
pool of leaf procedures (its total code range, mostly cold at any one
time — like a real binary) and runs a sequence of *phases*.  A phase is
a loop whose body calls a fixed, randomly chosen, sparse subset of the
pool plus a few shared *utility* procedures.  Three kinds of conflict
follow, matching the paper's Section 3 taxonomy:

* two leaves of one phase whose words happen to share a cache set
  alternate once per loop iteration — the *conflict within loops*
  pattern that dynamic exclusion halves;
* leaf-internal loops (and hot utilities) conflicting with
  once-per-iteration straight-line code give the *loop level* pattern
  that dynamic exclusion nearly eliminates;
* consecutive phases reusing the same cache sets give the *between
  loops* pattern, for which a direct-mapped cache is already optimal.

Because the subsets are sparse, most conflicts involve exactly two hot
words — the regime where the single-sticky-bit FSM wins; at small cache
sizes the same programs develop three-way conflicts and the improvement
shrinks, exactly as the paper's Figure 5 describes.  Code ranges differ
per benchmark (gcc largest, the little numeric kernels smallest), which
produces the paper's Figure 3 split: large improvements for the big
codes, essentially nothing for matrix300/nasa7/tomcatv.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from .data_model import (
    DataPattern,
    PointerChase,
    RandomAccess,
    ScalarAccess,
    StackAccess,
    StridedAccess,
)
from .program import Block, Call, Loop, Node, Procedure, Program, Seq, TripSpec

#: Where synthetic data regions start (well away from code).
DATA_BASE = 0x1000_0000

#: Where synthetic stacks start.
STACK_BASE = 0x7FFF_0000


class _Allocator:
    """Hands out disjoint data regions for one program."""

    def __init__(self, base: int = DATA_BASE, align: int = 64) -> None:
        self._next = base
        self._align = align

    def alloc(self, size: int) -> int:
        base = self._next
        step = (size + self._align - 1) // self._align * self._align
        self._next += step
        return base


#: A data profile decides the data patterns of one leaf procedure.
DataProfile = Callable[[random.Random, _Allocator, int], List[DataPattern]]


def _no_data(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
    return []


def _phased_benchmark(
    name: str,
    seed: int,
    n_leaves: int,
    leaf_words: "tuple[int, int]",
    n_phases: int,
    leaves_per_iteration: int,
    phase_trips: TripSpec,
    data_profile: DataProfile = _no_data,
    leaf_loop_fraction: float = 0.3,
    leaf_loop_trips: TripSpec = (4, 12),
    n_utilities: int = 5,
    utility_words: "tuple[int, int]" = (10, 36),
    utilities_per_iteration: int = 2,
    utility_loop_fraction: float = 0.5,
    utility_loop_trips: TripSpec = (3, 8),
    driver_words: "tuple[int, int]" = (8, 24),
    stack: Optional[StackAccess] = None,
    proc_gap: int = 16,
) -> Program:
    """The common benchmark skeleton (see the module docstring).

    ``n_leaves`` procedures are laid out contiguously (the code range);
    each of the ``n_phases`` drivers loops ``phase_trips`` times over a
    fixed random subset of ``leaves_per_iteration`` of them plus
    ``utilities_per_iteration`` shared utilities.
    """
    rng = random.Random(seed)
    alloc = _Allocator()
    procedures: List[Procedure] = []

    utility_names: List[str] = []
    for u in range(n_utilities):
        words = rng.randint(*utility_words)
        if rng.random() < utility_loop_fraction:
            nodes: Sequence[Node] = [
                Block(max(2, words // 3)),
                Loop(Block(max(2, words // 2)), utility_loop_trips),
                Block(max(1, words // 6)),
            ]
        else:
            nodes = [Block(words)]
        utility_name = f"{name}_util{u}"
        utility_names.append(utility_name)
        procedures.append(Procedure(utility_name, nodes))

    leaf_names: List[str] = []
    for i in range(n_leaves):
        words = rng.randint(*leaf_words)
        data = data_profile(rng, alloc, i)
        if leaf_loop_fraction and rng.random() < leaf_loop_fraction:
            nodes = [
                Block(max(2, words // 4)),
                Loop(Block(max(2, words // 2), data=data), leaf_loop_trips),
                Block(max(1, words // 4)),
            ]
        else:
            nodes = [Block(words, data=data)]
        leaf_name = f"{name}_leaf{i}"
        leaf_names.append(leaf_name)
        procedures.append(Procedure(leaf_name, nodes))

    phase_names: List[str] = []
    for p in range(n_phases):
        callees = rng.sample(leaf_names, min(leaves_per_iteration, n_leaves))
        utilities = rng.sample(
            utility_names, min(utilities_per_iteration, len(utility_names))
        )
        body: List[Node] = [Block(rng.randint(*driver_words))]
        # Interleave the utility calls among the leaf calls so utility
        # words sit between different leaves in the reference stream.
        step = max(1, len(callees) // (len(utilities) + 1))
        for i, callee in enumerate(callees):
            body.append(Call(callee))
            slot = (i + 1) // step - 1
            if (i + 1) % step == 0 and 0 <= slot < len(utilities):
                body.append(Call(utilities[slot]))
        phase_name = f"{name}_phase{p}"
        phase_names.append(phase_name)
        procedures.append(Procedure(phase_name, [Loop(body, phase_trips)]))

    main = Procedure("main", [Call(p) for p in phase_names])
    procedures.append(main)
    return Program(
        procedures,
        entry="main",
        proc_gap=proc_gap,
        stack=stack,
        seed=seed,
    )


# -- the ten benchmarks ------------------------------------------------------


def doduc() -> Program:
    """Monte Carlo simulation: numeric, mid-size phases, deep loops."""

    streams: List[StridedAccess] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        # Per-leaf: a tiny local array (wraps within a few visits, so it
        # is reused heavily) and a loop-carried scalar.  Every third
        # leaf also walks one of three shared streaming arrays.
        if len(streams) < 3:
            streams.append(
                StridedAccess(alloc.alloc(24 * 1024), 24 * 1024, stride=8, refs_per_visit=2)
            )
        patterns: List[DataPattern] = [
            StridedAccess(alloc.alloc(256), 256, stride=4, refs_per_visit=3),
            ScalarAccess(alloc.alloc(8), write_every=4),
        ]
        if index % 3 == 0:
            patterns.append(streams[index % len(streams)])
        return patterns

    return _phased_benchmark(
        "doduc",
        seed=0xD0D,
        n_leaves=420,
        leaf_words=(16, 72),
        n_phases=7,
        leaves_per_iteration=26,
        phase_trips=(12, 35),
        data_profile=profile,
        leaf_loop_fraction=0.5,
        leaf_loop_trips=(3, 8),
    )


def eqntott() -> Program:
    """Truth-table conversion: few hot loops, long trips, bit vectors."""

    vectors: List[StridedAccess] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        if len(vectors) < 2:
            vectors.append(
                StridedAccess(alloc.alloc(32 * 1024), 32 * 1024, stride=4, refs_per_visit=3)
            )
        return [
            vectors[index % len(vectors)],
            StridedAccess(alloc.alloc(512), 512, stride=4, refs_per_visit=2),
            ScalarAccess(alloc.alloc(8)),
        ]

    return _phased_benchmark(
        "eqntott",
        seed=0xE47,
        n_leaves=80,
        leaf_words=(32, 120),
        n_phases=5,
        leaves_per_iteration=4,
        phase_trips=(30, 80),
        data_profile=profile,
        leaf_loop_fraction=0.5,
        leaf_loop_trips=(4, 12),
        n_utilities=4,
    )


def espresso() -> Program:
    """Boolean minimisation: symbolic, nested loops, reused heap."""
    shared_regions: List[int] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        # Many leaves share a few heap regions, giving high data reuse.
        if index % 8 == 0 or not shared_regions:
            shared_regions.append(alloc.alloc(16 * 1024))
        return [
            RandomAccess(shared_regions[-1], 16 * 1024, refs_per_visit=2,
                         write_fraction=0.2, seed=index),
            StridedAccess(alloc.alloc(512), 512, stride=4, refs_per_visit=2),
            ScalarAccess(alloc.alloc(8), write_every=6),
        ]

    return _phased_benchmark(
        "espresso",
        seed=0xE59,
        n_leaves=280,
        leaf_words=(16, 72),
        n_phases=8,
        leaves_per_iteration=20,
        phase_trips=(15, 40),
        data_profile=profile,
        leaf_loop_fraction=0.45,
        leaf_loop_trips=(2, 8),
    )


def fpppp() -> Program:
    """Quantum chemistry: a handful of enormous basic blocks."""

    integrals: List[StridedAccess] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        if not integrals:
            integrals.append(
                StridedAccess(alloc.alloc(24 * 1024), 24 * 1024, stride=8, refs_per_visit=4)
            )
        return [
            StridedAccess(alloc.alloc(1024), 1024, stride=8, refs_per_visit=8),
            integrals[0],
            ScalarAccess(alloc.alloc(8), write_every=3),
        ]

    return _phased_benchmark(
        "fpppp",
        seed=0xF99,
        n_leaves=80,
        leaf_words=(160, 420),
        n_phases=5,
        leaves_per_iteration=6,
        phase_trips=(10, 25),
        data_profile=profile,
        leaf_loop_fraction=0.15,
        driver_words=(16, 40),
    )


def gcc() -> Program:
    """C compiler: very large phases, short trips, stack traffic."""
    stack = StackAccess(STACK_BASE, frame_size=48, refs_per_visit=3, seed=0x6CC)

    tables: List[RandomAccess] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        if len(tables) < 3:
            tables.append(
                RandomAccess(alloc.alloc(24 * 1024), 24 * 1024, refs_per_visit=2,
                             write_fraction=0.3, seed=index)
            )
        patterns: List[DataPattern] = [stack, ScalarAccess(alloc.alloc(16))]
        if index % 4 == 0:
            patterns.append(tables[index % len(tables)])
        return patterns

    return _phased_benchmark(
        "gcc",
        seed=0x6CC,
        n_leaves=900,
        leaf_words=(16, 100),
        n_phases=8,
        leaves_per_iteration=30,
        phase_trips=(12, 30),
        data_profile=profile,
        leaf_loop_fraction=0.3,
        leaf_loop_trips=(2, 5),
        n_utilities=8,
        utilities_per_iteration=3,
        stack=stack,
    )


def li() -> Program:
    """Lisp interpreter: handler pool, repeated expressions, pointer chasing.

    Each phase models one expression being evaluated over and over by
    the interpreter's driver loop: a fixed sequence of handler
    procedures, so the same handlers alternate for many iterations —
    the interpreter analogue of the within-loop conflict pattern.
    """
    seed = 0x115
    stack = StackAccess(STACK_BASE, frame_size=32, refs_per_visit=2, seed=seed)
    heap_holder: List[PointerChase] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        if not heap_holder:
            heap_holder.append(
                PointerChase(alloc.alloc(96 * 1024), num_nodes=6 * 1024,
                             node_size=16, hops_per_visit=2, seed=seed)
            )
        patterns: List[DataPattern] = [stack, ScalarAccess(alloc.alloc(8))]
        if index % 2 == 0:
            patterns.append(heap_holder[0])
        return patterns

    return _phased_benchmark(
        "li",
        seed=seed,
        n_leaves=300,
        leaf_words=(12, 64),
        n_phases=8,
        leaves_per_iteration=36,
        phase_trips=(12, 35),
        data_profile=profile,
        leaf_loop_fraction=0.15,
        leaf_loop_trips=(2, 5),
        n_utilities=6,
        utilities_per_iteration=4,
        utility_loop_fraction=0.3,
        stack=stack,
    )


def matrix300() -> Program:
    """300x300 matrix multiply: three tiny loops, huge streaming arrays."""
    alloc = _Allocator()
    # One row of A is reused across the whole inner loop; B is walked
    # column-wise over the full matrix (the classic unblocked matmul).
    a = StridedAccess(alloc.alloc(2400), 2400, stride=8, refs_per_visit=2)
    b = StridedAccess(alloc.alloc(720 * 1024), 720 * 1024, stride=8, refs_per_visit=2)
    c = ScalarAccess(alloc.alloc(8), write_every=2)
    inner = Block(14, data=[a, b, c])
    mid = Loop([Block(6), inner], trips=(24, 24))
    outer = Loop([Block(8), mid], trips=(24, 24))
    main = Procedure("main", [Block(40), Loop([outer], trips=(4, 4)), Block(20)])
    return Program([main], entry="main", seed=0x300)


def nasa7() -> Program:
    """Seven small FORTRAN kernels run in sequence."""
    seed = 0x7A5
    rng = random.Random(seed)
    alloc = _Allocator()
    procedures: List[Procedure] = []
    kernel_names: List[str] = []
    for k in range(7):
        array = StridedAccess(alloc.alloc(48 * 1024), 48 * 1024, stride=8,
                              refs_per_visit=3, write_fraction=0.25)
        scalar = ScalarAccess(alloc.alloc(8))
        inner = Block(rng.randint(10, 26), data=[array, scalar])
        body = Loop([Block(rng.randint(4, 10)), Loop([inner], trips=(16, 16))],
                    trips=(12, 12))
        kernel_name = f"nasa7_kernel{k}"
        kernel_names.append(kernel_name)
        procedures.append(Procedure(kernel_name, [Block(rng.randint(8, 20)), body]))
    main = Procedure("main", [Seq([Call(k) for k in kernel_names])])
    procedures.append(main)
    return Program(procedures, entry="main", proc_gap=32, seed=seed)


def spice() -> Program:
    """Circuit simulation: large numeric phases, moderate loop structure."""

    matrices: List[DataPattern] = []

    def profile(rng: random.Random, alloc: _Allocator, index: int) -> List[DataPattern]:
        if len(matrices) < 4:
            matrices.append(
                StridedAccess(alloc.alloc(24 * 1024), 24 * 1024, stride=8, refs_per_visit=2)
                if len(matrices) % 2 == 0
                else RandomAccess(alloc.alloc(24 * 1024), 24 * 1024, refs_per_visit=2,
                                  write_fraction=0.1, seed=len(matrices))
            )
        patterns: List[DataPattern] = [
            ScalarAccess(alloc.alloc(8), write_every=5),
            StridedAccess(alloc.alloc(512), 512, stride=4, refs_per_visit=2),
        ]
        if index % 3 == 0:
            patterns.append(matrices[index % len(matrices)])
        return patterns

    return _phased_benchmark(
        "spice",
        seed=0x59C,
        n_leaves=550,
        leaf_words=(20, 104),
        n_phases=7,
        leaves_per_iteration=24,
        phase_trips=(12, 30),
        data_profile=profile,
        leaf_loop_fraction=0.4,
        leaf_loop_trips=(2, 6),
        n_utilities=7,
    )


def tomcatv() -> Program:
    """Vectorised mesh generation: tiny loops over large arrays."""
    alloc = _Allocator()
    arrays = [
        StridedAccess(alloc.alloc(96 * 1024), 96 * 1024, stride=8,
                      refs_per_visit=3, write_fraction=0.3)
        for _ in range(3)
    ]
    scalar = ScalarAccess(alloc.alloc(8))
    inner1 = Block(22, data=[arrays[0], arrays[1], scalar])
    inner2 = Block(18, data=[arrays[1], arrays[2]])
    sweep1 = Loop([Block(6), Loop([inner1], trips=(20, 20))], trips=(10, 10))
    sweep2 = Loop([Block(6), Loop([inner2], trips=(20, 20))], trips=(10, 10))
    main = Procedure("main", [Block(30), Loop([sweep1, sweep2], trips=(6, 6))])
    return Program([main], entry="main", seed=0x70C)


#: Paper Figure 2: benchmark name -> description.
SPEC_DESCRIPTIONS: Dict[str, str] = {
    "doduc": "Monte Carlo simulation",
    "eqntott": "conversion from equation to truth table",
    "espresso": "minimization of boolean functions",
    "fpppp": "quantum chemistry calculations",
    "gcc": "GNU C compiler",
    "li": "lisp interpreter",
    "matrix300": "matrix multiplication",
    "nasa7": "NASA Ames FORTRAN Kernels",
    "spice": "circuit simulation",
    "tomcatv": "vectorized mesh generation",
}

#: Benchmark name -> zero-argument Program builder.
SPEC_BUILDERS: Dict[str, Callable[[], Program]] = {
    "doduc": doduc,
    "eqntott": eqntott,
    "espresso": espresso,
    "fpppp": fpppp,
    "gcc": gcc,
    "li": li,
    "matrix300": matrix300,
    "nasa7": nasa7,
    "spice": spice,
    "tomcatv": tomcatv,
}

SPEC_NAMES: List[str] = sorted(SPEC_BUILDERS)
