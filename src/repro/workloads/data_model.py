"""Data-reference patterns for the synthetic workloads.

Each pattern is a small stateful generator of load/store addresses,
attached to basic blocks of the program model
(:mod:`repro.workloads.program`).  Between them they cover the data
behaviours the paper's benchmark mix implies: streaming arrays
(matrix300, tomcatv, nasa7), loop-carried scalars, stack frames
(gcc, li), scattered heap structures (eqntott, espresso, li), and
pointer chasing (lisp cells).
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Tuple

from ..trace.reference import RefKind

#: One emitted data reference: (address, kind).
DataRef = Tuple[int, RefKind]


class DataPattern(abc.ABC):
    """A stateful stream of data references."""

    @abc.abstractmethod
    def emit(self) -> List[DataRef]:
        """References produced by one activation (one block execution)."""

    def reset(self) -> None:
        """Return to the initial state (default: nothing to do)."""


class ScalarAccess(DataPattern):
    """A loop-carried scalar: the same word every activation."""

    def __init__(self, addr: int, write_every: int = 0) -> None:
        if addr < 0:
            raise ValueError("address must be non-negative")
        self.addr = addr
        self.write_every = write_every
        self._count = 0

    def emit(self) -> List[DataRef]:
        self._count += 1
        if self.write_every and self._count % self.write_every == 0:
            return [(self.addr, RefKind.STORE)]
        return [(self.addr, RefKind.LOAD)]

    def reset(self) -> None:
        self._count = 0


class StridedAccess(DataPattern):
    """A streaming array walk: ``refs_per_visit`` elements per
    activation, advancing by ``stride`` and wrapping at ``length`` bytes
    (the vector loops of tomcatv/matrix300/nasa7)."""

    def __init__(
        self,
        base: int,
        length: int,
        stride: int = 4,
        refs_per_visit: int = 1,
        write_fraction: float = 0.0,
    ) -> None:
        if length <= 0 or stride <= 0 or refs_per_visit <= 0:
            raise ValueError("length, stride and refs_per_visit must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        self.base = base
        self.length = length
        self.stride = stride
        self.refs_per_visit = refs_per_visit
        self.write_fraction = write_fraction
        self._offset = 0
        self._emitted = 0

    def emit(self) -> List[DataRef]:
        refs: List[DataRef] = []
        writes_per = self.write_fraction
        for _ in range(self.refs_per_visit):
            addr = self.base + self._offset
            self._emitted += 1
            # Deterministic write spacing: every 1/write_fraction refs.
            is_write = writes_per > 0.0 and (self._emitted * writes_per) % 1.0 < writes_per
            refs.append((addr, RefKind.STORE if is_write else RefKind.LOAD))
            self._offset = (self._offset + self.stride) % self.length
        return refs

    def reset(self) -> None:
        self._offset = 0
        self._emitted = 0


class RandomAccess(DataPattern):
    """Uniform references inside a region (hash tables, symbol tables)."""

    def __init__(
        self,
        base: int,
        size: int,
        refs_per_visit: int = 1,
        write_fraction: float = 0.0,
        granule: int = 4,
        seed: int = 0,
    ) -> None:
        if size < granule:
            raise ValueError("region smaller than one granule")
        self.base = base
        self.size = size
        self.refs_per_visit = refs_per_visit
        self.write_fraction = write_fraction
        self.granule = granule
        self._seed = seed
        self._rng = random.Random(seed)

    def emit(self) -> List[DataRef]:
        rng = self._rng
        slots = self.size // self.granule
        refs: List[DataRef] = []
        for _ in range(self.refs_per_visit):
            addr = self.base + rng.randrange(slots) * self.granule
            kind = RefKind.STORE if rng.random() < self.write_fraction else RefKind.LOAD
            refs.append((addr, kind))
        return refs

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class PointerChase(DataPattern):
    """Follow a fixed random permutation of nodes (lisp cons cells).

    The chain is a single cycle through all nodes, so successive
    activations have no spatial locality but perfect long-term reuse.
    """

    def __init__(
        self,
        base: int,
        num_nodes: int,
        node_size: int = 16,
        hops_per_visit: int = 1,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.base = base
        self.node_size = node_size
        self.hops_per_visit = hops_per_visit
        rng = random.Random(seed)
        order = list(range(num_nodes))
        rng.shuffle(order)
        # next_node[order[i]] = order[i+1] forms one big cycle.
        self._next = [0] * num_nodes
        for i, node in enumerate(order):
            self._next[node] = order[(i + 1) % num_nodes]
        self._current = order[0]
        self._start = order[0]

    def emit(self) -> List[DataRef]:
        refs: List[DataRef] = []
        for _ in range(self.hops_per_visit):
            refs.append((self.base + self._current * self.node_size, RefKind.LOAD))
            self._current = self._next[self._current]
        return refs

    def reset(self) -> None:
        self._current = self._start


class StackAccess(DataPattern):
    """Stack-frame traffic: a handful of words near a frame pointer.

    ``push``/``pop`` move the frame; the program model wires these to
    call/return events so recursive benchmarks get realistic stack
    locality.
    """

    def __init__(
        self,
        base: int,
        frame_size: int = 32,
        refs_per_visit: int = 2,
        write_fraction: float = 0.5,
        max_depth: int = 64,
        seed: int = 0,
    ) -> None:
        self.base = base
        self.frame_size = frame_size
        self.refs_per_visit = refs_per_visit
        self.write_fraction = write_fraction
        self.max_depth = max_depth
        self._seed = seed
        self._rng = random.Random(seed)
        self._depth = 0

    def push(self) -> None:
        if self._depth < self.max_depth:
            self._depth += 1

    def pop(self) -> None:
        if self._depth > 0:
            self._depth -= 1

    @property
    def depth(self) -> int:
        return self._depth

    def emit(self) -> List[DataRef]:
        rng = self._rng
        frame_base = self.base + self._depth * self.frame_size
        slots = max(1, self.frame_size // 4)
        refs: List[DataRef] = []
        for _ in range(self.refs_per_visit):
            addr = frame_base + rng.randrange(slots) * 4
            kind = RefKind.STORE if rng.random() < self.write_fraction else RefKind.LOAD
            refs.append((addr, kind))
        return refs

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._depth = 0


def interleave_refs(
    instructions: List[int], data: List[DataRef]
) -> Iterator[Tuple[int, RefKind]]:
    """Merge a block's instruction fetches with its data references,
    spreading the data references evenly between the instructions."""
    n_instr = len(instructions)
    n_data = len(data)
    if n_instr == 0:
        yield from data
        return
    emitted = 0
    for i, addr in enumerate(instructions):
        yield addr, RefKind.IFETCH
        # How many data refs should have been emitted after instr i.
        target = (i + 1) * n_data // n_instr
        while emitted < target:
            yield data[emitted]
            emitted += 1
