"""A tiny structured-program model that emits address traces.

The paper's trace substrate is ``pixie`` on a DECstation; ours is this
module.  A :class:`Program` is a set of :class:`Procedure` objects built
from four control constructs:

* :class:`Block` — straight-line code: N sequential instruction fetches,
  optionally generating data references from attached
  :class:`~repro.workloads.data_model.DataPattern` objects;
* :class:`Loop` — repeat a body a (possibly random) number of times;
* :class:`Call` — invoke another procedure (drives the shared stack
  pattern's push/pop);
* :class:`Switch` — pick one child per execution with given weights
  (models data-dependent branches and interpreter dispatch).

Code layout is linear: procedures get consecutive address ranges in
declaration order, so cache conflicts arise exactly the way they do in a
real linked binary — between code regions whose distance is a multiple
of the cache size.  This is what lets one synthetic program produce the
paper's conflict patterns at *every* cache size in a sweep.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..trace.reference import INSTRUCTION_SIZE, RefKind
from ..trace.trace import Trace, TraceBuilder
from .data_model import DataPattern, StackAccess, interleave_refs

#: Trip counts may be fixed or a (low, high) inclusive range.
TripSpec = Union[int, Tuple[int, int]]


class _EmissionDone(Exception):
    """Raised internally when the reference budget is exhausted."""


class Node:
    """Base class for program-structure nodes."""

    def _emit(self, ctx: "_EmitContext") -> None:
        raise NotImplementedError


class Block(Node):
    """``n_instr`` sequential instructions plus attached data patterns."""

    def __init__(self, n_instr: int, data: Sequence[DataPattern] = ()) -> None:
        if n_instr < 0:
            raise ValueError("n_instr must be non-negative")
        self.n_instr = n_instr
        self.data = list(data)
        self.address: Optional[int] = None
        self._addrs: List[int] = []

    def _assign_address(self, address: int) -> int:
        """Place the block at ``address``; returns the address after it."""
        self.address = address
        self._addrs = [
            address + i * INSTRUCTION_SIZE for i in range(self.n_instr)
        ]
        return address + self.n_instr * INSTRUCTION_SIZE

    def _emit(self, ctx: "_EmitContext") -> None:
        if self.address is None:
            raise RuntimeError("block executed before layout")
        if self.data:
            data_refs = []
            for pattern in self.data:
                data_refs.extend(pattern.emit())
            ctx.emit_refs(interleave_refs(self._addrs, data_refs))
        else:
            ctx.emit_instructions(self._addrs)


class Seq(Node):
    """Execute children in order."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        self.nodes = list(nodes)

    def _emit(self, ctx: "_EmitContext") -> None:
        for node in self.nodes:
            node._emit(ctx)


class Loop(Node):
    """Repeat a body ``trips`` times (``trips`` may be a range)."""

    def __init__(self, body: Union[Node, Sequence[Node]], trips: TripSpec) -> None:
        self.body = body if isinstance(body, Node) else Seq(body)
        self.trips = trips
        _validate_trips(trips)

    def _emit(self, ctx: "_EmitContext") -> None:
        trips = _resolve_trips(self.trips, ctx.rng)
        body = self.body
        for _ in range(trips):
            body._emit(ctx)


class Call(Node):
    """Invoke a procedure by name."""

    def __init__(self, callee: str) -> None:
        self.callee = callee

    def _emit(self, ctx: "_EmitContext") -> None:
        ctx.call(self.callee)


class Switch(Node):
    """Pick one child per execution according to ``weights``."""

    def __init__(self, children: Sequence[Node], weights: Optional[Sequence[float]] = None) -> None:
        if not children:
            raise ValueError("Switch needs at least one child")
        self.children = list(children)
        if weights is None:
            weights = [1.0] * len(children)
        if len(weights) != len(children):
            raise ValueError("weights must match children")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self.cumulative.append(acc)

    def _emit(self, ctx: "_EmitContext") -> None:
        draw = ctx.rng.random()
        for child, edge in zip(self.children, self.cumulative):
            if draw <= edge:
                child._emit(ctx)
                return
        self.children[-1]._emit(ctx)


class Procedure:
    """A named body of nodes occupying one contiguous code range."""

    def __init__(self, name: str, body: Union[Node, Sequence[Node]]) -> None:
        self.name = name
        self.body = body if isinstance(body, Node) else Seq(body)


class Program:
    """A set of procedures plus layout and trace emission.

    Parameters
    ----------
    procedures:
        Declaration order defines code layout.
    entry:
        Name of the procedure executed by :meth:`trace`.
    code_base:
        Byte address of the first instruction.
    proc_gap:
        Padding bytes inserted between procedures (models alignment and
        unexecuted code).
    stack:
        Optional shared :class:`StackAccess`; pushed/popped around calls.
    seed:
        Seed for trip-count ranges and :class:`Switch` draws.
    max_call_depth:
        Recursion guard; calls beyond this depth are elided.
    """

    def __init__(
        self,
        procedures: Iterable[Procedure],
        entry: str,
        code_base: int = 0x1000,
        proc_gap: int = 0,
        stack: Optional[StackAccess] = None,
        seed: int = 0,
        max_call_depth: int = 200,
    ) -> None:
        self.procedures: Dict[str, Procedure] = {}
        for proc in procedures:
            if proc.name in self.procedures:
                raise ValueError(f"duplicate procedure {proc.name!r}")
            self.procedures[proc.name] = proc
        if entry not in self.procedures:
            raise ValueError(f"entry procedure {entry!r} not defined")
        self.entry = entry
        self.code_base = code_base
        self.proc_gap = proc_gap
        self.stack = stack
        self.seed = seed
        self.max_call_depth = max_call_depth
        self.proc_addresses: Dict[str, int] = {}
        self.code_size = 0
        self._layout()

    def _layout(self) -> None:
        address = self.code_base
        for proc in self.procedures.values():
            self.proc_addresses[proc.name] = address
            address = _layout_node(proc.body, address)
            address += self.proc_gap
        self.code_size = address - self.code_base

    def _reset_patterns(self) -> None:
        seen = set()
        for proc in self.procedures.values():
            for block in _blocks_of(proc.body):
                for pattern in block.data:
                    if id(pattern) not in seen:
                        seen.add(id(pattern))
                        pattern.reset()
        if self.stack is not None:
            self.stack.reset()

    def trace(
        self,
        max_refs: Optional[int] = None,
        repeat: int = 1,
        name: str = "",
    ) -> Trace:
        """Execute the program and return its address trace.

        ``repeat`` runs the entry procedure that many times (or until
        ``max_refs`` references have been emitted).  Pattern state and
        the RNG are reset first, so emission is deterministic.
        """
        self._reset_patterns()
        builder = TraceBuilder()
        ctx = _EmitContext(self, builder, max_refs)
        try:
            for _ in range(repeat):
                ctx.call(self.entry)
        except _EmissionDone:
            pass
        trace = builder.build(name=name)
        if max_refs is not None:
            return trace[:max_refs].with_name(name)
        return trace


class _EmitContext:
    """Mutable state threaded through one emission run."""

    def __init__(self, program: Program, builder: TraceBuilder, max_refs: Optional[int]) -> None:
        self.program = program
        self.builder = builder
        self.max_refs = max_refs
        self.rng = random.Random(program.seed)
        self.depth = 0

    def _check_budget(self) -> None:
        if self.max_refs is not None and len(self.builder) >= self.max_refs:
            raise _EmissionDone

    def emit_instructions(self, addrs: List[int]) -> None:
        builder = self.builder
        for addr in addrs:
            builder.ifetch(addr)
        self._check_budget()

    def emit_refs(self, refs: Iterable[Tuple[int, RefKind]]) -> None:
        builder = self.builder
        for addr, kind in refs:
            builder.append(addr, kind)
        self._check_budget()

    def call(self, name: str) -> None:
        program = self.program
        if self.depth >= program.max_call_depth:
            return
        try:
            proc = program.procedures[name]
        except KeyError:
            raise ValueError(f"call to undefined procedure {name!r}") from None
        self.depth += 1
        if program.stack is not None:
            program.stack.push()
        try:
            proc.body._emit(self)
        finally:
            if program.stack is not None:
                program.stack.pop()
            self.depth -= 1


# -- helpers -----------------------------------------------------------------


def _validate_trips(trips: TripSpec) -> None:
    if isinstance(trips, int):
        if trips < 0:
            raise ValueError("trip count must be non-negative")
        return
    low, high = trips
    if low < 0 or high < low:
        raise ValueError(f"bad trip range {trips!r}")


def _resolve_trips(trips: TripSpec, rng: random.Random) -> int:
    if isinstance(trips, int):
        return trips
    low, high = trips
    return rng.randint(low, high)


def _layout_node(node: Node, address: int) -> int:
    """Assign addresses to every block under ``node``; returns the end."""
    if isinstance(node, Block):
        return node._assign_address(address)
    if isinstance(node, Seq):
        for child in node.nodes:
            address = _layout_node(child, address)
        return address
    if isinstance(node, Loop):
        return _layout_node(node.body, address)
    if isinstance(node, Switch):
        for child in node.children:
            address = _layout_node(child, address)
        return address
    if isinstance(node, Call):
        # A call occupies no code here; the jump instruction belongs to
        # the surrounding blocks.
        return address
    raise TypeError(f"unknown node type {type(node).__name__}")


def _blocks_of(node: Node) -> Iterable[Block]:
    if isinstance(node, Block):
        yield node
    elif isinstance(node, Seq):
        for child in node.nodes:
            yield from _blocks_of(child)
    elif isinstance(node, Loop):
        yield from _blocks_of(node.body)
    elif isinstance(node, Switch):
        for child in node.children:
            yield from _blocks_of(child)
