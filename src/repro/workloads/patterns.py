"""The paper's Section 3 conflict microkernels.

Each function returns an instruction trace over addresses that collide
in a given direct-mapped geometry, reproducing the three common
reference patterns (plus the pathological three-way conflict of
Section 5) with exactly the paper's notation:

* ``between_loops``  — ``(a^inner b^inner)^outer``
* ``loop_level``     — ``(a^inner b)^outer``
* ``within_loop``    — ``(a b)^trips``
* ``three_way``      — ``(a b c)^trips``

The module also provides the paper's analytic miss counts for the
conventional and optimal direct-mapped caches, which the test suite
checks against the simulators, miss for miss.
"""

from __future__ import annotations

from typing import List

from ..caches.geometry import CacheGeometry
from ..trace.reference import RefKind
from ..trace.trace import Trace


def conflicting_addresses(geometry: CacheGeometry, count: int, set_index: int = 0) -> List[int]:
    """``count`` byte addresses that all map to ``set_index``.

    Successive addresses are one cache-size apart, so they share a set in
    ``geometry`` *and* in every smaller direct-mapped cache with the same
    line size.
    """
    if geometry.associativity != 1:
        raise ValueError("conflict patterns are defined for direct-mapped caches")
    if not 0 <= set_index < geometry.num_sets:
        raise ValueError("set_index out of range")
    base = set_index * geometry.line_size
    return [base + i * geometry.size for i in range(count)]


def _instruction_trace(addrs: List[int], name: str) -> Trace:
    return Trace(addrs, [int(RefKind.IFETCH)] * len(addrs), name=name)


def between_loops(geometry: CacheGeometry, inner: int = 10, outer: int = 10) -> Trace:
    """Two sibling loops whose bodies conflict: ``(a^inner b^inner)^outer``."""
    a, b = conflicting_addresses(geometry, 2)
    addrs: List[int] = []
    for _ in range(outer):
        addrs.extend([a] * inner)
        addrs.extend([b] * inner)
    return _instruction_trace(addrs, "between-loops")


def loop_level(geometry: CacheGeometry, inner: int = 10, outer: int = 10) -> Trace:
    """An inner-loop instruction vs one outside it: ``(a^inner b)^outer``."""
    a, b = conflicting_addresses(geometry, 2)
    addrs: List[int] = []
    for _ in range(outer):
        addrs.extend([a] * inner)
        addrs.append(b)
    return _instruction_trace(addrs, "loop-level")


def within_loop(geometry: CacheGeometry, trips: int = 10) -> Trace:
    """Two instructions inside one loop: ``(a b)^trips``."""
    a, b = conflicting_addresses(geometry, 2)
    addrs: List[int] = []
    for _ in range(trips):
        addrs.append(a)
        addrs.append(b)
    return _instruction_trace(addrs, "within-loop")


def three_way(geometry: CacheGeometry, trips: int = 10) -> Trace:
    """Three instructions in one loop: ``(a b c)^trips`` (Section 5's
    pattern that defeats the single-sticky-bit FSM)."""
    a, b, c = conflicting_addresses(geometry, 3)
    addrs: List[int] = []
    for _ in range(trips):
        addrs.extend([a, b, c])
    return _instruction_trace(addrs, "three-way")


# -- the paper's analytic miss counts ----------------------------------------


def between_loops_misses_dm(inner: int = 10, outer: int = 10) -> int:
    """Conventional DM: one miss per loop phase — ``(a_m a_h^9 b_m b_h^9)^10``."""
    return 2 * outer


def between_loops_misses_optimal(inner: int = 10, outer: int = 10) -> int:
    """Optimal DM is identical here (the paper's 10%)."""
    return 2 * outer


def loop_level_misses_dm(inner: int = 10, outer: int = 10) -> int:
    """Conventional DM: ``(a_m a_h^{inner-1} b_m)^outer`` — each b knocks
    a out, so a misses once per outer trip too (the paper's 18%)."""
    return 2 * outer


def loop_level_misses_optimal(inner: int = 10, outer: int = 10) -> int:
    """Optimal DM: ``a_m a_h^{inner-1} b_m (a_h^{inner} b_m)^{outer-1}``
    — a misses once ever (the paper's 10%)."""
    return outer + 1


def within_loop_misses_dm(trips: int = 10) -> int:
    """Conventional DM: everything misses (the paper's 100%)."""
    return 2 * trips


def within_loop_misses_optimal(trips: int = 10) -> int:
    """Optimal DM: ``a_m b_m (a_h b_m)^{trips-1}`` (the paper's 55%)."""
    return trips + 1


def three_way_misses_dm(trips: int = 10) -> int:
    """Both conventional DM and single-sticky DE miss on all references."""
    return 3 * trips


def three_way_misses_optimal(trips: int = 10) -> int:
    """Optimal DM locks one instruction in: ``a_m b_m c_m (a_h b_m c_m)^{trips-1}``."""
    return 2 * trips + 1
