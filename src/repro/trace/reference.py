"""Memory-reference primitives shared by every simulator in the package.

A trace is a sequence of :class:`Reference` objects: an address plus a
:class:`RefKind` saying whether the reference is an instruction fetch, a
data load, or a data store.  Addresses are plain byte addresses stored as
Python integers (numpy ``uint64`` inside :class:`~repro.trace.trace.Trace`).
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class RefKind(enum.IntEnum):
    """Kind of a memory reference.

    The integer values are stable and are what
    :class:`~repro.trace.trace.Trace` stores in its ``kinds`` array, so
    they must never be renumbered.
    """

    IFETCH = 0
    LOAD = 1
    STORE = 2

    @property
    def is_instruction(self) -> bool:
        """True for instruction fetches."""
        return self is RefKind.IFETCH

    @property
    def is_data(self) -> bool:
        """True for loads and stores."""
        return self is not RefKind.IFETCH

    @property
    def is_write(self) -> bool:
        """True for stores."""
        return self is RefKind.STORE


class Reference(NamedTuple):
    """A single memory reference: a byte address and its kind."""

    addr: int
    kind: RefKind

    def line(self, line_size: int) -> int:
        """Return the line-aligned address for the given line size.

        ``line_size`` must be a power of two.
        """
        return self.addr & ~(line_size - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reference(0x{self.addr:x}, {self.kind.name})"


#: Default instruction width, in bytes, used by the synthetic workload
#: generators.  The paper's traces come from a MIPS-like DECstation, so
#: every instruction is four bytes.
INSTRUCTION_SIZE = 4
