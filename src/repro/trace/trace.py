"""The :class:`Trace` container: a compact, immutable address trace.

Traces are stored as parallel numpy arrays (``uint64`` addresses and
``uint8`` kinds).  They behave like read-only sequences of
:class:`~repro.trace.reference.Reference` and support slicing,
concatenation, and cheap per-kind selection.

Use :class:`TraceBuilder` to construct a trace incrementally; it buffers
into Python lists and freezes into numpy arrays at the end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from .reference import Reference, RefKind


class Trace:
    """An immutable sequence of memory references.

    Parameters
    ----------
    addrs:
        Byte addresses, any integer sequence; stored as ``uint64``.
    kinds:
        :class:`RefKind` values (or raw ints), same length as ``addrs``.
    name:
        Optional label used in reports ("gcc", "loop-conflict", ...).
    """

    __slots__ = ("_addrs", "_kinds", "name", "_hash", "_lines_cache")

    def __init__(
        self,
        addrs: Union[Sequence[int], np.ndarray],
        kinds: Union[Sequence[int], np.ndarray],
        name: str = "",
    ) -> None:
        addr_array = np.asarray(addrs, dtype=np.uint64)
        kind_array = np.asarray(kinds, dtype=np.uint8)
        if addr_array.shape != kind_array.shape:
            raise ValueError(
                f"addrs and kinds must have the same length, got "
                f"{addr_array.shape[0]} and {kind_array.shape[0]}"
            )
        if addr_array.ndim != 1:
            raise ValueError("a trace is one-dimensional")
        invalid = kind_array > max(RefKind)
        if invalid.any():
            bad = int(kind_array[invalid][0])
            raise ValueError(f"invalid reference kind {bad}")
        addr_array.setflags(write=False)
        kind_array.setflags(write=False)
        self._addrs = addr_array
        self._kinds = kind_array
        self.name = name
        self._hash: "int | None" = None
        self._lines_cache: "dict[int, np.ndarray]" = {}

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_references(cls, refs: Iterable[Reference], name: str = "") -> "Trace":
        """Build a trace from an iterable of :class:`Reference`."""
        addrs: List[int] = []
        kinds: List[int] = []
        for ref in refs:
            addrs.append(ref.addr)
            kinds.append(int(ref.kind))
        return cls(addrs, kinds, name=name)

    @classmethod
    def empty(cls, name: str = "") -> "Trace":
        """An empty trace."""
        return cls([], [], name=name)

    # -- array views -----------------------------------------------------

    @property
    def addrs(self) -> np.ndarray:
        """Read-only ``uint64`` address array."""
        return self._addrs

    @property
    def kinds(self) -> np.ndarray:
        """Read-only ``uint8`` kind array."""
        return self._kinds

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self._addrs.shape[0])

    def __iter__(self) -> Iterator[Reference]:
        for addr, kind in zip(self._addrs.tolist(), self._kinds.tolist()):
            yield Reference(addr, RefKind(kind))

    def __getitem__(self, index: Union[int, slice]) -> Union[Reference, "Trace"]:
        if isinstance(index, slice):
            return Trace(self._addrs[index], self._kinds[index], name=self.name)
        i = int(index)
        return Reference(int(self._addrs[i]), RefKind(int(self._kinds[i])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return bool(
            np.array_equal(self._addrs, other._addrs)
            and np.array_equal(self._kinds, other._kinds)
        )

    def __hash__(self) -> int:
        # Hashing serialises both arrays, which is expensive for long
        # traces; traces are immutable, so compute it once and keep it.
        if self._hash is None:
            self._hash = hash((self._addrs.tobytes(), self._kinds.tobytes()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"<Trace len={len(self)}{label}>"

    # -- convenience -------------------------------------------------------

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(addr, kind)`` as plain ints.

        This is the hot path used by the simulators; it avoids building a
        :class:`Reference` per element.
        """
        return zip(self._addrs.tolist(), self._kinds.tolist())

    def lines(self, offset_bits: int) -> np.ndarray:
        """Read-only ``uint64`` line-address array (``addrs >> offset_bits``).

        Memoised per ``offset_bits``: every geometry sharing a line size
        (the whole of a Figure-4-style size sweep) reuses one array, so
        the shift is paid once per (trace, line size) rather than once
        per simulation.
        """
        if offset_bits < 0:
            raise ValueError("offset_bits must be non-negative")
        lines = self._lines_cache.get(offset_bits)
        if lines is None:
            lines = self._addrs >> np.uint64(offset_bits)
            lines.setflags(write=False)
            self._lines_cache[offset_bits] = lines
        return lines

    def counts_by_kind(self) -> "dict[RefKind, int]":
        """Number of references of each kind."""
        counts = np.bincount(self._kinds, minlength=max(RefKind) + 1)
        return {kind: int(counts[kind]) for kind in RefKind}

    def footprint(self) -> int:
        """Number of distinct byte addresses touched."""
        return int(np.unique(self._addrs).shape[0])

    def line_footprint(self, line_size: int) -> int:
        """Number of distinct cache lines touched for ``line_size`` bytes."""
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        return int(np.unique(self.lines(line_size.bit_length() - 1)).shape[0])

    def with_name(self, name: str) -> "Trace":
        """Return a copy of this trace with a different label."""
        return Trace(self._addrs, self._kinds, name=name)


class TraceBuilder:
    """Incremental builder for :class:`Trace`.

    >>> builder = TraceBuilder()
    >>> builder.ifetch(0x1000)
    >>> builder.load(0x2000)
    >>> trace = builder.build("example")
    """

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._kinds: List[int] = []

    def __len__(self) -> int:
        return len(self._addrs)

    def append(self, addr: int, kind: RefKind) -> None:
        """Append one reference."""
        self._addrs.append(addr)
        self._kinds.append(int(kind))

    def ifetch(self, addr: int) -> None:
        """Append an instruction fetch."""
        self._addrs.append(addr)
        self._kinds.append(int(RefKind.IFETCH))

    def load(self, addr: int) -> None:
        """Append a data load."""
        self._addrs.append(addr)
        self._kinds.append(int(RefKind.LOAD))

    def store(self, addr: int) -> None:
        """Append a data store."""
        self._addrs.append(addr)
        self._kinds.append(int(RefKind.STORE))

    def extend(self, refs: Iterable[Reference]) -> None:
        """Append every reference from an iterable."""
        for ref in refs:
            self.append(ref.addr, ref.kind)

    def build(self, name: str = "") -> Trace:
        """Freeze the buffered references into an immutable :class:`Trace`."""
        return Trace(self._addrs, self._kinds, name=name)
