"""Reading and writing traces in the classic ``din`` text format.

The ``din`` format (used by the dinero simulators that are contemporaries
of the paper) is one reference per line::

    <label> <hex address>

with labels ``0`` = data read, ``1`` = data write, ``2`` = instruction
fetch.  Blank lines and ``#`` comments are ignored on input.  Paths
ending in ``.gz`` are transparently (de)compressed — long traces are
very repetitive text and compress ~20x.
"""

from __future__ import annotations

import gzip
import io as _io
import re
import zlib
from pathlib import Path
from typing import IO, Union

from .reference import RefKind
from .trace import Trace, TraceBuilder

#: din label -> RefKind
_DIN_TO_KIND = {
    0: RefKind.LOAD,
    1: RefKind.STORE,
    2: RefKind.IFETCH,
}

#: RefKind -> din label
_KIND_TO_DIN = {kind: label for label, kind in _DIN_TO_KIND.items()}

#: Strict din token grammars.  ``int(...)`` alone is too permissive: it
#: accepts ``0x``/sign prefixes, surrounding whitespace, and ``_``
#: digit separators, none of which the din format allows.
_LABEL_RE = re.compile(r"[0-9]+\Z")
_ADDR_RE = re.compile(r"[0-9a-fA-F]+\Z")

PathOrFile = Union[str, Path, IO[str]]


def _open_for_read(source: PathOrFile) -> "tuple[IO[str], bool]":
    if isinstance(source, (str, Path)):
        if str(source).endswith(".gz"):
            return gzip.open(source, "rt", encoding="ascii"), True
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_write(target: PathOrFile) -> "tuple[IO[str], bool]":
    if isinstance(target, (str, Path)):
        if str(target).endswith(".gz"):
            return gzip.open(target, "wt", encoding="ascii"), True
        return open(target, "w", encoding="ascii"), True
    return target, False


def save_din(trace: Trace, target: PathOrFile) -> None:
    """Write ``trace`` to ``target`` (path or text file object) as din."""
    handle, owned = _open_for_write(target)
    try:
        write = handle.write
        for addr, kind in trace.pairs():
            write(f"{_KIND_TO_DIN[RefKind(kind)]} {addr:x}\n")
    finally:
        if owned:
            handle.close()


def load_din(source: PathOrFile, name: str = "") -> Trace:
    """Read a din-format trace from ``source`` (path or text file object).

    Raises :class:`ValueError` on malformed lines (including
    ``0x``-prefixed, sign-prefixed, or ``_``-separated tokens, which
    the din format does not allow), unknown labels, and corrupt gzip
    input.
    """
    handle, owned = _open_for_read(source)
    builder = TraceBuilder()
    try:
        try:
            for lineno, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split()
                if len(parts) != 2:
                    raise ValueError(
                        f"line {lineno}: expected '<label> <hexaddr>', got {stripped!r}"
                    )
                if not _LABEL_RE.match(parts[0]):
                    raise ValueError(
                        f"line {lineno}: malformed din label {parts[0]!r} "
                        f"(expected a bare decimal integer)"
                    )
                if not _ADDR_RE.match(parts[1]):
                    raise ValueError(
                        f"line {lineno}: malformed address {parts[1]!r} "
                        f"(expected bare hex digits, no 0x prefix or sign)"
                    )
                label = int(parts[0])
                if label not in _DIN_TO_KIND:
                    raise ValueError(f"line {lineno}: unknown din label {label}")
                builder.append(int(parts[1], 16), _DIN_TO_KIND[label])
        except (gzip.BadGzipFile, EOFError, zlib.error) as exc:
            # BadGzipFile covers a wrong magic number, but a *truncated*
            # stream (the common half-written crash artifact) surfaces
            # as EOFError and corrupt deflate data as zlib.error; all
            # three are "corrupt gzip input" to the documented contract.
            raise ValueError(f"{source}: corrupt gzip trace ({exc})") from exc
    finally:
        if owned:
            handle.close()
    return builder.build(name=name)


def dumps_din(trace: Trace) -> str:
    """Return the din text for ``trace`` as a string."""
    buffer = _io.StringIO()
    save_din(trace, buffer)
    return buffer.getvalue()


def loads_din(text: str, name: str = "") -> Trace:
    """Parse din text into a :class:`Trace`."""
    return load_din(_io.StringIO(text), name=name)
