"""Address-trace substrate: containers, I/O, transforms, statistics."""

from .reference import INSTRUCTION_SIZE, Reference, RefKind
from .trace import Trace, TraceBuilder
from .io import dumps_din, load_din, loads_din, save_din
from .transforms import (
    collapse_sequential_lines,
    concatenate,
    filter_kinds,
    interleave,
    line_addresses,
    only_data,
    only_instructions,
    rebase,
    timeshare,
    truncate,
)
from .stats import (
    TraceSummary,
    lru_miss_rate_from_distances,
    reuse_distance_histogram,
    reuse_distances,
    summarize,
    working_set_sizes,
)

__all__ = [
    "INSTRUCTION_SIZE",
    "Reference",
    "RefKind",
    "Trace",
    "TraceBuilder",
    "TraceSummary",
    "collapse_sequential_lines",
    "concatenate",
    "dumps_din",
    "filter_kinds",
    "interleave",
    "line_addresses",
    "load_din",
    "loads_din",
    "lru_miss_rate_from_distances",
    "only_data",
    "only_instructions",
    "rebase",
    "reuse_distance_histogram",
    "reuse_distances",
    "save_din",
    "summarize",
    "timeshare",
    "truncate",
    "working_set_sizes",
]
