"""Pure functions that derive new traces from existing ones.

All transforms return new :class:`~repro.trace.trace.Trace` objects; the
inputs are never mutated (traces are immutable anyway).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .reference import RefKind
from .trace import Trace


def filter_kinds(trace: Trace, kinds: Iterable[RefKind]) -> Trace:
    """Keep only references whose kind is in ``kinds``."""
    wanted = np.zeros(max(RefKind) + 1, dtype=bool)
    for kind in kinds:
        wanted[int(kind)] = True
    mask = wanted[trace.kinds]
    return Trace(trace.addrs[mask], trace.kinds[mask], name=trace.name)


def only_instructions(trace: Trace) -> Trace:
    """The instruction-fetch sub-trace."""
    return filter_kinds(trace, [RefKind.IFETCH])


def only_data(trace: Trace) -> Trace:
    """The load/store sub-trace."""
    return filter_kinds(trace, [RefKind.LOAD, RefKind.STORE])


def truncate(trace: Trace, max_refs: int) -> Trace:
    """The first ``max_refs`` references (the paper uses the first 10 M)."""
    if max_refs < 0:
        raise ValueError("max_refs must be non-negative")
    return trace[:max_refs]


def concatenate(traces: Sequence[Trace], name: str = "") -> Trace:
    """Join traces end to end."""
    if not traces:
        return Trace.empty(name=name)
    addrs = np.concatenate([t.addrs for t in traces])
    kinds = np.concatenate([t.kinds for t in traces])
    return Trace(addrs, kinds, name=name or traces[0].name)


def rebase(trace: Trace, offset: int) -> Trace:
    """Shift every address by ``offset`` bytes (may be negative).

    Raises :class:`ValueError` if any address would become negative.
    """
    addrs = trace.addrs.astype(np.int64) + offset
    if (addrs < 0).any():
        raise ValueError("rebase would produce a negative address")
    return Trace(addrs.astype(np.uint64), trace.kinds, name=trace.name)


def line_addresses(trace: Trace, line_size: int) -> np.ndarray:
    """Per-reference line addresses (``addr // line_size``) as ``uint64``.

    ``line_size`` must be a power of two.
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError("line_size must be a positive power of two")
    shift = np.uint64(line_size.bit_length() - 1)
    return trace.addrs >> shift


def collapse_sequential_lines(trace: Trace, line_size: int) -> Trace:
    """Merge runs of references to the same line into one reference.

    This models the paper's Section 6 observation that sequential
    references within one cache line should be treated as a single
    line-reference event.  Kinds are taken from the first reference of
    each run.
    """
    if len(trace) == 0:
        return trace
    lines = line_addresses(trace, line_size)
    boundary = np.empty(len(trace), dtype=bool)
    boundary[0] = True
    boundary[1:] = lines[1:] != lines[:-1]
    shift = np.uint64(line_size.bit_length() - 1)
    addrs = (lines[boundary] << shift).astype(np.uint64)
    return Trace(addrs, trace.kinds[boundary], name=trace.name)


def timeshare(traces: Sequence[Trace], quantum: int, name: str = "") -> Trace:
    """Interleave traces in ``quantum``-reference time slices.

    Models multiprogramming: the processor runs each program for a
    quantum, then switches.  Exhausted traces drop out; the result ends
    when every input is consumed.  Used by the context-switch study to
    measure how cache state (including dynamic-exclusion state) survives
    sharing.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    positions = [0] * len(traces)
    addrs = []
    kinds = []
    remaining = sum(len(t) for t in traces)
    while remaining > 0:
        for i, trace in enumerate(traces):
            start = positions[i]
            if start >= len(trace):
                continue
            end = min(start + quantum, len(trace))
            addrs.extend(trace.addrs[start:end].tolist())
            kinds.extend(trace.kinds[start:end].tolist())
            remaining -= end - start
            positions[i] = end
    return Trace(addrs, kinds, name=name)


def interleave(traces: Sequence[Trace], name: str = "") -> Trace:
    """Round-robin interleave several traces (models timesharing)."""
    iterators = [iter(t.pairs()) for t in traces]
    addrs = []
    kinds = []
    live = list(iterators)
    while live:
        still_live = []
        for it in live:
            try:
                addr, kind = next(it)
            except StopIteration:
                continue
            addrs.append(addr)
            kinds.append(kind)
            still_live.append(it)
        live = still_live
    return Trace(addrs, kinds, name=name)
