"""Trace-level statistics: footprints, working sets, reuse distances.

These are used to characterise the synthetic workloads (so we can check
they resemble the paper's description of each SPEC benchmark) and in
tests as independent cross-checks on the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .reference import RefKind
from .trace import Trace
from .transforms import line_addresses


@dataclass(frozen=True)
class TraceSummary:
    """Headline numbers for a trace."""

    name: str
    length: int
    instruction_refs: int
    load_refs: int
    store_refs: int
    footprint_bytes: int
    instruction_footprint_bytes: int
    data_footprint_bytes: int

    @property
    def data_refs(self) -> int:
        return self.load_refs + self.store_refs


def summarize(trace: Trace, granule: int = 4) -> TraceSummary:
    """Compute a :class:`TraceSummary`.

    ``granule`` is the number of bytes each distinct address is assumed
    to cover when converting a count of unique addresses to a footprint
    in bytes (4 for word-granular traces).
    """
    counts = trace.counts_by_kind()
    is_ifetch = trace.kinds == int(RefKind.IFETCH)
    unique_total = int(np.unique(trace.addrs).shape[0])
    unique_instr = int(np.unique(trace.addrs[is_ifetch]).shape[0])
    unique_data = int(np.unique(trace.addrs[~is_ifetch]).shape[0])
    return TraceSummary(
        name=trace.name,
        length=len(trace),
        instruction_refs=counts[RefKind.IFETCH],
        load_refs=counts[RefKind.LOAD],
        store_refs=counts[RefKind.STORE],
        footprint_bytes=unique_total * granule,
        instruction_footprint_bytes=unique_instr * granule,
        data_footprint_bytes=unique_data * granule,
    )


def working_set_sizes(trace: Trace, window: int, line_size: int = 4) -> List[int]:
    """Denning working-set sizes: distinct lines per non-overlapping window."""
    if window <= 0:
        raise ValueError("window must be positive")
    lines = line_addresses(trace, line_size)
    sizes = []
    for start in range(0, len(trace), window):
        chunk = lines[start : start + window]
        sizes.append(int(np.unique(chunk).shape[0]))
    return sizes


class _FenwickTree:
    """Binary indexed tree over reference positions, used for counting
    distinct lines between successive uses (LRU stack distance)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of elements 0..index inclusive."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


def reuse_distances(trace: Trace, line_size: int = 4) -> np.ndarray:
    """Per-reference LRU stack distances at line granularity.

    Distance is the number of *distinct* lines referenced since the
    previous use of the same line; first-use references get distance -1.
    Runs in O(n log n) via a Fenwick tree.
    """
    lines = line_addresses(trace, line_size).tolist()
    n = len(lines)
    distances = np.empty(n, dtype=np.int64)
    tree = _FenwickTree(n)
    last_pos: Dict[int, int] = {}
    for i, line in enumerate(lines):
        prev = last_pos.get(line)
        if prev is None:
            distances[i] = -1
        else:
            # distinct lines whose most recent use is strictly between
            # prev and i
            distances[i] = tree.prefix_sum(i - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[line] = i
    return distances


def reuse_distance_histogram(
    trace: Trace, line_size: int = 4, max_distance: Optional[int] = None
) -> Dict[int, int]:
    """Histogram of reuse distances (cold misses keyed as -1).

    Distances above ``max_distance`` (if given) are clamped into the
    ``max_distance`` bucket.
    """
    distances = reuse_distances(trace, line_size)
    if max_distance is not None:
        distances = np.where(
            (distances >= 0) & (distances > max_distance), max_distance, distances
        )
    values, counts = np.unique(distances, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def lru_miss_rate_from_distances(
    trace: Trace, capacity_lines: int, line_size: int = 4
) -> float:
    """Miss rate of a fully-associative LRU cache, computed analytically
    from reuse distances (a cross-check for the cache simulators)."""
    if len(trace) == 0:
        return 0.0
    distances = reuse_distances(trace, line_size)
    misses = int(((distances < 0) | (distances >= capacity_lines)).sum())
    return misses / len(trace)
