"""One home for the environment knobs every entry point parses.

Both CLIs, the experiments trace cache, and the parallel sweep runner
read the same two environment variables; before this module each of
them carried its own copy of the parsing and error wording.  The rules:

* ``REPRO_TRACE_SCALE`` — positive float multiplier on every
  experiment's per-trace reference budget (default 1.0; the base budget
  is :data:`BASE_MAX_REFS` references, see DESIGN.md §2);
* ``REPRO_WORKERS`` — default process-pool size for sweeps (integer
  >= 1; unset means sequential unless ``--workers`` says otherwise);
* ``REPRO_LOG_LEVEL`` — stderr chatter verbosity for both CLIs
  (``debug``/``info``/``warning``/``error``/``quiet``, default
  ``info``; see :mod:`repro.obs.logs`);
* ``REPRO_PROFILE`` — when truthy (``1``/``true``/``yes``/``on``),
  experiment runs wrap kernel dispatch in profiling sections and write
  a per-phase breakdown (see :mod:`repro.obs.profiling`);
* ``REPRO_BATCH_CELLS`` — maximum cells the batched engine groups into
  one vectorized kernel invocation (integer >= 1; unset uses the
  scheduler default, see :mod:`repro.perf.parallel`);
* ``REPRO_BACKEND`` — default sweep execution backend (any registered
  backend name; ``inline``/``local-pool``/``fleet`` are built in, and
  unset means the runner picks automatically, see
  :mod:`repro.perf.backends`);
* ``REPRO_FLEET_HOSTS`` — comma-separated fleet worker endpoints for
  the ``fleet`` backend (``local``, an SSH host, or a full worker
  command template; unset means ``--workers`` local subprocesses);
* ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` — bind address for the
  ``repro serve`` result-store daemon (default ``127.0.0.1:8377``;
  port 0 asks the OS for an ephemeral port);
* ``REPRO_SERVE_STORE`` — default store directory for ``repro serve``
  (unset means the CLI's ``--store`` flag is required);
* ``REPRO_SERVE_NEG_TTL`` — seconds a cached cell *failure* keeps
  answering repeat ``POST /run`` requests before the daemon retries the
  simulation (non-negative float, default 300; ``0`` disables the
  negative-result cache entirely);
* ``REPRO_SERVE_URL`` — default base URL for ``repro query`` and the
  serve client (default ``http://<host>:<port>`` from the two knobs
  above).

:func:`validate` is the eager startup check both CLIs run so a typo'd
variable fails before any trace is generated, with one shared error
message per variable.
"""

from __future__ import annotations

import os
from typing import Optional

#: Base number of references per benchmark trace.  The paper uses the
#: first 10 M references; 200 k keeps the full suite laptop-fast while
#: preserving the miss-rate shapes (see DESIGN.md §2).
BASE_MAX_REFS = 200_000


def trace_scale() -> float:
    """The REPRO_TRACE_SCALE multiplier (default 1.0)."""
    raw = os.environ.get("REPRO_TRACE_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_TRACE_SCALE must be a number, got {raw!r}") from None
    if scale <= 0:
        raise ValueError("REPRO_TRACE_SCALE must be positive")
    return scale


def max_refs() -> int:
    """The per-trace reference budget after scaling (never below 1).

    A tiny ``REPRO_TRACE_SCALE`` (anything below 1/BASE_MAX_REFS) used
    to truncate the budget to 0, and every downstream sweep then failed
    with a confusing empty-trace error; the floor keeps even absurd
    scales runnable.
    """
    return max(1, int(BASE_MAX_REFS * trace_scale()))


def env_workers() -> Optional[int]:
    """The validated REPRO_WORKERS setting (None when unset)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    if workers < 1:
        raise ValueError("REPRO_WORKERS must be at least 1")
    return workers


def env_batch_cells() -> Optional[int]:
    """The validated REPRO_BATCH_CELLS setting (None when unset)."""
    raw = os.environ.get("REPRO_BATCH_CELLS")
    if raw is None:
        return None
    try:
        cells = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_BATCH_CELLS must be an integer, got {raw!r}") from None
    if cells < 1:
        raise ValueError("REPRO_BATCH_CELLS must be at least 1")
    return cells


def env_backend() -> Optional[str]:
    """The validated REPRO_BACKEND setting (None when unset or blank).

    Checked against the live ``repro.perf.backends`` registry rather
    than a hard-coded list, so a backend added at runtime via
    ``register_backend()`` is accepted here exactly as it is by the
    explicit argument and ``--backend`` paths.  The import is deferred
    to the call so this module stays an import leaf.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None:
        return None
    raw = raw.strip().lower()
    if not raw:
        return None
    from .perf.backends import backend_names

    names = backend_names()
    if raw not in names:
        options = ", ".join(names)
        raise ValueError(f"REPRO_BACKEND must be one of {options}, got {raw!r}")
    return raw


def env_fleet_hosts() -> "list[str]":
    """The parsed REPRO_FLEET_HOSTS endpoint list (empty when unset).

    Comma-separated; each entry is ``local`` (a subprocess of this
    machine), a bare SSH destination (``user@host``), or — when it
    contains whitespace — a full worker command template.  Blank
    entries are rejected rather than skipped: a trailing comma almost
    always means a host was lost to a shell quoting mistake.
    """
    raw = os.environ.get("REPRO_FLEET_HOSTS")
    if raw is None or not raw.strip():
        return []
    hosts = [entry.strip() for entry in raw.split(",")]
    if any(not entry for entry in hosts):
        raise ValueError(
            f"REPRO_FLEET_HOSTS must be a comma-separated list of non-empty "
            f"endpoints, got {raw!r}"
        )
    return hosts


# -- result-store daemon (repro serve / repro query) ---------------------------

#: Default bind address for the serve daemon.
DEFAULT_SERVE_HOST = "127.0.0.1"
#: Default TCP port for the serve daemon (0 = OS-assigned ephemeral).
DEFAULT_SERVE_PORT = 8377


def serve_host() -> str:
    """The REPRO_SERVE_HOST bind address (default ``127.0.0.1``)."""
    raw = os.environ.get("REPRO_SERVE_HOST", DEFAULT_SERVE_HOST).strip()
    if not raw:
        raise ValueError("REPRO_SERVE_HOST must be a non-empty host name")
    return raw


def serve_port() -> int:
    """The validated REPRO_SERVE_PORT setting (default 8377; 0 = ephemeral)."""
    raw = os.environ.get("REPRO_SERVE_PORT")
    if raw is None:
        return DEFAULT_SERVE_PORT
    try:
        port = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_SERVE_PORT must be an integer, got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"REPRO_SERVE_PORT must be in 0..65535, got {port}")
    return port


def serve_store() -> Optional[str]:
    """The REPRO_SERVE_STORE default store directory (None when unset)."""
    raw = os.environ.get("REPRO_SERVE_STORE")
    if raw is None:
        return None
    raw = raw.strip()
    if not raw:
        raise ValueError("REPRO_SERVE_STORE must be a non-empty directory path")
    return raw


#: Default TTL (seconds) for negative-cache entries served by the daemon.
DEFAULT_SERVE_NEG_TTL = 300.0


def serve_neg_ttl() -> float:
    """The validated REPRO_SERVE_NEG_TTL setting (default 300; 0 disables).

    Failures are transient more often than results are (a full ``/tmp``,
    an OOM-killed worker), so unlike positive entries they must expire:
    the TTL bounds how long a cached failure can mask a recovered cell.
    """
    raw = os.environ.get("REPRO_SERVE_NEG_TTL")
    if raw is None:
        return DEFAULT_SERVE_NEG_TTL
    try:
        ttl = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVE_NEG_TTL must be a number of seconds, got {raw!r}"
        ) from None
    if not ttl >= 0:  # also rejects NaN
        raise ValueError(
            "REPRO_SERVE_NEG_TTL must be >= 0 (0 disables the negative cache)"
        )
    return ttl


def serve_url() -> str:
    """The client-side base URL (REPRO_SERVE_URL, or built from host/port)."""
    raw = os.environ.get("REPRO_SERVE_URL")
    if raw is None:
        return f"http://{serve_host()}:{serve_port()}"
    raw = raw.strip().rstrip("/")
    if not raw.startswith(("http://", "https://")):
        raise ValueError(
            f"REPRO_SERVE_URL must start with http:// or https://, got {raw!r}"
        )
    return raw


#: Accepted ``REPRO_LOG_LEVEL`` values (mirrors repro.obs.logs.LOG_LEVELS;
#: duplicated here so env stays import-leaf).
LOG_LEVELS = ("debug", "info", "warning", "error", "quiet")

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off", "")


def log_level() -> str:
    """The validated REPRO_LOG_LEVEL setting (default ``info``)."""
    raw = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    if raw not in LOG_LEVELS:
        options = ", ".join(LOG_LEVELS)
        raise ValueError(
            f"REPRO_LOG_LEVEL must be one of {options}, got {raw!r}"
        )
    return raw


def profile_enabled() -> bool:
    """Whether REPRO_PROFILE asks for the opt-in profiling path."""
    raw = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if raw in _TRUTHY:
        return True
    if raw in _FALSY:
        return False
    raise ValueError(
        f"REPRO_PROFILE must be a boolean (1/true/yes/on or 0/false/no/off), "
        f"got {raw!r}"
    )


def validate() -> None:
    """Parse every repro environment variable, raising on the first bad one.

    Run this at CLI startup: a malformed ``REPRO_WORKERS`` used to
    surface only when the first sweep spun up its pool, minutes into a
    run, and a malformed ``REPRO_TRACE_SCALE`` when the first trace was
    generated.
    """
    env_workers()
    env_batch_cells()
    env_backend()
    env_fleet_hosts()
    trace_scale()
    log_level()
    profile_enabled()
    serve_host()
    serve_port()
    serve_store()
    serve_neg_ttl()
    serve_url()
