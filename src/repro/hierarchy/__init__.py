"""Two-level cache hierarchies (paper Section 5)."""

from .two_level import Strategy, TwoLevelCache, TwoLevelResult

__all__ = ["Strategy", "TwoLevelCache", "TwoLevelResult"]
