"""Two-level cache hierarchies with dynamic exclusion (paper Section 5).

The L1 is a direct-mapped cache — conventional or dynamic-exclusion —
and the L2 is a larger direct-mapped cache.  The interesting design
question is where the hit-last bits live and what to assume when a word
misses in L2:

* ``assume-hit``  — bits travel with L2 lines; an L2 miss is treated as
  ``h = 1``.  The hierarchy stays *inclusive*.
* ``assume-miss`` — as above but an L2 miss is treated as ``h = 0``.
  Lines stored in L1 are **not** stored in L2 (exclusive content); L2 is
  filled by L1 victims and by bypassed words.
* ``hashed``      — bits live in a small untagged table inside L1
  (``hashed_bits_per_line`` per L1 line); content is exclusive like
  assume-miss.
* ``ideal``       — the unbounded per-word table of Figures 3-5
  (inclusive), for reference.
* ``direct-mapped`` — the conventional baseline: no exclusion at all.

These reproduce Figures 7, 8, and 9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.stats import CacheStats
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import (
    HashedHitLastStore,
    HitLastStore,
    IdealHitLastStore,
    L2BackedHitLastStore,
)
from ..trace.reference import RefKind
from ..trace.trace import Trace


class Strategy(str, enum.Enum):
    """L1 policy plus hit-last storage choice."""

    DIRECT_MAPPED = "direct-mapped"
    IDEAL = "ideal"
    ASSUME_HIT = "assume-hit"
    ASSUME_MISS = "assume-miss"
    HASHED = "hashed"

    @property
    def uses_exclusion(self) -> bool:
        return self is not Strategy.DIRECT_MAPPED

    @property
    def exclusive_l2(self) -> bool:
        """Whether L1-stored lines stay out of L2."""
        return self in (Strategy.ASSUME_MISS, Strategy.HASHED)


@dataclass
class TwoLevelResult:
    """Per-level statistics from one hierarchy simulation."""

    strategy: Strategy
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses per L2 access."""
        return self.l2.miss_rate

    @property
    def l2_global_miss_rate(self) -> float:
        """L2 misses per CPU reference (what Figure 8 plots)."""
        if self.l1.accesses == 0:
            return 0.0
        return self.l2.misses / self.l1.accesses


class TwoLevelCache:
    """An L1 (+ optional dynamic exclusion) backed by a direct-mapped L2.

    Parameters
    ----------
    l1_geometry, l2_geometry:
        Both direct-mapped; ``l2.line_size >= l1.line_size`` and
        ``l2.size >= l1.size``.
    strategy:
        One of :class:`Strategy` (or its string value).
    hashed_bits_per_line:
        Size of the hashed hit-last table, in bits per L1 line.
    sticky_levels:
        Sticky depth for the exclusion FSM.
    """

    def __init__(
        self,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        strategy: "Strategy | str" = Strategy.ASSUME_HIT,
        hashed_bits_per_line: int = 4,
        sticky_levels: int = 1,
    ) -> None:
        strategy = Strategy(strategy)
        if l1_geometry.associativity != 1 or l2_geometry.associativity != 1:
            raise ValueError("both levels must be direct-mapped")
        if l2_geometry.line_size < l1_geometry.line_size:
            raise ValueError("L2 line size must be >= L1 line size")
        if l2_geometry.size < l1_geometry.size:
            raise ValueError("L2 must be at least as large as L1")
        self.strategy = strategy
        self.l1_geometry = l1_geometry
        self.l2_geometry = l2_geometry
        # How many bits separate an L1 line address from its L2 line.
        self._l2_shift = l2_geometry.offset_bits - l1_geometry.offset_bits

        self.l2 = DirectMappedCache(
            l2_geometry,
            allocate_on_miss=not strategy.exclusive_l2,
            name="L2",
        )
        self.store = self._build_store(hashed_bits_per_line)
        if strategy.uses_exclusion:
            self.l1: "DirectMappedCache | DynamicExclusionCache" = DynamicExclusionCache(
                l1_geometry,
                store=self.store,
                sticky_levels=sticky_levels,
                name="L1-DE",
            )
        else:
            self.l1 = DirectMappedCache(l1_geometry, name="L1-DM")

    def _build_store(self, hashed_bits_per_line: int) -> Optional[HitLastStore]:
        strategy = self.strategy
        if strategy is Strategy.DIRECT_MAPPED:
            return None
        if strategy is Strategy.IDEAL:
            return IdealHitLastStore()
        if strategy is Strategy.HASHED:
            return HashedHitLastStore(
                num_bits=self.l1_geometry.num_lines * hashed_bits_per_line
            )
        return L2BackedHitLastStore(
            resident=self._l2_resident,
            l2_line_of=self._l2_line_of,
            assume_hit=strategy is Strategy.ASSUME_HIT,
            record_when_absent=strategy.exclusive_l2,
        )

    # -- L2 bookkeeping ----------------------------------------------------

    def _l2_line_of(self, l1_line: int) -> int:
        return l1_line >> self._l2_shift

    def _l2_resident(self, l2_line: int) -> bool:
        return self.l2.contains_line(l2_line)

    def _drop_hitlast_for(self, l2_line: int) -> None:
        if not isinstance(self.store, L2BackedHitLastStore):
            return
        span = 1 << self._l2_shift
        base = l2_line << self._l2_shift
        self.store.invalidate(l2_line, words=set(range(base, base + span)))

    def _l2_install(self, l1_line: int) -> None:
        """Victim/bypass transfer of an L1 line into an exclusive L2."""
        displaced = self.l2.install_line(self._l2_line_of(l1_line))
        if displaced is not None:
            self._drop_hitlast_for(displaced)

    # -- simulation ----------------------------------------------------------

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> None:
        """Simulate one CPU reference through both levels."""
        l1_result = self.l1.access(addr, kind)
        if l1_result.hit:
            return
        l2_result = self.l2.access(addr, kind)
        if l2_result.evicted_line is not None:
            self._drop_hitlast_for(l2_result.evicted_line)
        if self.strategy.exclusive_l2:
            if l1_result.bypassed:
                # The word lives nowhere in L1; keep it in L2.
                self._l2_install(self.l1_geometry.line_address(addr))
            if l1_result.evicted_line is not None:
                self._l2_install(l1_result.evicted_line)

    def simulate(self, trace: Trace) -> TwoLevelResult:
        """Run a whole trace and return both levels' statistics."""
        access = self.access
        for addr, kind in trace.pairs():
            access(addr, kind)  # type: ignore[arg-type]
        return TwoLevelResult(strategy=self.strategy, l1=self.l1.stats, l2=self.l2.stats)
