"""Parameter-sweep helpers shared by the experiment modules.

A sweep runs one simulator factory over a grid of parameter values and a
set of traces, collecting miss rates into a
:class:`SweepResult` that the report/plot modules can render directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Union

from ..caches.base import Cache, OfflineCache
from ..trace.trace import Trace

#: A factory mapping one sweep parameter value to a fresh simulator.
CacheFactory = Callable[[object], Union[Cache, OfflineCache]]


@dataclass
class Series:
    """One labelled curve: parameter values to mean miss rates."""

    label: str
    points: "Dict[object, float]" = field(default_factory=dict)

    def values(self, params: Sequence[object]) -> List[float]:
        return [self.points[p] for p in params]


@dataclass
class SweepResult:
    """All curves from one sweep, plus the parameter axis."""

    parameter_name: str
    parameters: List[object]
    series: "Dict[str, Series]" = field(default_factory=dict)

    def add(self, label: str, parameter: object, value: float) -> None:
        self.series.setdefault(label, Series(label)).points[parameter] = value

    def curve(self, label: str) -> List[float]:
        return self.series[label].values(self.parameters)


def run_sweep(
    parameter_name: str,
    parameters: Sequence[object],
    factories: "Dict[str, CacheFactory]",
    traces: Sequence[Trace],
) -> SweepResult:
    """Simulate every (parameter, factory) pair over ``traces``.

    The recorded value is the *mean miss rate across traces* — the
    paper averages miss rates over the SPEC benchmarks, not over pooled
    references, and we follow it.
    """
    result = SweepResult(parameter_name=parameter_name, parameters=list(parameters))
    for parameter in parameters:
        for label, factory in factories.items():
            rates = []
            for trace in traces:
                simulator = factory(parameter)
                stats = simulator.simulate(trace)
                rates.append(stats.miss_rate)
            mean = sum(rates) / len(rates) if rates else 0.0
            result.add(label, parameter, mean)
    return result


def per_trace_rates(
    factory: Callable[[], Union[Cache, OfflineCache]],
    traces: Sequence[Trace],
) -> "Dict[str, float]":
    """Miss rate of one configuration on each trace, keyed by trace name."""
    rates: "Dict[str, float]" = {}
    for trace in traces:
        simulator = factory()
        stats = simulator.simulate(trace)
        rates[trace.name or f"trace{len(rates)}"] = stats.miss_rate
    return rates
