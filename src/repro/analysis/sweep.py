"""Parameter-sweep helpers shared by the experiment modules.

A sweep runs one simulator factory over a grid of parameter values and a
set of traces, collecting miss rates into a
:class:`SweepResult` that the report/plot modules can render directly.

Sweeps execute through :mod:`repro.perf`: the ``engine`` argument picks
the fast set-partitioned kernels, the batched tier (``"batch"`` — cells
sharing a trace run as one vectorized kernel invocation), or the
reference simulators (results are identical in all three), and
``workers`` fans the independent (parameter, policy, trace) cells out
to a process pool.  Traces may be
given as :class:`~repro.trace.trace.Trace` objects or as cheap
:class:`~repro.perf.parallel.TraceKey` recipes; parallel runs want keys
so workers regenerate traces locally instead of unpickling megabyte
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..caches.base import Cache, OfflineCache
from ..perf import parallel
from ..perf.engine import simulate as engine_simulate
from ..trace.trace import Trace

#: A factory mapping one sweep parameter value to a fresh simulator.
CacheFactory = Callable[[object], Union[Cache, OfflineCache]]


@dataclass
class Series:
    """One labelled curve: parameter values to mean miss rates."""

    label: str
    points: "Dict[object, float]" = field(default_factory=dict)

    def values(self, params: Sequence[object]) -> List[float]:
        return [self.points[p] for p in params]


@dataclass
class SweepResult:
    """All curves from one sweep, plus the parameter axis."""

    parameter_name: str
    parameters: List[object]
    series: "Dict[str, Series]" = field(default_factory=dict)

    def add(self, label: str, parameter: object, value: float) -> None:
        self.series.setdefault(label, Series(label)).points[parameter] = value

    def curve(self, label: str) -> List[float]:
        return self.series[label].values(self.parameters)


def run_sweep(
    parameter_name: str,
    parameters: Sequence[object],
    factories: "Dict[str, CacheFactory]",
    traces: Sequence[parallel.TraceLike],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    journal: "parallel.SweepJournal | str | None" = None,
    progress: Optional[bool] = None,
    timeout: Optional[float] = None,
    backend: Optional[str] = None,
) -> SweepResult:
    """Simulate every (parameter, factory) pair over ``traces``.

    The recorded value is the *mean miss rate across traces* — the
    paper averages miss rates over the SPEC benchmarks, not over pooled
    references, and we follow it.

    ``engine`` and ``workers`` default to the process-wide settings
    (see :mod:`repro.perf`); passing ``workers`` above 1 requires
    picklable factories and is cheapest with
    :class:`~repro.perf.parallel.TraceKey` traces.

    Cells run through the resilient envelope layer
    (:func:`repro.perf.parallel.run_labeled_cells`): worker crashes are
    retried with pool re-creation, ``journal`` (default: the CLI's
    ``--resume-dir``) resumes an interrupted sweep from its completed
    cells, and any cell that still fails raises
    :class:`~repro.perf.parallel.SweepCellError` naming each failed
    cell's (label, parameter, trace, engine) identity.

    Raises :class:`ValueError` when ``parameters`` or ``traces`` is
    empty: an empty sweep has no miss rates to average, and silently
    recording 0.0 would plant plausible-looking zeros in figures.
    """
    if not parameters:
        raise ValueError("run_sweep requires at least one parameter value")
    if not traces:
        raise ValueError(
            "run_sweep requires at least one trace; refusing to record "
            "a fake 0.0 mean miss rate for an empty trace set"
        )
    result = SweepResult(parameter_name=parameter_name, parameters=list(parameters))
    cells = [
        (label, factory, parameter, trace)
        for parameter in parameters
        for label, factory in factories.items()
        for trace in traces
    ]
    outcomes = parallel.run_labeled_cells(
        cells, engine=engine, workers=workers, timeout=timeout,
        journal=journal, progress=progress, backend=backend,
    )
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise parallel.SweepCellError(failures, len(outcomes))
    rates = [outcome.miss_rate for outcome in outcomes]
    per_trace = len(traces)
    position = 0
    for parameter in parameters:
        for label in factories:
            cell_rates = rates[position : position + per_trace]
            position += per_trace
            result.add(label, parameter, sum(cell_rates) / per_trace)
    return result


def per_trace_rates(
    factory: Callable[[], Union[Cache, OfflineCache]],
    traces: Sequence[parallel.TraceLike],
    engine: Optional[str] = None,
) -> "Dict[str, float]":
    """Miss rate of one configuration on each trace, keyed by trace name."""
    rates: "Dict[str, float]" = {}
    for trace_like in traces:
        trace = parallel.as_trace(trace_like)
        stats = engine_simulate(factory(), trace, engine=engine)
        rates[trace.name or f"trace{len(rates)}"] = stats.miss_rate
    return rates
