"""Plain-text tables for the experiment harness output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_percent(value: float, digits: int = 1) -> str:
    """``0.0234 -> '2.3%'`` (takes a fraction, prints a percentage)."""
    return f"{100.0 * value:.{digits}f}%"


def size_label(size_bytes: int) -> str:
    """``32768 -> '32KB'``; keeps sub-KB sizes in bytes."""
    if size_bytes >= 1024 and size_bytes % 1024 == 0:
        kb = size_bytes // 1024
        if kb >= 1024 and kb % 1024 == 0:
            return f"{kb // 1024}MB"
        return f"{kb}KB"
    return f"{size_bytes}B"


def format_sweep(
    result: "object",
    value_format: str = "{:.3%}",
    title: str = "",
    param_format: Optional[str] = None,
) -> str:
    """Render a :class:`~repro.analysis.sweep.SweepResult` as a table.

    One row per parameter value, one column per series.
    """
    labels = list(result.series)
    headers = [result.parameter_name] + labels
    rows: List[List[object]] = []
    for parameter in result.parameters:
        if param_format is not None:
            param_cell: object = param_format.format(parameter)
        elif isinstance(parameter, int):
            param_cell = size_label(parameter)
        else:
            param_cell = parameter
        row: List[object] = [param_cell]
        for label in labels:
            row.append(value_format.format(result.series[label].points[parameter]))
        rows.append(row)
    return format_table(headers, rows, title=title)
