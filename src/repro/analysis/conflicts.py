"""Conflict diagnostics: find the thrashing sets and ping-pong pairs.

Dynamic exclusion attacks two-way alternation; this module measures how
much of it a (trace, geometry) pair actually contains, and which
addresses are responsible.  It is the tool used to validate the
synthetic workloads against the paper's conflict taxonomy, and it is
useful on its own for anyone asking "*why* does my code miss in this
cache?".

For each set we track the sequence of lines that miss there and count
*ping-pongs*: a miss on line ``a`` that evicts ``b`` immediately after
a miss on ``b`` that evicted ``a``.  A high ping-pong fraction is
exactly the within-loop pattern where exclusion (or more
associativity) pays off.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..caches.geometry import CacheGeometry
from ..trace.trace import Trace


@dataclass(frozen=True)
class SetConflictReport:
    """Conflict activity of one cache set."""

    set_index: int
    misses: int
    ping_pongs: int
    #: Distinct lines that missed in this set.
    lines: Tuple[int, ...]
    #: The most active alternating pair, as (line_a, line_b, count).
    hottest_pair: Optional[Tuple[int, int, int]]

    @property
    def ping_pong_fraction(self) -> float:
        if self.misses == 0:
            return 0.0
        return self.ping_pongs / self.misses


@dataclass
class ConflictProfile:
    """Whole-cache conflict summary for one (trace, geometry) pair."""

    geometry: CacheGeometry
    accesses: int
    misses: int
    ping_pongs: int
    sets: List[SetConflictReport] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def ping_pong_fraction(self) -> float:
        """Fraction of all misses that are two-way alternation — an
        upper-bound estimate of what exclusion can halve."""
        return self.ping_pongs / self.misses if self.misses else 0.0

    def top_sets(self, count: int = 10) -> List[SetConflictReport]:
        """The ``count`` sets with the most ping-pong misses."""
        ranked = sorted(self.sets, key=lambda r: r.ping_pongs, reverse=True)
        return ranked[:count]


def profile_conflicts(trace: Trace, geometry: CacheGeometry) -> ConflictProfile:
    """Simulate a direct-mapped cache and profile its conflicts."""
    if geometry.associativity != 1:
        raise ValueError("conflict profiling is defined for direct-mapped caches")
    offset_bits = geometry.offset_bits
    mask = geometry.num_sets - 1

    resident: Dict[int, int] = {}
    # Per set: the previous (evicted, by) event, pair counters, line set.
    last_eviction: Dict[int, Tuple[int, int]] = {}
    pair_counts: Dict[int, Counter] = defaultdict(Counter)
    set_lines: Dict[int, set] = defaultdict(set)
    set_misses: Counter = Counter()
    set_ping_pongs: Counter = Counter()

    accesses = 0
    misses = 0
    for addr, _ in trace.pairs():
        accesses += 1
        line = addr >> offset_bits
        index = line & mask
        current = resident.get(index)
        if current == line:
            continue
        misses += 1
        set_misses[index] += 1
        set_lines[index].add(line)
        if current is not None:
            previous = last_eviction.get(index)
            if previous is not None and previous == (line, current):
                # current evicted line last time; now line evicts current.
                set_ping_pongs[index] += 1
                pair = (min(line, current), max(line, current))
                pair_counts[index][pair] += 1
            last_eviction[index] = (current, line)
        resident[index] = line

    reports: List[SetConflictReport] = []
    for index in sorted(set_misses):
        pairs = pair_counts.get(index)
        hottest: Optional[Tuple[int, int, int]] = None
        if pairs:
            (a, b), count = pairs.most_common(1)[0]
            hottest = (a, b, count)
        reports.append(
            SetConflictReport(
                set_index=index,
                misses=set_misses[index],
                ping_pongs=set_ping_pongs.get(index, 0),
                lines=tuple(sorted(set_lines[index])),
                hottest_pair=hottest,
            )
        )
    return ConflictProfile(
        geometry=geometry,
        accesses=accesses,
        misses=misses,
        ping_pongs=sum(set_ping_pongs.values()),
        sets=reports,
    )


def format_profile(profile: ConflictProfile, top: int = 8) -> str:
    """Human-readable conflict report."""
    from .report import format_table

    lines = [
        f"cache {profile.geometry}: miss rate {profile.miss_rate:.3%}, "
        f"ping-pong fraction {profile.ping_pong_fraction:.1%}",
    ]
    rows = []
    for report in profile.top_sets(top):
        if report.hottest_pair:
            a, b, count = report.hottest_pair
            pair_text = f"0x{a:x} <-> 0x{b:x} ({count}x)"
        else:
            pair_text = "-"
        rows.append(
            [
                report.set_index,
                report.misses,
                report.ping_pongs,
                len(report.lines),
                pair_text,
            ]
        )
    lines.append(
        format_table(
            ["set", "misses", "ping-pongs", "lines", "hottest pair (line addrs)"],
            rows,
            title=f"top {top} conflicting sets",
        )
    )
    return "\n".join(lines)
