"""ASCII line charts, so each experiment can render its paper figure
directly in a terminal (no plotting dependency is available offline)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_MARKERS = "*+xo#@%&"


def ascii_chart(
    series: "Dict[str, Sequence[float]]",
    x_labels: Sequence[str],
    title: str = "",
    height: int = 16,
    y_format: str = "{:.1f}",
    y_max: Optional[float] = None,
) -> str:
    """Render labelled curves as a character grid.

    ``series`` maps a curve label to y-values (all the same length as
    ``x_labels``).  Curves get distinct markers; a legend is appended.
    """
    if not series:
        return title
    n_points = len(x_labels)
    for label, values in series.items():
        if len(values) != n_points:
            raise ValueError(f"series {label!r} has {len(values)} points, expected {n_points}")
    all_values = [v for values in series.values() for v in values]
    top = y_max if y_max is not None else max(all_values or [1.0])
    if top <= 0:
        top = 1.0

    column_width = max(max((len(x) for x in x_labels), default=1) + 1, 6)
    grid = [[" "] * (n_points * column_width) for _ in range(height)]
    for series_index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for i, value in enumerate(values):
            scaled = min(value / top, 1.0)
            row = height - 1 - int(round(scaled * (height - 1)))
            col = i * column_width + column_width // 2
            if grid[row][col] != " ":
                # Overlapping points: show that two curves coincide.
                grid[row][col] = "="
            else:
                grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    axis_width = max(len(y_format.format(top)), len(y_format.format(0.0)))
    for row_index, row in enumerate(grid):
        fraction = (height - 1 - row_index) / (height - 1)
        y_label = y_format.format(fraction * top) if row_index % 4 == 0 else ""
        lines.append(f"{y_label.rjust(axis_width)} |{''.join(row)}")
    lines.append(f"{' ' * axis_width} +{'-' * (n_points * column_width)}")
    x_axis = "".join(x.center(column_width) for x in x_labels)
    lines.append(f"{' ' * axis_width}  {x_axis}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(f"{' ' * axis_width}  legend: {legend}   (= overlap)")
    return "\n".join(lines)


def sweep_chart(result: "object", title: str = "", height: int = 16,
                percent: bool = True) -> str:
    """Chart a :class:`~repro.analysis.sweep.SweepResult`."""
    from .report import size_label

    x_labels = []
    for p in result.parameters:
        x_labels.append(size_label(p) if isinstance(p, int) else str(p))
    series = {}
    for label in result.series:
        values = result.curve(label)
        series[label] = [100.0 * v for v in values] if percent else list(values)
    return ascii_chart(
        series,
        x_labels,
        title=title,
        height=height,
        y_format="{:.1f}" if percent else "{:.3f}",
    )
