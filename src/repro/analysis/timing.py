"""Average-memory-access-time (AMAT) modelling.

The paper's motivation (Section 1-2, citing Hill and Przybylski) is
that direct-mapped caches beat set-associative ones *overall* because
their hit time is lower even though their miss rate is higher.  Dynamic
exclusion attacks the miss rate without touching the hit path, so the
AMAT comparison is where its value shows.  This module provides the
standard model:

    AMAT = hit_time + miss_rate * miss_penalty

and a comparison helper used by the timing benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Typical early-90s parameters (CPU cycles), matching the era's
#: published design studies: a direct-mapped first-level cache hits in
#: one cycle; a set-associative one pays for the way mux; a miss costs
#: a couple of dozen cycles of DRAM access.
DEFAULT_HIT_TIME_DIRECT = 1.0
DEFAULT_HIT_TIME_SET_ASSOCIATIVE = 1.4
DEFAULT_MISS_PENALTY = 20.0

#: Extra hit latency charged to dynamic exclusion.  The FSM acts only
#: on misses (the sticky/hit-last update on a hit is off the critical
#: path), so the paper's design leaves the hit time untouched.
DEFAULT_HIT_TIME_EXCLUSION = DEFAULT_HIT_TIME_DIRECT


@dataclass(frozen=True)
class TimingModel:
    """Hit time and miss penalty, in CPU cycles."""

    hit_time: float
    miss_penalty: float

    def __post_init__(self) -> None:
        if self.hit_time <= 0:
            raise ValueError("hit_time must be positive")
        if self.miss_penalty < 0:
            raise ValueError("miss_penalty cannot be negative")

    def amat(self, miss_rate: float) -> float:
        """Average memory access time for a given miss rate."""
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss rate must be in [0, 1], got {miss_rate}")
        return self.hit_time + miss_rate * self.miss_penalty


#: The standard comparison triple used by the timing study.
DEFAULT_MODELS: Dict[str, TimingModel] = {
    "direct-mapped": TimingModel(DEFAULT_HIT_TIME_DIRECT, DEFAULT_MISS_PENALTY),
    "dynamic-exclusion": TimingModel(DEFAULT_HIT_TIME_EXCLUSION, DEFAULT_MISS_PENALTY),
    "2-way": TimingModel(DEFAULT_HIT_TIME_SET_ASSOCIATIVE, DEFAULT_MISS_PENALTY),
}


def amat_comparison(
    miss_rates: Dict[str, float],
    models: "Dict[str, TimingModel] | None" = None,
) -> Dict[str, float]:
    """AMAT per configuration.

    ``miss_rates`` maps configuration labels to simulated miss rates;
    each label must have a timing model (``models`` defaults to
    :data:`DEFAULT_MODELS`).
    """
    models = models if models is not None else DEFAULT_MODELS
    missing = sorted(set(miss_rates) - set(models))
    if missing:
        raise ValueError(f"no timing model for {missing}")
    return {label: models[label].amat(rate) for label, rate in miss_rates.items()}


def breakeven_hit_time(
    baseline: TimingModel,
    baseline_miss_rate: float,
    alternative_miss_rate: float,
    miss_penalty: "float | None" = None,
) -> float:
    """The hit time at which an alternative design's AMAT equals the
    baseline's — how much hit-path slack its lower miss rate buys.

    This is the paper's direct-mapped-vs-set-associative argument in
    one number: a 2-way cache only wins if its hit time stays below
    the value returned here.
    """
    penalty = miss_penalty if miss_penalty is not None else baseline.miss_penalty
    baseline_amat = baseline.amat(baseline_miss_rate)
    return baseline_amat - alternative_miss_rate * penalty
