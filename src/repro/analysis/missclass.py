"""Three-C miss classification (Hill): compulsory / capacity / conflict.

Used to characterise the synthetic workloads and to explain *where*
dynamic exclusion's gains come from — it attacks conflict misses only,
so the classification is the natural sanity check on the figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.set_associative import FullyAssociativeCache
from ..trace.trace import Trace


@dataclass(frozen=True)
class MissBreakdown:
    """Counts of each miss class for one (trace, geometry) pair."""

    accesses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def total(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total / self.accesses

    def rate(self, component: str) -> float:
        """Miss rate of one component: 'compulsory', 'capacity', 'conflict'."""
        if self.accesses == 0:
            return 0.0
        return getattr(self, component) / self.accesses


def classify_misses(trace: Trace, geometry: CacheGeometry) -> MissBreakdown:
    """Classify the misses of a direct-mapped cache on ``trace``.

    * compulsory — first reference to a line (misses in any cache);
    * capacity — further misses that a fully-associative LRU cache of
      the same size also takes;
    * conflict — everything else (what dynamic exclusion targets).
    """
    if geometry.associativity != 1:
        raise ValueError("classification here is defined for direct-mapped caches")
    direct = DirectMappedCache(geometry)
    full = FullyAssociativeCache(geometry.size, geometry.line_size)
    seen_lines = set()
    compulsory = 0
    capacity = 0
    conflict = 0
    for addr, kind in trace.pairs():
        line = addr >> geometry.offset_bits
        direct_result = direct.access(addr, kind)  # type: ignore[arg-type]
        full_result = full.access(addr, kind)  # type: ignore[arg-type]
        if line not in seen_lines:
            seen_lines.add(line)
            # First touch: a miss everywhere.
            compulsory += 1
            continue
        if direct_result.hit:
            continue
        if full_result.miss:
            capacity += 1
        else:
            conflict += 1
    return MissBreakdown(
        accesses=len(trace),
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
