"""Analysis and reporting: miss classification, sweeps, tables, charts."""

from .conflicts import ConflictProfile, SetConflictReport, format_profile, profile_conflicts
from .missclass import MissBreakdown, classify_misses
from .serialize import dumps as dumps_result
from .serialize import load as load_result
from .serialize import loads as loads_result
from .serialize import save as save_result
from .sweep import Series, SweepResult, per_trace_rates, run_sweep
from .report import format_percent, format_sweep, format_table, size_label
from .plot import ascii_chart, sweep_chart
from .svg import svg_line_chart, sweep_svg
from .warmup import (
    ColdWarmSplit,
    WarmupCurve,
    cold_warm_split,
    steady_state_reduction,
    windowed_miss_rates,
)
from .timing import (
    DEFAULT_MODELS,
    TimingModel,
    amat_comparison,
    breakeven_hit_time,
)

__all__ = [
    "ColdWarmSplit",
    "ConflictProfile",
    "DEFAULT_MODELS",
    "MissBreakdown",
    "Series",
    "SetConflictReport",
    "TimingModel",
    "WarmupCurve",
    "SweepResult",
    "amat_comparison",
    "ascii_chart",
    "breakeven_hit_time",
    "classify_misses",
    "cold_warm_split",
    "dumps_result",
    "format_profile",
    "load_result",
    "loads_result",
    "format_percent",
    "format_sweep",
    "format_table",
    "per_trace_rates",
    "profile_conflicts",
    "save_result",
    "steady_state_reduction",
    "run_sweep",
    "size_label",
    "sweep_chart",
    "sweep_svg",
    "svg_line_chart",
    "windowed_miss_rates",
]
