"""Warm-up analysis: miss rate as a function of time.

Two of the reproduction's observations hinge on cold-start behaviour:
the paper's note that nasa7/tomcatv see a *slight* miss increase "while
the dynamic exclusion state bits are initialized" (negligible on full
streams), and this repo's documented peak shift from running 50x
shorter traces (EXPERIMENTS.md D2).  This module measures both
directly: windowed miss-rate curves, and a cold/warm split at a chosen
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Union

from ..caches.base import Cache
from ..caches.stats import CacheStats, percent_reduction
from ..trace.trace import Trace

#: Absolute floor for the warm-up threshold: windowed rates within
#: float dust of a zero steady state still count as warmed.
_STEADY_EPSILON = 1e-12


@dataclass(frozen=True)
class WarmupCurve:
    """Windowed miss rates over one simulation."""

    window: int
    miss_rates: "tuple[float, ...]"

    @property
    def cold_rate(self) -> float:
        """Miss rate of the first window."""
        return self.miss_rates[0] if self.miss_rates else 0.0

    @property
    def steady_rate(self) -> float:
        """Mean miss rate of the second half of the windows."""
        if not self.miss_rates:
            return 0.0
        tail = self.miss_rates[len(self.miss_rates) // 2 :]
        return sum(tail) / len(tail)

    @property
    def warmup_windows(self) -> int:
        """Windows until the rate first drops within 1.5x of steady.

        When the steady-state rate is 0.0 the purely relative threshold
        would also be 0.0, and a curve whose tail plateaus within float
        dust of zero (without ever hitting it exactly) would report
        "never warmed"; a tiny absolute floor keeps the comparison
        meaningful in that edge case.
        """
        threshold = max(1.5 * self.steady_rate, _STEADY_EPSILON)
        for i, rate in enumerate(self.miss_rates):
            if rate <= threshold:
                return i
        return len(self.miss_rates)


def windowed_miss_rates(
    cache_factory: Callable[[], Cache], trace: Trace, window: int
) -> WarmupCurve:
    """Simulate ``trace`` and record the miss rate of each window."""
    if window <= 0:
        raise ValueError("window must be positive")
    cache = cache_factory()
    rates: List[float] = []
    access = cache.access
    misses_before = 0
    count = 0
    for addr, kind in trace.pairs():
        access(addr, kind)  # type: ignore[arg-type]
        count += 1
        if count == window:
            misses_now = cache.stats.misses
            rates.append((misses_now - misses_before) / window)
            misses_before = misses_now
            count = 0
    if count:
        rates.append((cache.stats.misses - misses_before) / count)
    return WarmupCurve(window=window, miss_rates=tuple(rates))


@dataclass(frozen=True)
class ColdWarmSplit:
    """Stats split at a reference boundary."""

    boundary: int
    cold: CacheStats
    warm: CacheStats


def cold_warm_split(
    cache_factory: Callable[[], Cache], trace: Trace, boundary: int
) -> ColdWarmSplit:
    """Simulate with separate accounting before/after ``boundary``."""
    if boundary < 0:
        raise ValueError("boundary cannot be negative")
    cache = cache_factory()
    cold_part = trace[:boundary]
    warm_part = trace[boundary:]
    assert isinstance(cold_part, Trace) and isinstance(warm_part, Trace)
    cache.simulate(cold_part)
    cold = CacheStats(**vars(cache.stats))
    cache.simulate(warm_part)
    total = cache.stats
    warm = CacheStats(
        accesses=total.accesses - cold.accesses,
        hits=total.hits - cold.hits,
        misses=total.misses - cold.misses,
        bypasses=total.bypasses - cold.bypasses,
        evictions=total.evictions - cold.evictions,
        buffer_hits=total.buffer_hits - cold.buffer_hits,
        cold_misses=total.cold_misses - cold.cold_misses,
    )
    warm.check()
    return ColdWarmSplit(boundary=boundary, cold=cold, warm=warm)


def steady_state_reduction(
    baseline_factory: Callable[[], Cache],
    improved_factory: Callable[[], Cache],
    trace: Trace,
    boundary: Union[int, None] = None,
) -> "tuple[float, float]":
    """(cold %, warm %) miss-rate reduction of ``improved`` over
    ``baseline``, split at ``boundary`` (default: half the trace).

    Separates training cost from steady-state benefit — the honest way
    to compare an adaptive policy against a static one on short traces.

    Both halves go through
    :func:`~repro.caches.stats.percent_reduction`, so a zero-baseline
    half with a *regressed* improved rate raises :class:`ValueError`
    instead of masquerading as "no change" (the same zero-baseline
    masking bug ``percent_reduction`` itself was fixed for); a genuine
    0.0 -> 0.0 half still reports 0.0.
    """
    boundary = boundary if boundary is not None else len(trace) // 2
    base = cold_warm_split(baseline_factory, trace, boundary)
    improved = cold_warm_split(improved_factory, trace, boundary)
    return (
        percent_reduction(base.cold.miss_rate, improved.cold.miss_rate),
        percent_reduction(base.warm.miss_rate, improved.warm.miss_rate),
    )
