"""JSON serialisation of results, for persisting experiment outputs.

Supports :class:`~repro.caches.stats.CacheStats`,
:class:`~repro.analysis.sweep.SweepResult`, and
:class:`~repro.hierarchy.two_level.TwoLevelResult` — the three shapes
the experiment harness produces.  The format is stable and versioned so
saved results remain loadable across library versions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from ..caches.stats import CacheStats
from ..hierarchy.two_level import Strategy, TwoLevelResult
from ..perf.journal import canonical_parameter, parameter_from_json
from .sweep import SweepResult

FORMAT_VERSION = 1

PathOrFile = Union[str, Path, IO[str]]


def stats_to_dict(stats: CacheStats) -> dict:
    return {
        "kind": "cache-stats",
        "version": FORMAT_VERSION,
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "bypasses": stats.bypasses,
        "evictions": stats.evictions,
        "buffer_hits": stats.buffer_hits,
        "cold_misses": stats.cold_misses,
    }


def stats_from_dict(data: dict) -> CacheStats:
    _require_kind(data, "cache-stats")
    stats = CacheStats(
        accesses=int(data["accesses"]),
        hits=int(data["hits"]),
        misses=int(data["misses"]),
        bypasses=int(data.get("bypasses", 0)),
        evictions=int(data.get("evictions", 0)),
        buffer_hits=int(data.get("buffer_hits", 0)),
        cold_misses=int(data.get("cold_misses", 0)),
    )
    stats.check()
    return stats


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialise a sweep, validating it is complete and JSON-stable.

    A series missing a parameter (a partial sweep — e.g. one assembled
    by hand or truncated by an aborted run) used to surface as a bare
    ``KeyError`` with no context; it now raises a :class:`ValueError`
    naming the series and the missing parameters.  Parameters that do
    not survive a JSON round trip are rejected by
    :func:`~repro.perf.journal.canonical_parameter` (tuples are
    canonicalised and restored as tuples on load).
    """
    parameters = [
        canonical_parameter(p, where=f"sweep parameter {p!r}")
        for p in result.parameters
    ]
    series_values = {}
    for label, series in result.series.items():
        missing = [p for p in result.parameters if p not in series.points]
        if missing:
            raise ValueError(
                f"cannot serialise a partial sweep: series {label!r} has no "
                f"value for parameter(s) {missing!r} "
                f"({len(series.points)} of {len(result.parameters)} points present)"
            )
        series_values[label] = [series.points[p] for p in result.parameters]
    return {
        "kind": "sweep",
        "version": FORMAT_VERSION,
        "parameter_name": result.parameter_name,
        "parameters": parameters,
        "series": series_values,
    }


def sweep_from_dict(data: dict) -> SweepResult:
    _require_kind(data, "sweep")
    result = SweepResult(
        parameter_name=data["parameter_name"],
        # JSON has no tuples; canonical parameters restore arrays as
        # tuples so Series.points lookups by the original (hashable)
        # parameter still hit after a reload.
        parameters=[parameter_from_json(p) for p in data["parameters"]],
    )
    for label, values in data["series"].items():
        if len(values) != len(result.parameters):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(result.parameters)} parameters"
            )
        for parameter, value in zip(result.parameters, values):
            result.add(label, parameter, float(value))
    return result


def two_level_to_dict(result: TwoLevelResult) -> dict:
    return {
        "kind": "two-level",
        "version": FORMAT_VERSION,
        "strategy": result.strategy.value,
        "l1": stats_to_dict(result.l1),
        "l2": stats_to_dict(result.l2),
    }


def two_level_from_dict(data: dict) -> TwoLevelResult:
    _require_kind(data, "two-level")
    return TwoLevelResult(
        strategy=Strategy(data["strategy"]),
        l1=stats_from_dict(data["l1"]),
        l2=stats_from_dict(data["l2"]),
    )


_TO_DICT = {
    CacheStats: stats_to_dict,
    SweepResult: sweep_to_dict,
    TwoLevelResult: two_level_to_dict,
}

_FROM_DICT = {
    "cache-stats": stats_from_dict,
    "sweep": sweep_from_dict,
    "two-level": two_level_from_dict,
}


def dumps(result: "CacheStats | SweepResult | TwoLevelResult") -> str:
    """Serialise a supported result object to a JSON string."""
    for cls, converter in _TO_DICT.items():
        if isinstance(result, cls):
            return json.dumps(converter(result), indent=2, sort_keys=True)
    raise TypeError(f"cannot serialise {type(result).__name__}")


def loads(text: str) -> "CacheStats | SweepResult | TwoLevelResult":
    """Deserialise a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError("not a repro result document")
    kind = data["kind"]
    if kind not in _FROM_DICT:
        raise ValueError(f"unknown result kind {kind!r}")
    return _FROM_DICT[kind](data)


def save(result: "CacheStats | SweepResult | TwoLevelResult", target: PathOrFile) -> None:
    """Write a result to a path or text file object."""
    text = dumps(result)
    if isinstance(target, (str, Path)):
        Path(target).write_text(text + "\n")
    else:
        target.write(text + "\n")


def load(source: PathOrFile) -> "CacheStats | SweepResult | TwoLevelResult":
    """Read a result from a path or text file object."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    return loads(text)


def _require_kind(data: dict, kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} document, got {data.get('kind')!r}")
    version = data.get("version", 0)
    if version > FORMAT_VERSION:
        raise ValueError(f"document version {version} is newer than supported")
