"""Minimal SVG line charts (no plotting dependency is available offline).

Renders the experiment sweeps as standalone ``.svg`` files so the
regenerated figures can go straight into a paper or README.  Pure
string assembly — no third-party code.

The visual language is deliberately plain: one polyline plus markers
per series, a light grid, axis tick labels, and a legend block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Default series colours (colour-blind-safe-ish qualitative set).
PALETTE = [
    "#1b6ca8",  # blue
    "#c0392b",  # red
    "#1e8449",  # green
    "#8e44ad",  # purple
    "#d68910",  # orange
    "#34495e",  # slate
    "#16a085",  # teal
    "#7f8c8d",  # grey
]

_MARKERS = ["circle", "square", "diamond", "triangle"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _marker(shape: str, x: float, y: float, color: str) -> str:
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'
    if shape == "square":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" '
            f'fill="{color}"/>'
        )
    if shape == "diamond":
        return (
            f'<polygon points="{x:.1f},{y - 4:.1f} {x + 4:.1f},{y:.1f} '
            f'{x:.1f},{y + 4:.1f} {x - 4:.1f},{y:.1f}" fill="{color}"/>'
        )
    return (
        f'<polygon points="{x:.1f},{y - 4:.1f} {x + 4:.1f},{y + 3:.1f} '
        f'{x - 4:.1f},{y + 3:.1f}" fill="{color}"/>'
    )


def svg_line_chart(
    series: "Dict[str, Sequence[float]]",
    x_labels: Sequence[str],
    title: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 400,
    y_max: Optional[float] = None,
) -> str:
    """Render labelled curves as an SVG document string.

    ``series`` maps curve labels to y-values aligned with ``x_labels``.
    The y-axis starts at zero (miss rates and percentages — the data
    this package plots — should not have truncated axes).
    """
    n_points = len(x_labels)
    if n_points == 0:
        raise ValueError("need at least one x position")
    for label, values in series.items():
        if len(values) != n_points:
            raise ValueError(
                f"series {label!r} has {len(values)} points, expected {n_points}"
            )

    all_values = [v for values in series.values() for v in values]
    top = y_max if y_max is not None else max(all_values or [1.0])
    if top <= 0:
        top = 1.0
    top *= 1.05  # headroom

    margin_left, margin_right = 64, 24
    margin_top, margin_bottom = 48, 64
    plot_width = width - margin_left - margin_right
    plot_height = height - margin_top - margin_bottom

    def x_pos(i: int) -> float:
        if n_points == 1:
            return margin_left + plot_width / 2
        return margin_left + plot_width * i / (n_points - 1)

    def y_pos(value: float) -> float:
        return margin_top + plot_height * (1 - value / top)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_escape(title)}</text>'
        )

    # Grid and y ticks (five divisions).
    for tick in range(6):
        value = top * tick / 5
        y = y_pos(value)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{width - margin_right}" y2="{y:.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value:.3g}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="16" y="{margin_top + plot_height / 2:.0f}" '
            f'text-anchor="middle" '
            f'transform="rotate(-90 16 {margin_top + plot_height / 2:.0f})">'
            f"{_escape(y_label)}</text>"
        )

    # X axis labels.
    for i, label in enumerate(x_labels):
        parts.append(
            f'<text x="{x_pos(i):.1f}" y="{height - margin_bottom + 20}" '
            f'text-anchor="middle">{_escape(str(label))}</text>'
        )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_height}" '
        f'x2="{width - margin_right}" y2="{margin_top + plot_height}" '
        f'stroke="#333333" stroke-width="1.5"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" '
        f'x2="{margin_left}" y2="{margin_top + plot_height}" '
        f'stroke="#333333" stroke-width="1.5"/>'
    )

    # Curves.
    for index, (label, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        shape = _MARKERS[index % len(_MARKERS)]
        points = " ".join(
            f"{x_pos(i):.1f},{y_pos(v):.1f}" for i, v in enumerate(values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for i, v in enumerate(values):
            parts.append(_marker(shape, x_pos(i), y_pos(v), color))

    # Legend (bottom strip).
    legend_y = height - 16
    x_cursor = float(margin_left)
    for index, label in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        parts.append(
            f'<rect x="{x_cursor:.1f}" y="{legend_y - 9}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x_cursor + 14:.1f}" y="{legend_y}">{_escape(label)}</text>'
        )
        x_cursor += 14 + 7 * len(label) + 20
    parts.append("</svg>")
    return "\n".join(parts)


def sweep_svg(result: "object", title: str = "", percent: bool = True) -> str:
    """Render a :class:`~repro.analysis.sweep.SweepResult` as SVG."""
    from .report import size_label

    x_labels = [
        size_label(p) if isinstance(p, int) else str(p) for p in result.parameters
    ]
    series = {}
    for label in result.series:
        values = result.curve(label)
        series[label] = [100.0 * v for v in values] if percent else list(values)
    y_label = "miss rate (%)" if percent else ""
    return svg_line_chart(series, x_labels, title=title, y_label=y_label)
