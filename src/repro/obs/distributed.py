"""Cross-process trace/metric propagation for the sweep backends.

The sweep backends (:mod:`repro.perf.backends`) run cells in other
processes — pool workers, long-lived fleet subprocesses — where the
parent's :class:`~repro.obs.tracing.Tracer` is unreachable.  Before
this module, the parent back-dated one synthetic ``cell`` span from the
reply's measured seconds and everything inside the worker (``simulate``,
``trace_gen``, ``fsm.*`` counters) was lost.  The protocol here ships
it home instead:

* the parent side builds a **propagation context** —
  ``{"version", "trace_id", "parent_span_id"}`` — from its installed
  tracer and attaches it to the cell request (fleet NDJSON ``obs`` key,
  local-pool task argument);
* the worker wraps cell evaluation in a :class:`WorkerCapture`: a fresh
  bounded :class:`~repro.obs.tracing.Tracer` (adopting the parent's
  ``trace_id``) plus a fresh :class:`~repro.obs.metrics.MetricsRegistry`
  installed for the duration, whose :meth:`WorkerCapture.payload` is a
  JSON-safe bundle of finished spans, a dropped-spans count, and the
  metric deltas;
* back home, :func:`merge_cell_payload` re-identifies the shipped spans
  in the parent tracer's id space, re-bases their clocks onto the
  parent's ``cell`` span, stamps ``worker=``/``pid=`` attribution, and
  folds the metric deltas into the parent registry via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` with a per-worker
  label.

Everything is bounded: a capture keeps at most :data:`MAX_SHIPPED_SPANS`
spans (excess is counted, and surfaces in the parent as the
:data:`DROPPED_COUNTER` series), so a pathological cell cannot balloon
the reply envelope.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from . import metrics as obs_metrics
from . import tracing as obs_tracing
from .metrics import MetricsRegistry
from .tracing import Span, Tracer

#: Wire-format version of the propagation context / capture payload.
OBS_WIRE_VERSION = 1

#: Spans a worker ships home per cell before counting drops instead.
MAX_SHIPPED_SPANS = 256

#: Parent-side counter recording worker spans lost to the ship limit.
DROPPED_COUNTER = "obs.distributed.spans_dropped"


def propagation_context() -> Optional[Dict[str, object]]:
    """The trace context to attach to an outgoing cell request.

    Captures the installed tracer's run identity and the calling
    thread's innermost open span (the sweep span, when called from
    :func:`repro.perf.parallel.run_labeled_cells`).  Returns None when
    tracing is off — workers then skip capture entirely, keeping the
    bare path free of observability cost.
    """
    tracer = obs_tracing.current_tracer()
    if tracer is None:
        return None
    return {
        "version": OBS_WIRE_VERSION,
        "trace_id": tracer.trace_id,
        "parent_span_id": tracer.current_span_id(),
    }


class WorkerCapture:
    """Worker-side span/metric capture scoped to one cell evaluation.

    Installs a fresh in-memory tracer and registry on entry and restores
    the previous ones on exit, so the instrumentation already living in
    library code (``simulate`` spans, ``fsm.*`` counters) transparently
    lands in the capture.  Enter the capture *before* decoding the cell
    payload so the capture epoch brackets everything the parent's
    ``cell`` span times.
    """

    def __init__(
        self,
        context: Optional[Dict[str, object]] = None,
        max_spans: int = MAX_SHIPPED_SPANS,
    ) -> None:
        self.context = context or {}
        self.tracer = Tracer(keep=max_spans)
        trace_id = self.context.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            self.tracer.trace_id = trace_id
        self.registry = MetricsRegistry()
        self._previous_tracer: Optional[Tracer] = None
        self._previous_registry: Optional[MetricsRegistry] = None

    def __enter__(self) -> "WorkerCapture":
        self._previous_tracer = obs_tracing.current_tracer()
        self._previous_registry = obs_metrics.current_registry()
        obs_tracing.install_tracer(self.tracer)
        obs_metrics.install_registry(self.registry)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous_tracer is not None:
            obs_tracing.install_tracer(self._previous_tracer)
        else:
            obs_tracing.uninstall_tracer()
        if self._previous_registry is not None:
            obs_metrics.install_registry(self._previous_registry)
        else:
            obs_metrics.uninstall_registry()
        self.tracer.close()

    def payload(self) -> Dict[str, object]:
        """JSON-safe bundle to attach to the cell reply."""
        return {
            "version": OBS_WIRE_VERSION,
            "trace_id": self.tracer.trace_id,
            "pid": os.getpid(),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "dropped": self.tracer.dropped,
            "metrics": self.registry.export(),
        }


def merge_cell_payload(
    payload: Dict[str, object],
    cell_span: Optional[Span],
    worker: str = "",
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Fold one worker capture payload into the parent's tracer/registry.

    ``cell_span`` is the parent-side (back-dated) ``cell`` span the
    shipped spans belong under: worker span starts are offsets on the
    worker capture's own epoch, which coincides with cell dispatch, so
    re-basing them as ``cell_span.start + offset`` reconstructs the real
    timeline.  Span ids are reallocated in the parent tracer's id space
    (worker tracers number independently from 1); shipped parent links
    that point outside the payload resolve to the cell span.  Returns
    the number of spans adopted.
    """
    if not isinstance(payload, dict):
        return 0
    tracer = tracer if tracer is not None else obs_tracing.current_tracer()
    registry = registry if registry is not None else obs_metrics.current_registry()
    pid = payload.get("pid")
    label = worker or (f"pid-{pid}" if pid is not None else "unknown")

    if registry is not None:
        deltas = payload.get("metrics")
        if isinstance(deltas, list) and deltas:
            registry.merge(deltas, worker=label)
        dropped = payload.get("dropped")
        if isinstance(dropped, (int, float)) and dropped > 0:
            registry.counter(DROPPED_COUNTER, float(dropped), worker=label)

    if tracer is None:
        return 0
    raw_spans = payload.get("spans")
    if not isinstance(raw_spans, list) or not raw_spans:
        return 0

    parsed: List[Span] = []
    for entry in raw_spans:
        if not isinstance(entry, dict):
            continue
        span = Span.from_dict(entry)
        if span is not None:
            parsed.append(span)
    if not parsed:
        return 0

    # Two passes: children finish (and therefore ship) before their
    # parents, so every id must be reallocated before parent links are
    # rewritten.
    id_map: Dict[int, int] = {}
    for span in parsed:
        id_map[span.span_id] = tracer.allocate_span_id()

    base = cell_span.start if cell_span is not None else 0.0
    fallback_parent = cell_span.span_id if cell_span is not None else None
    adopted = 0
    for span in parsed:
        parent = None
        if span.parent_id is not None:
            parent = id_map.get(span.parent_id)
        if parent is None:
            parent = fallback_parent
        attrs = dict(span.attrs)
        attrs.setdefault("worker", label)
        if pid is not None:
            attrs.setdefault("pid", pid)
        tracer.emit(
            Span(
                name=span.name,
                span_id=id_map[span.span_id],
                parent_id=parent,
                start=base + max(0.0, span.start),
                duration=span.duration,
                attrs=attrs,
            )
        )
        adopted += 1
    return adopted
