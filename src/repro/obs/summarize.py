"""Render a trace directory for humans: span tree + slowest cells.

``repro.cli obs summarize <dir>`` lands here.  Given a run directory
(one ``trace.jsonl`` + optional ``run_manifest.json``), the summary
shows:

* the manifest header — spec, engine, workers, wall/CPU time, commit;
* the span tree, merged by name at each nesting level (five thousand
  ``cell`` spans render as one line: count, total seconds, share of the
  root span's time);
* the top-N slowest individual ``cell`` spans with their identifying
  attributes, which is where "why was fig13 slow?" usually terminates;
* a per-worker cell-count table when any ``cell`` span carries a
  ``worker`` attribute (the fleet backend stamps each cell with the
  worker that executed it), which shows at a glance whether the fleet
  sharded evenly or one host starved.

A directory with no ``trace.jsonl`` of its own but run subdirectories
(the ``--trace-dir`` layout: one subdirectory per spec) is summarised
recursively, one section per run.  A run directory whose trace is
missing or empty but which carries a manifest (a run that crashed
before its first span, or ran with tracing off) degrades to a
manifest-plus-metrics summary with an explicit "no trace captured"
note rather than crashing or being silently omitted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.manifest import MANIFEST_FILENAME, read_manifest
from repro.obs.metrics import METRICS_FILENAME
from repro.obs.tracing import TRACE_FILENAME, Span, read_spans

#: Span name used for per-cell work units (see DESIGN.md §10 taxonomy).
CELL_SPAN = "cell"


class _Node:
    """Merged span-tree node: all same-named spans under one parent path."""

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: "Dict[str, _Node]" = {}


def _merge_tree(spans: List[Span]) -> _Node:
    """Fold the span forest into a tree merged by name at each level."""
    root = _Node("")
    by_id = {span.span_id: span for span in spans}

    def path_of(span: Span) -> Tuple[str, ...]:
        names: List[str] = []
        current: Optional[Span] = span
        # Guard against cycles from a corrupt trace line.
        for _ in range(64):
            if current is None:
                break
            names.append(current.name)
            current = by_id.get(current.parent_id) if current.parent_id else None
        return tuple(reversed(names))

    for span in spans:
        node = root
        for name in path_of(span):
            node = node.children.setdefault(name, _Node(name))
        node.count += 1
        node.seconds += span.duration
    return root


def _render_tree(root: _Node, total: float) -> List[str]:
    lines: List[str] = []

    def walk(node: _Node, depth: int) -> None:
        if node.name:
            share = 100.0 * node.seconds / total if total > 0 else 0.0
            lines.append(
                f"  {'  ' * depth}{node.name:<{max(4, 28 - 2 * depth)}}"
                f"  {node.seconds:>9.3f}s  x{node.count:<6d} {share:5.1f}%"
            )
        ranked = sorted(
            node.children.values(), key=lambda child: child.seconds, reverse=True
        )
        for child in ranked:
            walk(child, depth + (1 if node.name else 0))

    walk(root, 0)
    return lines


def _span_label(span: Span) -> str:
    attrs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    return f"{span.name}({attrs})" if attrs else span.name


def summarize_run(directory: Union[str, Path], top: int = 10) -> str:
    """Summarise one run directory (manifest + trace) as text."""
    directory = Path(directory)
    lines: List[str] = [f"run: {directory}"]

    manifest = read_manifest(directory)
    if manifest is not None:
        workers = manifest.get("workers")
        lines.append(
            f"  spec={manifest.get('spec')}"
            f" fingerprint={manifest.get('spec_fingerprint')}"
            f" engine={manifest.get('engine')}"
            f" workers={'auto' if workers is None else workers}"
        )
        lines.append(
            f"  wall={manifest.get('wall_seconds')}s"
            f" cpu={manifest.get('cpu_seconds')}s"
            f" git={manifest.get('git_sha') or 'unknown'}"
        )
    else:
        lines.append("  (no run_manifest.json)")

    trace_path = directory / TRACE_FILENAME
    spans = read_spans(trace_path)
    if not spans:
        if not trace_path.exists():
            lines.append(f"  (no trace captured: {TRACE_FILENAME} is missing)")
        else:
            lines.append(f"  (no trace captured: {TRACE_FILENAME} is empty)")
        lines += _render_metrics(directory)
        return "\n".join(lines) + "\n"

    roots = [span for span in spans if span.parent_id is None]
    total = sum(span.duration for span in roots)
    lines.append("")
    lines.append(f"  span tree ({len(spans)} spans, {total:.3f}s at root)")
    lines += _render_tree(_merge_tree(spans), total)

    cells = sorted(
        (span for span in spans if span.name == CELL_SPAN),
        key=lambda span: span.duration,
        reverse=True,
    )
    if cells:
        lines.append("")
        lines.append(f"  top {min(top, len(cells))} slowest cells")
        for span in cells[:top]:
            lines.append(f"    {span.duration:>9.3f}s  {_span_label(span)}")

    by_worker = worker_cell_counts(cells)
    if by_worker:
        lines.append("")
        lines.append(f"  cells by worker ({len(by_worker)} workers)")
        for worker, (count, seconds) in sorted(
            by_worker.items(), key=lambda item: (-item[1][0], item[0])
        ):
            lines.append(f"    {worker:<32}  x{count:<6d} {seconds:>9.3f}s")
    return "\n".join(lines) + "\n"


def _render_metrics(directory: Path, top: int = 12) -> List[str]:
    """Lines for a run's ``metrics.json`` snapshot (empty when absent)."""
    path = directory / METRICS_FILENAME
    if not path.exists():
        return []
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return [f"  ({METRICS_FILENAME} is unreadable)"]
    if not isinstance(entries, list) or not entries:
        return []
    lines = ["", f"  metrics ({len(entries)} series)"]
    for entry in entries[:top]:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        labels = entry.get("labels") or {}
        label_text = ",".join(
            f"{key}={value}" for key, value in sorted(labels.items())
        )
        series = f"{name}{{{label_text}}}" if label_text else str(name)
        if entry.get("type") == "histogram":
            value = f"count={entry.get('count')} sum={entry.get('sum')}s"
        else:
            value = f"{entry.get('value')}"
        lines.append(f"    {series:<52}  {value}")
    if len(entries) > top:
        lines.append(f"    ... and {len(entries) - top} more series")
    return lines


def worker_cell_counts(
    cells: List[Span],
) -> "Dict[str, Tuple[int, float]]":
    """Per-worker ``(cell count, total seconds)`` from cell spans.

    Only spans stamped with a ``worker`` attribute contribute — the
    inline and local-pool backends leave cells unattributed, so the
    table appears exactly when a fleet ran.
    """
    counts: "Dict[str, Tuple[int, float]]" = {}
    for span in cells:
        worker = span.attrs.get("worker")
        if not worker:
            continue
        count, seconds = counts.get(str(worker), (0, 0.0))
        counts[str(worker)] = (count + 1, seconds + span.duration)
    return counts


def _is_run_dir(directory: Path) -> bool:
    """Whether a directory is summarisable as one run.

    A trace file marks a run; so does a manifest (or a metrics
    snapshot) alone — a run that crashed before its first span or ran
    with tracing off still deserves a summary, not an omission.
    """
    return any(
        (directory / name).exists()
        for name in (TRACE_FILENAME, MANIFEST_FILENAME, METRICS_FILENAME)
    )


def find_runs(directory: Union[str, Path]) -> List[Path]:
    """Run directories under ``directory`` (itself, or its children)."""
    directory = Path(directory)
    if _is_run_dir(directory):
        return [directory]
    return sorted(
        child
        for child in directory.iterdir()
        if child.is_dir() and _is_run_dir(child)
    )


def summarize_directory(directory: Union[str, Path], top: int = 10) -> str:
    """Summarise a run directory, or every run nested one level below.

    Raises :class:`FileNotFoundError` only for a truly malformed
    target — a directory that does not exist, or one containing neither
    a trace, a manifest, nor a metrics snapshot at either level.
    """
    directory = Path(directory)
    if not directory.exists():
        raise FileNotFoundError(f"no such trace directory: {directory}")
    runs = find_runs(directory)
    if not runs:
        raise FileNotFoundError(
            f"no {TRACE_FILENAME}, {MANIFEST_FILENAME}, or {METRICS_FILENAME} "
            f"found in {directory} or its subdirectories"
        )
    return "\n".join(summarize_run(run, top=top) for run in runs)
