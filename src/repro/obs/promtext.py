"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

The serve daemon's ``/metrics`` endpoint speaks JSON by default (the
repo's own tooling reads it), but a standard scraper wants the
`text exposition format`_ — ``# TYPE`` comments, one sample per line,
histograms unrolled into cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``.  :func:`render_prometheus` produces that from any
registry (or a ``registry.export()`` snapshot), and
:func:`parse_prometheus` is the deliberately small inverse used by the
test suite and the CI smoke to prove every emitted line parses.

Name and label-value rules follow the format spec:

* metric names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (this
  repo's dotted series names — ``fsm.sticky_saves`` — become
  ``fsm_sticky_saves``);
* label **names** get the same treatment minus the colon;
* label **values** are escaped, not sanitised: backslash, double quote
  and newline become ``\\\\``, ``\\"`` and ``\\n``.

Histograms here store per-bucket (non-cumulative) counts; exposition
buckets are cumulative and always end with ``le="+Inf"`` equal to
``_count``.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from . import metrics as obs_metrics

#: Content type a Prometheus scraper expects for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """Metric name valid under the exposition grammar (dots → underscores)."""
    name = _NAME_BAD.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def sanitize_label_name(name: str) -> str:
    name = _LABEL_BAD.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: object) -> str:
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    parts = [
        f'{sanitize_label_name(str(key))}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items(), key=lambda item: str(item[0]))
    ]
    return "{" + ",".join(parts) + "}"


def render_prometheus(
    source: "Union[obs_metrics.MetricsRegistry, List[dict]]",
) -> str:
    """Render a registry (or an ``export()`` snapshot) as exposition text.

    Series sharing a name are grouped under one ``# TYPE`` comment; the
    repo's counters keep their sanitised names verbatim (no ``_total``
    suffix is appended — the JSON surface and the text surface must name
    the same series).
    """
    if isinstance(source, obs_metrics.MetricsRegistry):
        entries = source.export()
    else:
        entries = list(source)

    grouped: "Dict[str, List[dict]]" = {}
    kinds: Dict[str, str] = {}
    order: List[str] = []
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        kind = entry.get("type")
        if not isinstance(name, str) or kind not in ("counter", "gauge", "histogram"):
            continue
        prom_name = sanitize_name(name)
        if prom_name not in grouped:
            grouped[prom_name] = []
            kinds[prom_name] = kind
            order.append(prom_name)
        if kinds[prom_name] != kind:
            # Two dotted names collapsing onto one sanitised name with
            # different types cannot be exposed coherently; keep the
            # first and skip the collision.
            continue
        grouped[prom_name].append(entry)

    lines: List[str] = []
    for prom_name in order:
        kind = kinds[prom_name]
        lines.append(f"# TYPE {prom_name} {kind}")
        for entry in grouped[prom_name]:
            labels = entry.get("labels")
            labels = dict(labels) if isinstance(labels, dict) else {}
            if kind in ("counter", "gauge"):
                value = float(entry.get("value", 0.0))
                lines.append(f"{prom_name}{_label_text(labels)} {_format_value(value)}")
                continue
            bounds = [float(bound) for bound in entry.get("bounds") or []]
            buckets = [int(bucket) for bucket in entry.get("buckets") or []]
            count = int(entry.get("count", 0))
            total = float(entry.get("sum", 0.0))
            cumulative = 0
            for index, bound in enumerate(bounds):
                cumulative += buckets[index] if index < len(buckets) else 0
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                lines.append(
                    f"{prom_name}_bucket{_label_text(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(f"{prom_name}_bucket{_label_text(inf_labels)} {count}")
            lines.append(f"{prom_name}_sum{_label_text(labels)} {_format_value(total)}")
            lines.append(f"{prom_name}_count{_label_text(labels)} {count}")
    return "\n".join(lines) + "\n" if lines else ""


# -- the inverse, for tests and smokes ----------------------------------------


@dataclass
class Sample:
    """One parsed exposition line: ``name{labels} value``."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0


def _parse_labels(text: str, line: str) -> Tuple[Dict[str, str], str]:
    """Parse ``{k="v",...}`` off the front of ``text``; returns (labels, rest)."""
    labels: Dict[str, str] = {}
    index = 1  # past '{'
    while True:
        while index < len(text) and text[index] in " \t":
            index += 1
        if index < len(text) and text[index] == "}":
            return labels, text[index + 1 :]
        start = index
        while index < len(text) and text[index] not in "=}":
            index += 1
        if index >= len(text) or text[index] != "=":
            raise ValueError(f"malformed label set: {line!r}")
        label_name = text[start:index].strip()
        if not label_name or not _NAME_OK.match(label_name):
            raise ValueError(f"malformed label name in: {line!r}")
        index += 1
        if index >= len(text) or text[index] != '"':
            raise ValueError(f"unquoted label value in: {line!r}")
        index += 1
        chunks: List[str] = []
        while True:
            if index >= len(text):
                raise ValueError(f"unterminated label value in: {line!r}")
            char = text[index]
            if char == "\\":
                if index + 1 >= len(text):
                    raise ValueError(f"dangling escape in: {line!r}")
                escape = text[index + 1]
                if escape == "n":
                    chunks.append("\n")
                elif escape in ('"', "\\"):
                    chunks.append(escape)
                else:
                    raise ValueError(f"bad escape \\{escape} in: {line!r}")
                index += 2
                continue
            if char == '"':
                index += 1
                break
            chunks.append(char)
            index += 1
        labels[label_name] = "".join(chunks)
        if index < len(text) and text[index] == ",":
            index += 1


def parse_prometheus(text: str) -> List[Sample]:
    """Parse exposition text into samples; raises ValueError on any
    malformed non-comment line (the smoke's "every line parses" check)."""
    samples: List[Sample] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rest = stripped
        index = 0
        while index < len(rest) and rest[index] not in "{ \t":
            index += 1
        name = rest[:index]
        if not name or not _NAME_OK.match(name):
            raise ValueError(f"malformed metric name in: {line!r}")
        rest = rest[index:]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            labels, rest = _parse_labels(rest, line)
        rest = rest.strip()
        if not rest:
            raise ValueError(f"missing sample value in: {line!r}")
        value_text = rest.split()[0]
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"malformed sample value in: {line!r}")
        samples.append(Sample(name=name, labels=labels, value=value))
    return samples
