"""Machine-readable run manifests.

Every experiment run executed with ``--trace-dir`` leaves behind a
``run_manifest.json`` answering "what exactly produced these files?":
the spec identity and content fingerprint, the resolved engine and
worker count, the ``REPRO_*`` environment, the interpreter/platform,
the repository commit, and the measured wall/CPU time.  Results that
cannot name their configuration are not reproducible results.

The manifest is one JSON object per run directory — small, stable keys,
written atomically at the end of the run (unlike the trace, which
streams).  :func:`read_manifest` is the loading counterpart used by the
``obs summarize`` CLI and CI checks.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import uuid
from pathlib import Path
from typing import Dict, Optional, Union

MANIFEST_FILENAME = "run_manifest.json"
MANIFEST_VERSION = 1


def git_sha(cwd: "str | Path | None" = None) -> Optional[str]:
    """The current commit hash, or None outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    sha = result.stdout.strip()
    return sha or None


def environment_snapshot() -> Dict[str, object]:
    """The run-relevant environment: every ``REPRO_*`` variable plus
    interpreter and platform identity."""
    return {
        "repro": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def build_manifest(
    *,
    spec_id: str,
    spec_fingerprint: str,
    engine: str,
    workers: Optional[int],
    wall_seconds: float,
    cpu_seconds: float,
    started_at: float,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the manifest payload (JSON-safe, stable keys)."""
    manifest: Dict[str, object] = {
        "kind": "run-manifest",
        "version": MANIFEST_VERSION,
        "spec": spec_id,
        "spec_fingerprint": spec_fingerprint,
        "engine": engine,
        "workers": workers,
        "started_at": round(started_at, 3),
        "wall_seconds": round(wall_seconds, 6),
        "cpu_seconds": round(cpu_seconds, 6),
        "git_sha": git_sha(),
        "env": environment_snapshot(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory: Union[str, Path], manifest: Dict[str, object]) -> Path:
    """Write ``run_manifest.json`` atomically (rename over temp file).

    The temp name embeds the pid and a random suffix: two concurrent
    runs sharing a directory each rename their *own* fully written file
    (last writer wins), instead of tearing a shared ``.tmp``.  The data
    is fsynced before the rename so the manifest that appears under the
    final name is never a partially flushed file, even across a crash.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_FILENAME
    tmp = directory / f".{MANIFEST_FILENAME}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        # On any failure after creation (ENOSPC mid-write, a raced
        # unlink), don't leave the temp file behind.
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return path


def read_manifest(directory: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Load a run directory's manifest, or None if absent/corrupt."""
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return manifest if isinstance(manifest, dict) else None
