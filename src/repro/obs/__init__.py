"""repro.obs — dependency-free tracing, metrics, profiling, and logging.

The observability layer for the reproduction: nested monotonic-clock
spans persisted as torn-tail-tolerant JSONL (:mod:`.tracing`), a typed
counter/gauge/histogram registry (:mod:`.metrics`), opt-in
``REPRO_PROFILE=1`` phase/cProfile breakdowns (:mod:`.profiling`),
``run_manifest.json`` writers/readers (:mod:`.manifest`), the
``obs summarize`` renderer (:mod:`.summarize`), stderr logging
gated by ``REPRO_LOG_LEVEL`` (:mod:`.logs`), cross-process span/metric
propagation for the sweep backends (:mod:`.distributed`), and
Prometheus text exposition (:mod:`.promtext`).

Import direction: ``repro.obs`` imports nothing from ``repro.perf`` or
``repro.experiments`` — every other layer may import obs, never the
reverse.  All hooks (:func:`span`, :func:`record`, :func:`counter`,
:func:`section`, :func:`get_logger`) are cheap no-ops or level-gated
when no tracer/profiler is installed, so library code stays
instrumented unconditionally.
"""

from repro.obs.distributed import (
    DROPPED_COUNTER,
    MAX_SHIPPED_SPANS,
    OBS_WIRE_VERSION,
    WorkerCapture,
    merge_cell_payload,
    propagation_context,
)
from repro.obs.logs import LOG_LEVELS, configure_logging, get_logger
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    git_sha,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    METRICS_FILENAME,
    MetricsRegistry,
    counter,
    current_registry,
    gauge,
    histogram,
    install_registry,
    uninstall_registry,
)
from repro.obs.promtext import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.profiling import (
    PROFILE_FILENAME,
    Profiler,
    current_profiler,
    install_profiler,
    section,
    uninstall_profiler,
)
from repro.obs.summarize import summarize_directory, summarize_run
from repro.obs.tracing import (
    TRACE_FILENAME,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    iter_jsonl,
    read_spans,
    record,
    span,
    uninstall_tracer,
)

__all__ = [
    "DROPPED_COUNTER",
    "LOG_LEVELS",
    "MANIFEST_FILENAME",
    "MAX_SHIPPED_SPANS",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "OBS_WIRE_VERSION",
    "PROFILE_FILENAME",
    "PROMETHEUS_CONTENT_TYPE",
    "Profiler",
    "Span",
    "TRACE_FILENAME",
    "Tracer",
    "WorkerCapture",
    "build_manifest",
    "configure_logging",
    "counter",
    "current_profiler",
    "current_registry",
    "current_tracer",
    "gauge",
    "get_logger",
    "git_sha",
    "histogram",
    "install_profiler",
    "install_registry",
    "install_tracer",
    "iter_jsonl",
    "merge_cell_payload",
    "parse_prometheus",
    "propagation_context",
    "read_manifest",
    "read_spans",
    "record",
    "render_prometheus",
    "section",
    "span",
    "summarize_directory",
    "summarize_run",
    "uninstall_profiler",
    "uninstall_registry",
    "uninstall_tracer",
    "write_manifest",
]
