"""Structured run tracing: nested spans over a monotonic clock.

A figure run is a tree of timed phases — ``experiment`` → ``run_spec``
→ ``sweep`` → ``pool_attempt`` → ``cell`` → ``trace_gen``/``simulate``
— and "where did this 20-minute fig13 run spend its time?" is a
question about that tree, not about the terminal miss rates.  This
module provides the tree:

* :class:`Span` is one completed timed phase: a name, a start offset
  and duration on the tracer's monotonic clock, a parent link, and a
  small JSON-safe attribute dict (cell identity, engine, trace name);
* :class:`Tracer` measures spans (:meth:`Tracer.span` context manager,
  nested via a per-thread stack) and optionally appends each completed
  span as one JSON line to ``trace.jsonl`` — the same append-only,
  torn-tail-tolerant discipline as the sweep journal, so a crash costs
  at most the final partial line;
* the module-level :func:`span` / :func:`record` helpers write to the
  process-wide tracer installed by :func:`install_tracer` and are cheap
  no-ops when none is installed, so library code can be instrumented
  unconditionally.

Work that happens in pool worker processes cannot reach the parent's
tracer; the sweep runner instead records each pooled cell's measured
seconds from its result envelope via :meth:`Tracer.record`, so the span
tree stays complete (worker-side sub-phases are simply absent).

:func:`iter_jsonl` is the shared tolerant JSONL reader; the sweep
journal (:mod:`repro.perf.journal`) loads through it too.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

SPAN_KIND = "span"
TRACE_VERSION = 1

#: File name used inside a trace directory.
TRACE_FILENAME = "trace.jsonl"

#: In-process spans kept per tracer; past this the aggregate view stays
#: exact (counts and totals) but individual spans are dropped, so a
#: pathological million-cell run cannot exhaust memory.  The JSONL file,
#: when enabled, always receives every span.
DEFAULT_SPAN_KEEP = 100_000


def iter_jsonl(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the parseable JSON object lines of ``path``.

    Blank lines, lines that fail to parse (the torn tail of a crashed
    writer), and lines whose value is not an object are skipped — the
    shared loading rule for every append-only JSONL artefact in this
    repo (sweep journal, span trace).
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                yield entry


@dataclass
class Span:
    """One completed timed phase.

    ``start`` is seconds since the owning tracer's epoch on the
    monotonic clock (``time.perf_counter``), so spans order and nest
    correctly even across system clock adjustments.  ``attrs`` must be
    JSON-safe scalars; they carry identity (spec id, cell label, trace
    name), never bulk data.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        entry = {
            "kind": SPAN_KIND,
            "version": TRACE_VERSION,
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
        }
        if self.attrs:
            entry["attrs"] = self.attrs
        return entry

    @classmethod
    def from_dict(cls, entry: dict) -> "Optional[Span]":
        """Rebuild a span from one JSONL entry, or None if unusable."""
        if entry.get("kind") != SPAN_KIND:
            return None
        if entry.get("version", 0) > TRACE_VERSION:
            return None
        name = entry.get("name")
        span_id = entry.get("id")
        parent = entry.get("parent")
        start = entry.get("start")
        duration = entry.get("duration")
        if not isinstance(name, str) or not isinstance(span_id, int):
            return None
        if parent is not None and not isinstance(parent, int):
            return None
        if not isinstance(start, (int, float)) or not isinstance(duration, (int, float)):
            return None
        attrs = entry.get("attrs")
        return cls(
            name=name,
            span_id=span_id,
            parent_id=parent,
            start=float(start),
            duration=float(duration),
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
        )


class Tracer:
    """Measures nested spans; optionally persists them as JSONL.

    Thread-safe: span ids and the completed-span list are guarded by a
    lock, and the nesting stack is per-thread, so pool-management
    threads and the main thread can trace concurrently without mixing
    their parentage.
    """

    def __init__(
        self,
        directory: "str | Path | None" = None,
        keep: int = DEFAULT_SPAN_KEEP,
    ) -> None:
        self._epoch = time.perf_counter()
        #: Wall-clock time the tracer was created (for manifests).
        self.started_at = time.time()
        #: Run-scoped trace identity.  Propagated to worker processes by
        #: the distributed sweep backends (see :mod:`repro.obs.distributed`)
        #: so shipped spans can be attributed to the run that asked for
        #: them; a worker-side capture overwrites this with the parent's.
        self.trace_id = uuid.uuid4().hex
        self.directory = Path(directory) if directory is not None else None
        self.path: Optional[Path] = None
        self._handle = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path = self.directory / TRACE_FILENAME
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._keep = keep
        self.spans: List[Span] = []
        self.dropped = 0
        self._totals: Dict[str, List[float]] = {}  # name -> [count, seconds]

    # -- internals ----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self.spans) < self._keep:
                self.spans.append(span)
            else:
                self.dropped += 1
            totals = self._totals.setdefault(span.name, [0, 0.0])
            totals[0] += 1
            totals[1] += span.duration
            if self.path is not None:
                if self._handle is None:
                    self._handle = self.path.open("a", encoding="utf-8")
                self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
                self._handle.flush()

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Measure a nested phase; yields the mutable :class:`Span`.

        Attributes added to the yielded span's ``attrs`` before exit are
        persisted with it (the sweep runner stamps ``error``/``cached``
        outcomes this way).
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent,
            start=time.perf_counter() - self._epoch,
            duration=0.0,
            attrs=dict(attrs),
        )
        stack.append(record.span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.duration = (time.perf_counter() - self._epoch) - record.start
            self._finish(record)

    def record(self, name: str, seconds: float, **attrs: object) -> Span:
        """Record an already-measured span (e.g. a pool worker's cell).

        The span is parented to the calling thread's current span and
        back-dated so its end is "now"; ``seconds`` comes from the
        worker-side measurement the result envelope carried home.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        seconds = max(0.0, float(seconds))
        now = time.perf_counter() - self._epoch
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent,
            start=max(0.0, now - seconds),
            duration=seconds,
            attrs=dict(attrs),
        )
        self._finish(span)
        return span

    def current_span_id(self) -> Optional[int]:
        """The calling thread's innermost open span id (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def allocate_span_id(self) -> int:
        """Reserve a fresh span id in this tracer's id space.

        The distributed merge (:mod:`repro.obs.distributed`) re-identifies
        spans shipped home by worker processes — whose tracers allocated
        ids independently — before emitting them here.
        """
        return self._allocate_id()

    def emit(self, span: Span) -> Span:
        """Persist an externally constructed, already-finished span.

        The span's ``span_id`` must come from :meth:`allocate_span_id`
        and its ``start`` must already be expressed on this tracer's
        clock; used by the distributed merge, never by live measurement
        (use :meth:`span`/:meth:`record` for that).
        """
        self._finish(span)
        return span

    # -- views / lifecycle ---------------------------------------------------

    def aggregate(self) -> "Dict[str, Dict[str, float]]":
        """Per-name totals: ``{name: {count, seconds}}`` (always exact,
        even when individual spans were dropped past the keep limit)."""
        with self._lock:
            return {
                name: {"count": totals[0], "seconds": totals[1]}
                for name, totals in sorted(self._totals.items())
            }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- the process-wide tracer ---------------------------------------------------

_TRACER: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide target of :func:`span`/:func:`record`."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove (and return) the process-wide tracer; spans become no-ops."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    return tracer


def current_tracer() -> Optional[Tracer]:
    return _TRACER


@contextmanager
def span(name: str, **attrs: object):
    """Span on the installed tracer; yields ``None`` (cheaply) when
    tracing is off, so instrumented code never branches on it beyond a
    ``is not None`` guard for attribute stamping."""
    tracer = _TRACER
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as record:
        yield record


def record(name: str, seconds: float, **attrs: object) -> Optional[Span]:
    """Record a pre-measured span on the installed tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.record(name, seconds, **attrs)


def read_spans(path: Union[str, Path]) -> List[Span]:
    """Load the valid spans of a ``trace.jsonl`` (torn tail skipped)."""
    spans: List[Span] = []
    for entry in iter_jsonl(path):
        parsed = Span.from_dict(entry)
        if parsed is not None:
            spans.append(parsed)
    return spans
