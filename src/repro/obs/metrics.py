"""Typed in-process metrics: counters, gauges, and histograms.

The sweep runner used to accumulate run summaries in a module-global
list (``_TELEMETRY_LOG``); this registry replaces that pattern with
named, typed series that any layer can write to:

* **counter** — monotone event count (``sweep.cells.failed``,
  ``fsm.sticky_saves``);
* **gauge** — last-written value (``sweep.workers``);
* **histogram** — streaming distribution of observations kept as
  count/sum/min/max plus fixed log-spaced buckets (``cell.seconds``),
  so per-cell timing distributions survive without storing every
  sample.

Series are keyed by ``(name, sorted label items)``.  Labels carry
identity the way span attrs do — benchmark name, engine — and must be
JSON-safe scalars.  The registry is bounded: past ``max_series``
distinct keys, new keys fold into a single ``obs.metrics.overflow``
counter rather than growing without limit (the same discipline as the
tracer's span keep-limit).

A module-level default registry backs the convenience functions
(:func:`counter`, :func:`gauge`, :func:`histogram`); scoped use (tests,
per-run export) creates its own :class:`MetricsRegistry` and swaps it
in via :func:`install_registry`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Distinct (name, labels) series per registry before overflow folding.
DEFAULT_MAX_SERIES = 4096

#: Per-run metrics snapshot written next to ``trace.jsonl`` by traced
#: experiment runs (``registry.export()`` as JSON); ``obs summarize``
#: renders it even when no trace was captured.
METRICS_FILENAME = "metrics.json"

#: Histogram bucket upper bounds (seconds-oriented, log-spaced); the
#: implicit final bucket is +inf.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

OVERFLOW_SERIES = "obs.metrics.overflow"

_LabelItems = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> _LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotone event counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming distribution: count/sum/min/max + fixed buckets.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one extra
    bucket catches everything larger.  Mean is derived, percentiles are
    bucket-resolution — good enough to answer "are cells bimodal?"
    without retaining samples.
    """

    kind = "histogram"

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_from(
        self,
        bounds: "Iterable[float]",
        buckets: "Iterable[float]",
        count: float,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
    ) -> None:
        """Fold another histogram's state into this one.

        Matching bucket bounds add element-wise (the lossless case —
        every worker-side histogram of the same series shares the
        parent's bounds).  Mismatched bounds re-bucket each incoming
        bucket at its upper bound (+inf into +inf), which preserves
        count/sum/min/max exactly and bucket counts to the resolution
        the coarser side had anyway.
        """
        bounds = tuple(float(bound) for bound in bounds)
        buckets = [int(bucket) for bucket in buckets]
        self.count += int(count)
        self.sum += float(total)
        if minimum is not None and (self.min is None or minimum < self.min):
            self.min = float(minimum)
        if maximum is not None and (self.max is None or maximum > self.max):
            self.max = float(maximum)
        if bounds == self.bounds and len(buckets) == len(self.buckets):
            for index, bucket in enumerate(buckets):
                self.buckets[index] += bucket
            return
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue
            if index >= len(bounds):
                self.buckets[-1] += bucket
                continue
            value = bounds[index]
            for target, bound in enumerate(self.bounds):
                if value <= bound:
                    self.buckets[target] += bucket
                    break
            else:
                self.buckets[-1] += bucket

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6) if self.min is not None else None,
            "max": round(self.max, 6) if self.max is not None else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe, bounded collection of named metric series."""

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._lock = threading.Lock()
        self._series: "Dict[Tuple[str, _LabelItems], object]" = {}
        self._max_series = max_series
        self.overflowed = 0

    def _get(self, name: str, labels: Dict[str, object], cls, make=None):
        key = (name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self._max_series:
                    # Fold the event into one overflow counter so the
                    # loss is visible in exports instead of silent.
                    self.overflowed += 1
                    key = (OVERFLOW_SERIES, ())
                    series = self._series.get(key)
                    if series is None:
                        series = self._series[key] = Counter()
                    return series, True
                series = self._series[key] = (make or cls)()
            if not isinstance(series, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, not {cls.__name__}"
                )
            return series, False

    def counter(self, name: str, amount: float = 1.0, **labels: object) -> None:
        series, overflow = self._get(name, labels, Counter)
        with self._lock:
            series.inc(1.0 if overflow else amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        series, overflow = self._get(name, labels, Gauge)
        with self._lock:
            if overflow:
                series.inc()
            else:
                series.set(value)

    def histogram(
        self,
        name: str,
        value: float,
        bounds: "Optional[Iterable[float]]" = None,
        **labels: object,
    ) -> None:
        """Observe ``value``; ``bounds`` sets the bucket upper bounds iff
        this observation creates the series (an existing series keeps
        its bounds — callers of one series must agree on them)."""
        make = None
        if bounds is not None:
            fixed = tuple(float(bound) for bound in bounds)
            make = lambda: Histogram(fixed)  # noqa: E731
        series, overflow = self._get(name, labels, Histogram, make=make)
        with self._lock:
            if overflow:
                series.inc()
            else:
                series.observe(value)

    def merge(self, deltas: List[dict], **extra_labels: object) -> int:
        """Fold an exported snapshot (``registry.export()`` of another
        registry, typically a worker's) into this registry.

        ``extra_labels`` are stamped onto every merged series — the
        distributed merge passes ``worker=`` so per-worker breakdowns
        survive aggregation.  Counters and histograms add; gauges take
        the incoming value (last write wins, as for local sets).
        Returns the number of series merged; unusable entries are
        skipped and surface as an ``obs.metrics.merge_skipped`` counter.
        """
        merged = 0
        for entry in deltas:
            if not isinstance(entry, dict):
                self.counter("obs.metrics.merge_skipped")
                continue
            name = entry.get("name")
            kind = entry.get("type")
            raw_labels = entry.get("labels")
            if not isinstance(name, str) or not isinstance(kind, str):
                self.counter("obs.metrics.merge_skipped")
                continue
            labels = dict(raw_labels) if isinstance(raw_labels, dict) else {}
            labels.update(extra_labels)
            try:
                if kind == "counter":
                    self.counter(name, float(entry.get("value", 0.0)), **labels)
                elif kind == "gauge":
                    self.gauge(name, float(entry.get("value", 0.0)), **labels)
                elif kind == "histogram":
                    bounds = entry.get("bounds") or DEFAULT_BUCKETS
                    fixed = tuple(float(bound) for bound in bounds)
                    series, overflow = self._get(
                        name, labels, Histogram, make=lambda: Histogram(fixed)
                    )
                    with self._lock:
                        if overflow:
                            series.inc()
                        else:
                            series.merge_from(
                                fixed,
                                entry.get("buckets") or [],
                                entry.get("count", 0),
                                entry.get("sum", 0.0),
                                entry.get("min"),
                                entry.get("max"),
                            )
                else:
                    self.counter("obs.metrics.merge_skipped")
                    continue
            except (TypeError, ValueError):
                self.counter("obs.metrics.merge_skipped")
                continue
            merged += 1
        return merged

    def total(self, name: str, **labels: object) -> Optional[float]:
        """Sum of every counter/gauge series named ``name`` whose labels
        are a superset of the given filter, or None when no series
        matches.

        This is the cross-worker read: merged fleet counters carry an
        extra ``worker=`` label per series, so an exact :meth:`value`
        lookup misses them while ``total('fsm.sticky_saves',
        benchmark=..., engine=...)`` sums the fleet."""
        wanted = _label_key(labels)
        result: Optional[float] = None
        with self._lock:
            for (series_name, label_items), series in self._series.items():
                if series_name != name:
                    continue
                if not set(wanted) <= set(label_items):
                    continue
                if not isinstance(series, (Counter, Gauge)):
                    raise TypeError(f"metric {name!r} is a {series.kind}; use get()")
                result = (result or 0.0) + series.value
        return result

    # -- reads --------------------------------------------------------------

    def value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of a counter/gauge series, or None if absent."""
        key = (name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return None
            if isinstance(series, (Counter, Gauge)):
                return series.value
            raise TypeError(f"metric {name!r} is a {series.kind}; use get()")

    def get(self, name: str, **labels: object):
        """The raw series object (Counter/Gauge/Histogram), or None."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._series.get(key)

    def export(self) -> List[dict]:
        """JSON-safe snapshot of every series, sorted by (name, labels)."""
        with self._lock:
            items = sorted(
                self._series.items(),
                key=lambda item: (item[0][0], [str(p) for p in item[0][1]]),
            )
            return [
                {"name": name, "labels": dict(label_items), **series.to_dict()}
                for (name, label_items), series in items
            ]

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflowed = 0


# -- the process-wide registry -------------------------------------------------

_DEFAULT = MetricsRegistry()
_REGISTRY = _DEFAULT


def install_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in ``registry`` as the target of the module-level helpers."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


def uninstall_registry() -> MetricsRegistry:
    """Restore the default process-wide registry; returns the old one."""
    global _REGISTRY
    registry = _REGISTRY
    _REGISTRY = _DEFAULT
    return registry


def current_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, amount: float = 1.0, **labels: object) -> None:
    _REGISTRY.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: object) -> None:
    _REGISTRY.gauge(name, value, **labels)


def histogram(
    name: str,
    value: float,
    bounds: "Optional[Iterable[float]]" = None,
    **labels: object,
) -> None:
    _REGISTRY.histogram(name, value, bounds=bounds, **labels)
