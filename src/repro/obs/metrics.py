"""Typed in-process metrics: counters, gauges, and histograms.

The sweep runner used to accumulate run summaries in a module-global
list (``_TELEMETRY_LOG``); this registry replaces that pattern with
named, typed series that any layer can write to:

* **counter** — monotone event count (``sweep.cells.failed``,
  ``fsm.sticky_saves``);
* **gauge** — last-written value (``sweep.workers``);
* **histogram** — streaming distribution of observations kept as
  count/sum/min/max plus fixed log-spaced buckets (``cell.seconds``),
  so per-cell timing distributions survive without storing every
  sample.

Series are keyed by ``(name, sorted label items)``.  Labels carry
identity the way span attrs do — benchmark name, engine — and must be
JSON-safe scalars.  The registry is bounded: past ``max_series``
distinct keys, new keys fold into a single ``obs.metrics.overflow``
counter rather than growing without limit (the same discipline as the
tracer's span keep-limit).

A module-level default registry backs the convenience functions
(:func:`counter`, :func:`gauge`, :func:`histogram`); scoped use (tests,
per-run export) creates its own :class:`MetricsRegistry` and swaps it
in via :func:`install_registry`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

#: Distinct (name, labels) series per registry before overflow folding.
DEFAULT_MAX_SERIES = 4096

#: Histogram bucket upper bounds (seconds-oriented, log-spaced); the
#: implicit final bucket is +inf.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

OVERFLOW_SERIES = "obs.metrics.overflow"

_LabelItems = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> _LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotone event counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming distribution: count/sum/min/max + fixed buckets.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one extra
    bucket catches everything larger.  Mean is derived, percentiles are
    bucket-resolution — good enough to answer "are cells bimodal?"
    without retaining samples.
    """

    kind = "histogram"

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6) if self.min is not None else None,
            "max": round(self.max, 6) if self.max is not None else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe, bounded collection of named metric series."""

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._lock = threading.Lock()
        self._series: "Dict[Tuple[str, _LabelItems], object]" = {}
        self._max_series = max_series
        self.overflowed = 0

    def _get(self, name: str, labels: Dict[str, object], factory):
        key = (name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self._max_series:
                    # Fold the event into one overflow counter so the
                    # loss is visible in exports instead of silent.
                    self.overflowed += 1
                    key = (OVERFLOW_SERIES, ())
                    series = self._series.get(key)
                    if series is None:
                        series = self._series[key] = Counter()
                    return series, True
                series = self._series[key] = factory()
            if not isinstance(series, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, not {factory.__name__}"
                )
            return series, False

    def counter(self, name: str, amount: float = 1.0, **labels: object) -> None:
        series, overflow = self._get(name, labels, Counter)
        with self._lock:
            series.inc(1.0 if overflow else amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        series, overflow = self._get(name, labels, Gauge)
        with self._lock:
            if overflow:
                series.inc()
            else:
                series.set(value)

    def histogram(self, name: str, value: float, **labels: object) -> None:
        series, overflow = self._get(name, labels, Histogram)
        with self._lock:
            if overflow:
                series.inc()
            else:
                series.observe(value)

    # -- reads --------------------------------------------------------------

    def value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of a counter/gauge series, or None if absent."""
        key = (name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return None
            if isinstance(series, (Counter, Gauge)):
                return series.value
            raise TypeError(f"metric {name!r} is a {series.kind}; use get()")

    def get(self, name: str, **labels: object):
        """The raw series object (Counter/Gauge/Histogram), or None."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._series.get(key)

    def export(self) -> List[dict]:
        """JSON-safe snapshot of every series, sorted by (name, labels)."""
        with self._lock:
            items = sorted(
                self._series.items(),
                key=lambda item: (item[0][0], [str(p) for p in item[0][1]]),
            )
            return [
                {"name": name, "labels": dict(label_items), **series.to_dict()}
                for (name, label_items), series in items
            ]

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflowed = 0


# -- the process-wide registry -------------------------------------------------

_DEFAULT = MetricsRegistry()
_REGISTRY = _DEFAULT


def install_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in ``registry`` as the target of the module-level helpers."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


def uninstall_registry() -> MetricsRegistry:
    """Restore the default process-wide registry; returns the old one."""
    global _REGISTRY
    registry = _REGISTRY
    _REGISTRY = _DEFAULT
    return registry


def current_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, amount: float = 1.0, **labels: object) -> None:
    _REGISTRY.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: object) -> None:
    _REGISTRY.gauge(name, value, **labels)


def histogram(name: str, value: float, **labels: object) -> None:
    _REGISTRY.histogram(name, value, **labels)
