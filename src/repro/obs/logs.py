"""Stderr logging for run chatter, gated by ``REPRO_LOG_LEVEL``.

Reports, SVG text, and JSON summaries belong on stdout; everything
about the *run itself* — progress lines, "svg written to", timing
footers — belongs on stderr, or piping a figure's report into a file
captures the chatter too.  This module gives every layer one logger
family (``repro.*``) with:

* a handler that resolves ``sys.stderr`` **at emit time**, so output
  lands in whatever stderr is current (pytest's capsys replacement,
  a shell redirect) rather than the stream captured at import;
* :func:`configure_logging`, called once per CLI entry, mapping the
  ``REPRO_LOG_LEVEL`` knob (``debug``/``info``/``warning``/``error``/
  ``quiet``) onto the ``repro`` logger — ``quiet`` silences even
  errors, for callers that only want the stdout artefact.

Library code calls :func:`get_logger` and logs unconditionally; the
level decides what the user sees.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Accepted ``REPRO_LOG_LEVEL`` values, least to most silent.
LOG_LEVELS = ("debug", "info", "warning", "error", "quiet")

_LEVEL_MAP = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    # Nothing logs above CRITICAL, so this disables output entirely.
    "quiet": logging.CRITICAL + 1,
}

ROOT_LOGGER = "repro"


class _CurrentStderrHandler(logging.StreamHandler):
    """StreamHandler bound to *current* ``sys.stderr``, not import-time's."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.__init__ assigns this; the live property wins.
        pass


def configure_logging(level: Optional[str] = None) -> logging.Logger:
    """Configure the ``repro`` logger family for CLI use.

    ``level`` defaults to the ``REPRO_LOG_LEVEL`` environment knob
    (:func:`repro.env.log_level`).  Idempotent: repeated calls update
    the level without stacking handlers.
    """
    if level is None:
        from repro import env

        level = env.log_level()
    if level not in _LEVEL_MAP:
        options = ", ".join(LOG_LEVELS)
        raise ValueError(f"unknown log level {level!r} (expected one of: {options})")

    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(_LEVEL_MAP[level])
    logger.propagate = False
    if not any(isinstance(h, _CurrentStderrHandler) for h in logger.handlers):
        handler = _CurrentStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` family (``repro.<name>``).

    Safe to call before :func:`configure_logging`; until then only
    warnings and above appear (stdlib last-resort handler).
    """
    full = f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER
    return logging.getLogger(full)
