"""Opt-in profiling hooks: per-phase wall time + cProfile detail.

Tracing (``obs.tracing``) answers *which phase* was slow; profiling
answers *which function inside the phase*.  Because cProfile multiplies
the cost of every Python call, this layer is strictly opt-in: the
frontends install a :class:`Profiler` only when ``REPRO_PROFILE=1``
(see :func:`repro.env.profile_enabled`), and the module-level
:func:`section` helper is a cheap no-op otherwise, so kernel dispatch
can stay instrumented unconditionally.

A :class:`Profiler` accumulates named sections (count + wall seconds on
``perf_counter``) and, by default, runs ``cProfile`` while any section
is open.  :meth:`Profiler.report` renders both views — the per-phase
breakdown first, then the top functions by cumulative time — and
:meth:`Profiler.write` drops that report as ``profile.txt`` next to a
run's ``trace.jsonl``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

#: File name used inside a trace directory.
PROFILE_FILENAME = "profile.txt"


class Profiler:
    """Accumulates per-phase timings and optional cProfile stats."""

    def __init__(self, cprofile: bool = True) -> None:
        self._lock = threading.Lock()
        self._sections: Dict[str, List[float]] = {}  # name -> [count, seconds]
        self._profile = cProfile.Profile() if cprofile else None
        # cProfile cannot be enabled twice; nested/concurrent sections
        # share one activation tracked by this depth counter.
        self._depth = 0

    @contextmanager
    def section(self, name: str):
        with self._lock:
            if self._profile is not None and self._depth == 0:
                self._profile.enable()
            self._depth += 1
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._depth -= 1
                if self._profile is not None and self._depth == 0:
                    self._profile.disable()
                totals = self._sections.setdefault(name, [0, 0.0])
                totals[0] += 1
                totals[1] += elapsed

    def sections(self) -> "Dict[str, Dict[str, float]]":
        """Per-section totals: ``{name: {count, seconds}}``."""
        with self._lock:
            return {
                name: {"count": totals[0], "seconds": totals[1]}
                for name, totals in sorted(self._sections.items())
            }

    def report(self, top: int = 20) -> str:
        """Human-readable breakdown: sections table, then hot functions."""
        lines = ["phase breakdown (wall seconds)", ""]
        sections = self.sections()
        if sections:
            width = max(len(name) for name in sections)
            ranked = sorted(
                sections.items(), key=lambda item: item[1]["seconds"], reverse=True
            )
            for name, totals in ranked:
                lines.append(
                    f"  {name:<{width}}  {totals['seconds']:>10.4f}s"
                    f"  x{int(totals['count'])}"
                )
        else:
            lines.append("  (no sections recorded)")
        if self._profile is not None:
            buffer = io.StringIO()
            stats = pstats.Stats(self._profile, stream=buffer)
            stats.sort_stats("cumulative").print_stats(top)
            lines += ["", f"top {top} functions by cumulative time", ""]
            lines.append(buffer.getvalue().rstrip())
        return "\n".join(lines) + "\n"

    def write(self, directory: Union[str, Path], top: int = 20) -> Path:
        """Write :meth:`report` to ``<directory>/profile.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / PROFILE_FILENAME
        path.write_text(self.report(top=top), encoding="utf-8")
        return path


# -- the process-wide profiler -------------------------------------------------

_PROFILER: Optional[Profiler] = None


def install_profiler(profiler: Profiler) -> Profiler:
    global _PROFILER
    _PROFILER = profiler
    return profiler


def uninstall_profiler() -> Optional[Profiler]:
    global _PROFILER
    profiler = _PROFILER
    _PROFILER = None
    return profiler


def current_profiler() -> Optional[Profiler]:
    return _PROFILER


@contextmanager
def section(name: str):
    """Profile a phase on the installed profiler (no-op when profiling
    is off — the common case)."""
    profiler = _PROFILER
    if profiler is None:
        yield
        return
    with profiler.section(name):
        yield
