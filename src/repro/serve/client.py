"""The stdlib client for the result-store daemon.

``urllib.request`` only — the serving stack stays dependency-free end
to end.  :class:`ServeClient` mirrors the server's routes one method
each; :meth:`ServeClient.run` consumes the NDJSON stream of a
``POST /run``, invoking an optional callback per event (the CLI uses
it for live progress) and returning the final ``done`` payload.

Error contract: transport failures and non-2xx responses raise
:class:`ServeError` with the server's own ``error`` text when the body
carried one; a run that streams an ``error`` event (unsupported spec,
failed cells) raises :class:`ServeError` too, so callers never have to
inspect event dicts to learn a run failed.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Callable, Iterator, List, Optional

from .. import env

#: Per-request socket timeout (seconds).  Generous because a cold
#: ``POST /run`` holds the connection for the whole sweep; the stream's
#: per-cell events keep the socket active well inside this window.
DEFAULT_TIMEOUT = 600.0


class ServeError(RuntimeError):
    """A serve request failed (transport, HTTP status, or run error)."""

    def __init__(self, message: str, status: "Optional[int]" = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """A client bound to one daemon URL (default: ``REPRO_SERVE_URL``)."""

    def __init__(
        self, url: "Optional[str]" = None, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.url = (url or env.serve_url()).rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _open(self, path: str, body: "Optional[dict]" = None):
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if body is None else "POST",
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServeError(
                f"{path}: HTTP {exc.code}" + (f": {detail}" if detail else ""),
                status=exc.code,
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.url}: {exc.reason}") from None

    def _get_json(self, path: str) -> dict:
        with self._open(path) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- one method per route --------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def specs(self) -> "List[dict]":
        return self._get_json("/specs")["specs"]

    def spec(self, spec_id: str) -> dict:
        return self._get_json(f"/spec/{spec_id}")

    def cell(self, key: str) -> dict:
        return self._get_json(f"/cell/{key}")

    def metrics(self) -> "List[dict]":
        return self._get_json("/metrics")["metrics"]

    def run_events(
        self,
        spec_id: str,
        engine: "Optional[str]" = None,
        workers: "Optional[int]" = None,
    ) -> "Iterator[dict]":
        """Stream a run's NDJSON events as dicts (plan, cell*, done|error)."""
        body: dict = {"spec": spec_id}
        if engine is not None:
            body["engine"] = engine
        if workers is not None:
            body["workers"] = workers
        with self._open("/run", body) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def run(
        self,
        spec_id: str,
        engine: "Optional[str]" = None,
        workers: "Optional[int]" = None,
        on_event: "Optional[Callable[[dict], None]]" = None,
    ) -> dict:
        """Run a spec on the daemon and return the final ``done`` payload.

        ``on_event`` sees every streamed event (including the final
        one).  Raises :class:`ServeError` if the stream reports an
        error or ends without a ``done`` event.
        """
        done: "Optional[dict]" = None
        for event in self.run_events(spec_id, engine=engine, workers=workers):
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "error":
                raise ServeError(f"run {spec_id!r} failed: {event.get('error')}")
            if kind == "done":
                done = event
        if done is None:
            raise ServeError(f"run {spec_id!r}: stream ended without a done event")
        return done
