"""The stdlib client for the result-store daemon.

``urllib.request`` only — the serving stack stays dependency-free end
to end.  :class:`ServeClient` mirrors the server's routes one method
each; :meth:`ServeClient.run` consumes the NDJSON stream of a
``POST /run``, invoking an optional callback per event (the CLI uses
it for live progress) and returning the final ``done`` payload.

Error contract: transport failures and non-2xx responses raise
:class:`ServeError` with the server's own ``error`` text when the body
carried one; a run that streams an ``error`` event (unsupported spec,
failed cells) raises :class:`ServeError` too, so callers never have to
inspect event dicts to learn a run failed.

HTTP caching: :meth:`ServeClient.spec` and :meth:`ServeClient.cell`
remember the ``ETag`` the server sent per path and replay it as
``If-None-Match`` on the next request; a ``304 Not Modified`` answer is
served from the client's cached body without the server re-planning or
re-serialising anything.  ``ServeClient.not_modified`` counts the 304s
observed (the serve bench gates on the conditional path staying cheap).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .. import env

#: Per-request socket timeout (seconds).  Generous because a cold
#: ``POST /run`` holds the connection for the whole sweep; the stream's
#: per-cell events keep the socket active well inside this window.
DEFAULT_TIMEOUT = 600.0


class ServeError(RuntimeError):
    """A serve request failed (transport, HTTP status, or run error)."""

    def __init__(self, message: str, status: "Optional[int]" = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """A client bound to one daemon URL (default: ``REPRO_SERVE_URL``)."""

    def __init__(
        self, url: "Optional[str]" = None, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.url = (url or env.serve_url()).rstrip("/")
        self.timeout = timeout
        #: path -> (etag, cached body text) for the conditional GETs.
        self._etag_cache: "Dict[str, Tuple[str, str]]" = {}
        #: How many requests were answered 304 from the local cache.
        self.not_modified = 0

    # -- plumbing --------------------------------------------------------------

    def _open(
        self,
        path: str,
        body: "Optional[dict]" = None,
        headers: "Optional[Dict[str, str]]" = None,
    ):
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers=request_headers,
            method="GET" if body is None else "POST",
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServeError(
                f"{path}: HTTP {exc.code}" + (f": {detail}" if detail else ""),
                status=exc.code,
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.url}: {exc.reason}") from None

    def _get_json(self, path: str) -> dict:
        with self._open(path) as response:
            return json.loads(response.read().decode("utf-8"))

    def _get_json_conditional(self, path: str) -> dict:
        """GET with ``If-None-Match``; a 304 replays the cached body."""
        cached = self._etag_cache.get(path)
        headers = {"If-None-Match": cached[0]} if cached else None
        try:
            with self._open(path, headers=headers) as response:
                text = response.read().decode("utf-8")
                etag = response.headers.get("ETag")
                if etag:
                    self._etag_cache[path] = (etag, text)
                return json.loads(text)
        except ServeError as exc:
            if exc.status == 304 and cached is not None:
                self.not_modified += 1
                return json.loads(cached[1])
            raise

    # -- one method per route --------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def specs(self) -> "List[dict]":
        return self._get_json("/specs")["specs"]

    def spec(self, spec_id: str) -> dict:
        return self._get_json_conditional(f"/spec/{spec_id}")

    def cell(self, key: str) -> dict:
        return self._get_json_conditional(f"/cell/{key}")

    def metrics(self) -> "List[dict]":
        return self._get_json("/metrics")["metrics"]

    def run_events(
        self,
        spec_id: str,
        engine: "Optional[str]" = None,
        workers: "Optional[int]" = None,
        backend: "Optional[str]" = None,
    ) -> "Iterator[dict]":
        """Stream a run's NDJSON events as dicts (plan, cell*, done|error)."""
        body: dict = {"spec": spec_id}
        if engine is not None:
            body["engine"] = engine
        if workers is not None:
            body["workers"] = workers
        if backend is not None:
            body["backend"] = backend
        with self._open("/run", body) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def run(
        self,
        spec_id: str,
        engine: "Optional[str]" = None,
        workers: "Optional[int]" = None,
        backend: "Optional[str]" = None,
        on_event: "Optional[Callable[[dict], None]]" = None,
    ) -> dict:
        """Run a spec on the daemon and return the final ``done`` payload.

        ``on_event`` sees every streamed event (including the final
        one).  Raises :class:`ServeError` if the stream reports an
        error or ends without a ``done`` event.
        """
        done: "Optional[dict]" = None
        for event in self.run_events(
            spec_id, engine=engine, workers=workers, backend=backend
        ):
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "error":
                raise ServeError(f"run {spec_id!r} failed: {event.get('error')}")
            if kind == "done":
                done = event
        if done is None:
            raise ServeError(f"run {spec_id!r}: stream ended without a done event")
        return done
