"""repro.serve — the result-store daemon and its client.

The network face of the content-addressed result store
(:mod:`repro.store`): a dependency-free HTTP/JSON API over the
experiment-spec registry, answering repeat queries from the store in
O(1) per cell and spending simulation time only on genuinely new
cells.

* :class:`ResultServer` (:mod:`.server`) — a ``ThreadingHTTPServer``
  daemon exposing ``GET /specs``, ``GET /spec/<id>``,
  ``GET /cell/<key>``, ``GET /healthz``, ``GET /metrics``, and a
  streaming ``POST /run``;
* :class:`ServeClient` (:mod:`.client`) — the ``urllib``-based client
  behind ``repro query`` and the serve tests/benchmarks.

Start a daemon with ``python -m repro.cli serve --store DIR`` and query
it with ``python -m repro.cli query run fig04``.
"""

from .client import ServeClient, ServeError
from .server import ResultServer, ServeUnsupportedError, expand_grid_specs, plan_grid

__all__ = [
    "ResultServer",
    "ServeClient",
    "ServeError",
    "ServeUnsupportedError",
    "expand_grid_specs",
    "plan_grid",
]
