"""The result-store daemon: spec registry + content-addressed cache over HTTP.

Economics first: a production figure service sees the same experiment
specs over and over, and every sweep cell is already keyed by a sha256
content hash of its full identity.  So the daemon's job is to make the
repeat path nearly free — ``POST /run`` computes each cell's key,
answers everything the store already holds without touching a
simulator, and enqueues only the missing cells onto the existing
resilient sweep runner (:func:`repro.perf.parallel.run_labeled_cells`,
any engine including ``batch``).  New results land in the store's
primary journal mid-run, so even a crashed request leaves its finished
cells servable.

Protocol (all JSON; ``POST /run`` streams newline-delimited events):

* ``GET /specs`` — the experiment registry (id, title, kind,
  fingerprint digest, hidden flag);
* ``GET /spec/<id>`` — one spec plus its current cell/cached counts
  under the server's engine; carries an ``ETag`` (spec fingerprint +
  store generation.revision) and answers ``If-None-Match`` repeats
  with ``304 Not Modified`` before any cell planning happens;
* ``GET /cell/<key>`` — the stored journal entry for a content key,
  ``ETag``-tagged by the entry's own content hash (``304`` on repeats);
* ``GET /healthz`` — liveness + store statistics, the active sweep
  backend, and the live fleet-worker count;
* ``GET /metrics`` — the process obs metrics registry
  (``serve.*`` and ``fleet.*`` series included) plus the active
  backend and live fleet-worker count.  Content-negotiated: JSON by
  default, Prometheus text exposition under ``?format=prometheus`` or
  ``Accept: text/plain`` (see :mod:`repro.obs.promtext`);
* ``GET /statusz`` — live-run snapshot: the active ``/run`` requests
  (spec, elapsed seconds), per-fleet-worker in-flight cells, and
  store/negcache generation state;
* ``POST /run`` — body ``{"spec": id, "engine"?: name, "workers"?: n,
  "backend"?: name}``;
  the response is ``application/x-ndjson``: one ``plan`` event, a
  ``cell`` event per newly resolved cell, and a final ``done`` event
  carrying every cell's metrics, the collected result, the rendered
  report, and a provenance run manifest (also written under
  ``<store>/runs/<run_id>/``).

Consistency model: runs of the same spec id serialise on a per-spec
lock (concurrent identical requests do the work once and serve the
rest from the store); different specs run concurrently, and the store
index is guarded for the daemon's handler threads.  Cell keys embed
the trace budget, so a ``REPRO_TRACE_SCALE`` change is a different key
space, never a stale answer.

Failures are cached too: when a run dies on a cell, the failed cells
are recorded as TTL-bounded ``sweep-cell-error`` entries in the store
(the negative-result cache), and a repeat ``POST /run`` inside the
``REPRO_SERVE_NEG_TTL`` window is answered with the cached error —
zero simulations — instead of re-burning compute on a spec that is
known to be broken.  After the TTL the simulation is retried, and any
success evicts the cached failure immediately.  ``/metrics`` exposes
the ``serve.negcache.{hits,misses,expired,stored}`` counters.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from .. import env
from ..experiments.spec import (
    ExperimentSpec,
    all_specs,
    collect_result,
    fingerprint_digest,
    get_spec,
    grid_cells,
    grid_from_outcomes,
    render_spec,
)
from ..obs import build_manifest, get_logger, write_manifest
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.promtext import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..perf import engine as engine_mod
from ..perf.backends import backend_names, live_worker_status, live_workers
from ..perf.parallel import (
    CellIdentity,
    CellOutcome,
    LabeledCell,
    SweepCellError,
    outcome_observer,
    run_labeled_cells,
)
from ..perf.journal import content_key
from ..store import ResultStore

SERVE_VERSION = 1

#: Engine used when neither the request nor the spec names one.  The
#: fast tier is the serving default on purpose: its results are pinned
#: equal to the reference simulators, it shares journal keys with the
#: batch tier, and a store filled under one engine name answers every
#: later request under the same name.
DEFAULT_SERVE_ENGINE = "fast"

#: Bucket bounds for ``serve.request.seconds``.  The default registry
#: buckets start at 1ms, but a warm ETag/304 answer takes tens of
#: microseconds — every request would land in the first bucket and the
#: histogram would say nothing about the serving tier.  Sub-millisecond
#: resolution below, sweep-scale tail above.
SERVE_REQUEST_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)

_log = get_logger("serve")


class ServeUnsupportedError(ValueError):
    """The spec cannot be served cell-by-cell (custom ``compute`` shape)."""


# -- run planning --------------------------------------------------------------


@dataclass
class GridPlan:
    """One grid spec's cells with their content identities precomputed."""

    spec: ExperimentSpec
    engine: str
    cells: "List[LabeledCell]"
    traces_by_parameter: dict
    identities: "List[CellIdentity]"

    @property
    def keys(self) -> "List[Optional[str]]":
        """Per-cell store keys (None for unjournalable cells)."""
        return [
            identity.key() if identity.journalable else None
            for identity in self.identities
        ]


def expand_grid_specs(
    spec: ExperimentSpec, _seen: "Optional[Dict[str, ExperimentSpec]]" = None
) -> "List[ExperimentSpec]":
    """The grid specs ``spec`` depends on, dependency order, each once.

    A grid spec is its own single dependency; a derived spec expands
    its bases recursively.  Custom specs raise
    :class:`ServeUnsupportedError` — an arbitrary ``compute`` thunk has
    no cell decomposition to key into the store.
    """
    if _seen is None:
        _seen = {}
    if spec.kind == "custom":
        raise ServeUnsupportedError(
            f"spec {spec.id!r} is a custom computation with no grid cells; "
            f"run it locally with run_spec()"
        )
    if spec.kind == "grid":
        if spec.id not in _seen:
            _seen[spec.id] = spec
        return list(_seen.values())
    for base in spec.base:
        expand_grid_specs(get_spec(base), _seen)
    return list(_seen.values())


def resolve_serve_engine(
    spec: ExperimentSpec, requested: "Optional[str]", default: str
) -> str:
    """Request > spec hint > server default; always a valid engine name."""
    name = requested or spec.engine or default
    if name not in engine_mod.ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(engine_mod.ENGINES)}"
        )
    return name


def plan_grid(
    spec: ExperimentSpec, engine: str
) -> GridPlan:
    """Enumerate one grid spec's cells and their content identities.

    Uses exactly the identity scheme the sweep runner journals under
    (``digest=True``, the spec's evaluator, batch canonicalised to
    fast), so the plan's keys are the store's keys.
    """
    from ..perf.parallel import identity_for

    cells, traces_by_parameter = grid_cells(spec)
    identities = [
        identity_for(
            label, factory, parameter, trace, engine,
            digest=True, evaluator=spec.evaluator,
        )
        for label, factory, parameter, trace in cells
    ]
    return GridPlan(
        spec=spec,
        engine=engine,
        cells=cells,
        traces_by_parameter=traces_by_parameter,
        identities=identities,
    )


def _outcomes_from_store(plan: GridPlan, store: ResultStore) -> "List[CellOutcome]":
    """Envelope every cell straight from the store (the all-cached path).

    No sweep runner, no trace generation, no simulator: one index
    lookup per cell.  Callers must have checked that every key is
    present; a race that lost an entry surfaces as the metrics-less
    envelope failing validation in :func:`grid_from_outcomes`.
    """
    outcomes: "List[CellOutcome]" = []
    for identity, key in zip(plan.identities, plan.keys):
        metrics = store.metrics(key) if key is not None else None
        outcome = CellOutcome(identity=identity, cached=True)
        if metrics is None:
            outcome.error = f"store entry for {identity.describe()} disappeared"
        else:
            outcome.metrics = metrics
            outcome.miss_rate = metrics.get("miss_rate")
        outcomes.append(outcome)
    return outcomes


def _spec_value(spec: ExperimentSpec, grids: "Dict[str, object]") -> object:
    """Fold grid results into the spec's final value (derives recursively)."""
    if spec.kind == "grid":
        return collect_result(spec, grids[spec.id])
    bases = [_spec_value(get_spec(base), grids) for base in spec.base]
    return spec.derive(*bases)  # type: ignore[misc]


def _result_payload(result: object) -> "Optional[dict]":
    """A JSON form of a collected result, when one exists."""
    from ..analysis import serialize
    from ..analysis.sweep import SweepResult
    from ..caches.stats import CacheStats

    try:
        from ..hierarchy import TwoLevelResult
    except ImportError:  # pragma: no cover - hierarchy is always present
        TwoLevelResult = ()  # type: ignore[assignment]
    if isinstance(result, SweepResult):
        return serialize.sweep_to_dict(result)
    if isinstance(result, CacheStats):
        return serialize.stats_to_dict(result)
    if isinstance(result, TwoLevelResult):
        return serialize.two_level_to_dict(result)
    return None


def _cell_payload(
    identity: CellIdentity, key: "Optional[str]", outcome: CellOutcome
) -> dict:
    return {
        "key": key,
        "label": identity.label,
        "parameter": repr(identity.parameter),
        "trace": identity.trace_name,
        "trace_kind": identity.trace_kind,
        "trace_refs": identity.trace_refs,
        "engine": identity.engine,
        "cached": outcome.cached,
        "metrics": outcome.metrics,
    }


# -- run execution -------------------------------------------------------------

Emit = Callable[[dict], None]


def check_negative_cache(
    store: ResultStore,
    plans: "List[GridPlan]",
    neg_ttl: float,
    total: int,
    now: "Optional[float]" = None,
) -> None:
    """Raise the cached failure for any pending cell inside the TTL.

    Every pending (uncached, journalable) cell key is checked against
    the store's ``sweep-cell-error`` index.  A fresh entry — recorded
    less than ``neg_ttl`` seconds ago — is served back as a
    :class:`~repro.perf.parallel.SweepCellError` built from cached
    envelopes, before a single trace is generated; a stale entry counts
    as expired and the cell is simulated again.  ``neg_ttl <= 0``
    disables the check entirely.
    """
    if neg_ttl <= 0:
        return
    now = time.time() if now is None else now
    cached: "List[CellOutcome]" = []
    misses = 0
    expired = 0
    for plan in plans:
        for identity, key in zip(plan.identities, plan.keys):
            if key is None or key in store:
                continue
            entry = store.error_entry(key)
            if entry is None:
                misses += 1
                continue
            age = now - float(entry["recorded_at"])
            if age > neg_ttl:
                expired += 1
                continue
            outcome = CellOutcome(identity=identity, cached=True)
            outcome.error = (
                f"cached failure ({age:.1f}s ago, ttl {neg_ttl:g}s): "
                f"{entry['error']}"
            )
            cached.append(outcome)
    obs_metrics.counter("serve.negcache.hits", len(cached))
    obs_metrics.counter("serve.negcache.misses", misses)
    obs_metrics.counter("serve.negcache.expired", expired)
    if cached:
        raise SweepCellError(cached, total)


def record_run_failures(
    store: ResultStore, exc: SweepCellError, neg_ttl: float
) -> int:
    """Record a run's failed cells into the negative cache; return count."""
    if neg_ttl <= 0:
        return 0
    failures = [
        (outcome.identity.key(), outcome.error or "sweep cell failed")
        for outcome in exc.failures
        if outcome.identity.journalable and not outcome.cached
    ]
    store.record_errors(failures)
    obs_metrics.counter("serve.negcache.stored", len(failures))
    return len(failures)


def execute_run(
    store: ResultStore,
    spec: ExperimentSpec,
    emit: Emit,
    engine: "Optional[str]" = None,
    workers: "Optional[int]" = None,
    default_engine: str = DEFAULT_SERVE_ENGINE,
    neg_ttl: float = 0.0,
    backend: "Optional[str]" = None,
    default_backend: "Optional[str]" = None,
) -> dict:
    """Serve one run request: plan, answer from store, compute the rest.

    Emits a ``plan`` event, one ``cell`` event per newly resolved cell
    (none on the all-cached path), and returns the ``done`` event
    payload (the caller emits it).  Raises
    :class:`~repro.perf.parallel.SweepCellError` if any cell fails —
    with ``neg_ttl > 0`` fresh failures are recorded into the store's
    negative cache and repeat requests inside the TTL raise the cached
    error without simulating — and :class:`ServeUnsupportedError` for
    custom specs.
    """
    started_at = time.time()
    wall_started = time.perf_counter()
    cpu_started = time.process_time()

    run_backend = backend or default_backend
    if run_backend is not None and run_backend not in backend_names():
        raise ValueError(
            f"unknown backend {run_backend!r}; expected one of "
            f"{sorted(backend_names())}"
        )
    with obs_tracing.span(
        "execute_run",
        spec=spec.id,
        engine=engine or default_engine,
        backend=run_backend or "auto",
    ) as run_span:
        done = _execute_run_inner(
            store, spec, emit, engine, workers, default_engine,
            neg_ttl, run_backend, started_at, wall_started, cpu_started,
        )
        if run_span is not None:
            manifest = done.get("manifest", {})
            run_span.attrs["run_id"] = done.get("run_id")
            run_span.attrs["cells_computed"] = manifest.get("cells_computed")
    return done


def _execute_run_inner(
    store: ResultStore,
    spec: ExperimentSpec,
    emit: Emit,
    engine: "Optional[str]",
    workers: "Optional[int]",
    default_engine: str,
    neg_ttl: float,
    run_backend: "Optional[str]",
    started_at: float,
    wall_started: float,
    cpu_started: float,
) -> dict:
    grids = expand_grid_specs(spec)
    plans = [
        plan_grid(grid, resolve_serve_engine(grid, engine, default_engine))
        for grid in grids
    ]
    store.refresh()
    total = sum(len(plan.cells) for plan in plans)
    missing = [
        sum(1 for key in plan.keys if key is None or key not in store)
        for plan in plans
    ]
    pending = sum(missing)
    emit(
        {
            "event": "plan",
            "spec": spec.id,
            "fingerprint": fingerprint_digest(spec),
            "grids": [plan.spec.id for plan in plans],
            "engine": plans[0].engine if plans else default_engine,
            "backend": run_backend or "auto",
            "cells": total,
            "cached": total - pending,
            "pending": pending,
        }
    )
    if pending:
        check_negative_cache(store, plans, neg_ttl, total)

    computed = 0
    grid_results: "Dict[str, object]" = {}
    cell_payloads: "List[dict]" = []
    for plan, plan_missing in zip(plans, missing):
        if plan_missing == 0:
            outcomes = _outcomes_from_store(plan, store)
            obs_metrics.counter("serve.cells.cached", len(outcomes))
        else:
            def _on_outcome(_telemetry, outcome: CellOutcome) -> None:
                emit(
                    {
                        "event": "cell",
                        "grid": plan.spec.id,
                        "label": outcome.identity.label,
                        "parameter": repr(outcome.identity.parameter),
                        "trace": outcome.identity.trace_name,
                        "cached": outcome.cached,
                        "ok": outcome.ok,
                        "seconds": round(outcome.seconds, 6),
                        "error": outcome.error,
                    }
                )

            with outcome_observer(_on_outcome):
                outcomes = run_labeled_cells(
                    plan.cells,
                    engine=plan.engine,
                    workers=workers,
                    journal=store,
                    progress=False,
                    evaluator=plan.spec.evaluator,
                    backend=run_backend,
                )
            failures = [outcome for outcome in outcomes if not outcome.ok]
            if failures:
                # The failed cells become negative-cache entries so the
                # next request for this spec fails from the index, not
                # from another full simulation pass.
                exc = SweepCellError(failures, len(outcomes))
                record_run_failures(store, exc, neg_ttl)
                raise exc
            fresh = sum(1 for outcome in outcomes if not outcome.cached)
            computed += fresh
            obs_metrics.counter("serve.cells.computed", fresh)
            obs_metrics.counter("serve.cells.cached", len(outcomes) - fresh)
        grid_results[plan.spec.id] = grid_from_outcomes(
            plan.spec, outcomes, plan.traces_by_parameter
        )
        cell_payloads.extend(
            _cell_payload(identity, key, outcome)
            for identity, key, outcome in zip(plan.identities, plan.keys, outcomes)
        )

    result = _spec_value(spec, grid_results)
    report = render_spec(spec, result)
    run_id = f"{spec.id}-{uuid.uuid4().hex[:12]}"
    manifest = build_manifest(
        spec_id=spec.id,
        spec_fingerprint=fingerprint_digest(spec),
        engine=plans[0].engine if plans else default_engine,
        workers=workers,
        wall_seconds=time.perf_counter() - wall_started,
        cpu_seconds=time.process_time() - cpu_started,
        started_at=started_at,
        extra={
            "run_id": run_id,
            "served_by": f"repro.serve/{SERVE_VERSION}",
            "backend": run_backend or "auto",
            "cells_total": total,
            "cells_cached": total - computed,
            "cells_computed": computed,
            "store_entries": len(store),
        },
    )
    manifest_path = write_manifest(store.primary_dir / "runs" / run_id, manifest)
    _log.info(
        "run %s: %d cells (%d computed) in %.3fs [manifest %s]",
        spec.id, total, computed, manifest["wall_seconds"], manifest_path,
    )
    return {
        "event": "done",
        "spec": spec.id,
        "run_id": run_id,
        "cells": cell_payloads,
        "result": _result_payload(result),
        "report": report,
        "manifest": manifest,
    }


# -- the HTTP layer ------------------------------------------------------------


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ResultServer`."""

    server_version = f"repro-serve/{SERVE_VERSION}"
    protocol_version = "HTTP/1.0"  # stream then close; no chunked framing

    @property
    def app(self) -> "ResultServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        _log.debug("%s %s", self.address_string(), format % args)

    # -- plumbing --------------------------------------------------------------

    def _send_json(
        self, status: int, payload: dict, etag: "Optional[str]" = None
    ) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _etag_matches(self, etag: str) -> bool:
        """Whether the request's ``If-None-Match`` covers ``etag``.

        Accepts a comma-separated candidate list and the ``*`` wildcard;
        ``W/`` weak prefixes compare equal to their strong form (the
        weak comparison is the correct one for a 304).
        """
        raw = self.headers.get("If-None-Match")
        if not raw:
            return False
        candidates = {token.strip() for token in raw.split(",") if token.strip()}
        if "*" in candidates:
            return True
        candidates |= {
            token[2:] for token in candidates if token.startswith("W/")
        }
        return etag in candidates

    def _route(self) -> "Tuple[str, List[str]]":
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        route = "/" + parts[0] if parts else "/"
        return route, parts[1:]

    def _observed(self, handler: "Callable[[List[str]], int]") -> None:
        route, rest = self._route()
        started = time.perf_counter()
        status = 500
        try:
            with obs_tracing.span(
                "serve.request", route=route, method=self.command
            ):
                status = handler(rest)
        except BrokenPipeError:  # client went away mid-response
            status = 499
        except Exception as exc:
            _log.warning("%s %s failed: %s", self.command, self.path, exc)
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass
        finally:
            seconds = time.perf_counter() - started
            obs_metrics.counter(
                "serve.requests", route=route, method=self.command,
                status=str(status),
            )
            obs_metrics.histogram(
                "serve.request.seconds", seconds,
                bounds=SERVE_REQUEST_BUCKETS, route=route,
            )

    # -- GET routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._observed(self._get)

    def _get(self, rest: "List[str]") -> int:
        route, _ = self._route()
        if route == "/specs":
            return self._get_specs()
        if route == "/spec" and len(rest) == 1:
            return self._get_spec(rest[0])
        if route == "/cell" and len(rest) == 1:
            return self._get_cell(rest[0])
        if route == "/healthz":
            return self._get_healthz()
        if route == "/statusz":
            return self._get_statusz()
        if route == "/metrics":
            return self._get_metrics()
        self._send_json(404, {"error": f"unknown route {self.path!r}"})
        return 404

    def _wants_prometheus(self) -> bool:
        """Content negotiation for ``/metrics``.

        An explicit ``?format=`` query parameter wins (``prometheus`` →
        text exposition, anything else → JSON); otherwise a client
        whose ``Accept`` prefers ``text/plain`` gets the exposition
        format, everyone else the JSON registry dump.
        """
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        for pair in query.split("&"):
            if pair.startswith("format="):
                return pair[len("format="):] == "prometheus"
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept

    def _get_metrics(self) -> int:
        if self._wants_prometheus():
            body = render_prometheus(obs_metrics.current_registry()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return 200
        self._send_json(
            200,
            {
                "metrics": obs_metrics.current_registry().export(),
                "backend": self.app.default_backend or "auto",
                "fleet_workers": live_workers(),
            },
        )
        return 200

    def _get_specs(self) -> int:
        specs = [
            {
                "id": spec.id,
                "title": spec.title,
                "kind": spec.kind,
                "hidden": spec.hidden,
                "fingerprint": fingerprint_digest(spec),
            }
            for spec in all_specs(include_hidden=True)
        ]
        self._send_json(200, {"specs": specs, "version": SERVE_VERSION})
        return 200

    def _get_spec(self, spec_id: str) -> int:
        try:
            spec = get_spec(spec_id)
        except KeyError:
            self._send_json(404, {"error": f"unknown spec {spec_id!r}"})
            return 404
        # The ETag commits to the spec's content fingerprint and the
        # store's generation.revision token — it changes exactly when
        # the answer could (a recorded cell, a compaction, a registry
        # edit).  Matching it here skips the cell planning below, which
        # is the expensive part of this route.
        self.app.store.refresh()
        etag = f'"{fingerprint_digest(spec)}-{self.app.store.state_token()}"'
        if self._etag_matches(etag):
            self._send_not_modified(etag)
            return 304
        payload: dict = {
            "id": spec.id,
            "title": spec.title,
            "kind": spec.kind,
            "hidden": spec.hidden,
            "fingerprint": fingerprint_digest(spec),
        }
        try:
            grids = expand_grid_specs(spec)
        except ServeUnsupportedError:
            payload["servable"] = False
        else:
            plans = [
                plan_grid(
                    grid,
                    resolve_serve_engine(grid, None, self.app.default_engine),
                )
                for grid in grids
            ]
            total = sum(len(plan.cells) for plan in plans)
            cached = sum(
                1
                for plan in plans
                for key in plan.keys
                if key is not None and key in self.app.store
            )
            payload.update(
                servable=True,
                grids=[plan.spec.id for plan in plans],
                engine=plans[0].engine if plans else self.app.default_engine,
                cells=total,
                cached=cached,
            )
        self._send_json(200, payload, etag=etag)
        return 200

    def _get_cell(self, key: str) -> int:
        self.app.store.refresh()
        entry = self.app.store.get(key)
        if entry is None:
            self._send_json(404, {"error": f"no stored cell for key {key!r}"})
            return 404
        # A cell answer is a pure function of the stored entry, so its
        # content hash is the exact ETag: repeats stay 304 across
        # unrelated store writes and change only if the entry itself is
        # superseded (last-wins replay from a later source).
        etag = f'"{content_key(entry)[:32]}"'
        if self._etag_matches(etag):
            self._send_not_modified(etag)
            return 304
        self._send_json(
            200,
            {"key": key, "entry": entry, "metrics": self.app.store.metrics(key)},
            etag=etag,
        )
        return 200

    def _get_healthz(self) -> int:
        self._send_json(
            200,
            {
                "ok": True,
                "version": SERVE_VERSION,
                "engine": self.app.default_engine,
                "backend": self.app.default_backend or "auto",
                "fleet_workers": live_workers(),
                "specs": len(all_specs(include_hidden=True)),
                "generation": self.app.store.generation,
                "neg_ttl": self.app.neg_ttl,
                "store": self.app.store.stats().to_dict(),
            },
        )
        return 200

    def _get_statusz(self) -> int:
        """Live-run snapshot: what the daemon is doing *right now*.

        Where ``/healthz`` answers "is the process up", this answers
        "what is it serving": the active ``POST /run`` requests with
        elapsed seconds, each live fleet worker with its in-flight cell,
        and the store/negcache state a stuck-run investigation needs.
        """
        registry = obs_metrics.current_registry()
        negcache = {
            "ttl": self.app.neg_ttl,
            "hits": registry.total("serve.negcache.hits") or 0,
            "misses": registry.total("serve.negcache.misses") or 0,
            "expired": registry.total("serve.negcache.expired") or 0,
            "stored": registry.total("serve.negcache.stored") or 0,
        }
        self._send_json(
            200,
            {
                "ok": True,
                "version": SERVE_VERSION,
                "active_runs": self.app.active_runs(),
                "fleet": {
                    "live": live_workers(),
                    "workers": live_worker_status(),
                },
                "store": {
                    "generation": self.app.store.generation,
                    "state_token": self.app.store.state_token(),
                    "entries": len(self.app.store),
                },
                "negcache": negcache,
            },
        )
        return 200

    # -- POST /run -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        self._observed(self._post)

    def _post(self, rest: "List[str]") -> int:
        route, _ = self._route()
        if route != "/run":
            self._send_json(404, {"error": f"unknown route {self.path!r}"})
            return 404
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
            if "spec" not in body:
                raise ValueError("request body needs a 'spec' field")
            try:
                spec = get_spec(str(body["spec"]))
            except KeyError as exc:
                raise ValueError(str(exc.args[0])) from None
            engine = body.get("engine")
            workers = body.get("workers")
            if workers is not None:
                workers = int(workers)
                if workers < 1:
                    raise ValueError("workers must be at least 1")
            backend = body.get("backend")
            if backend is not None:
                backend = str(backend)
                if backend not in backend_names():
                    raise ValueError(
                        f"unknown backend {backend!r}; expected one of "
                        f"{sorted(backend_names())}"
                    )
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return 400

        # Stream NDJSON events as the run progresses.  A client that
        # disconnects mid-stream stops receiving, but the run finishes
        # and its results stay in the store for the next request.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        stream_broken = [False]

        def emit(event: dict) -> None:
            if stream_broken[0]:
                return
            try:
                self.wfile.write(_json_bytes(event))
                self.wfile.flush()
            except OSError:
                stream_broken[0] = True

        obs_metrics.counter("serve.runs", spec=spec.id)
        token = self.app.register_run(spec.id)
        try:
            with self.app.run_lock(spec.id):
                done = execute_run(
                    self.app.store,
                    spec,
                    emit,
                    engine=engine,
                    workers=workers,
                    default_engine=self.app.default_engine,
                    neg_ttl=self.app.neg_ttl,
                    backend=backend,
                    default_backend=self.app.default_backend,
                )
        except (ServeUnsupportedError, SweepCellError, ValueError) as exc:
            emit({"event": "error", "error": f"{type(exc).__name__}: {exc}"})
            obs_metrics.counter("serve.run_errors", spec=spec.id)
            return 200
        finally:
            self.app.unregister_run(token)
        emit(done)
        return 200


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    app: "ResultServer"


class ResultServer:
    """The serve daemon: a result store bound to an HTTP address.

    ``host``/``port`` default to the ``REPRO_SERVE_HOST``/``PORT``
    knobs; pass ``port=0`` for an OS-assigned ephemeral port (tests).
    ``neg_ttl`` (seconds) bounds the negative-result cache and defaults
    to ``REPRO_SERVE_NEG_TTL``; ``0`` disables it.  ``default_backend``
    names the sweep backend server-side runs use when the request body
    carries none (``None`` = the sweep runner's automatic choice, or
    ``REPRO_BACKEND``).  Use as a context
    manager, or call :meth:`start` / :meth:`serve_forever` and
    :meth:`close` explicitly.
    """

    def __init__(
        self,
        store: ResultStore,
        host: "Optional[str]" = None,
        port: "Optional[int]" = None,
        default_engine: str = DEFAULT_SERVE_ENGINE,
        neg_ttl: "Optional[float]" = None,
        default_backend: "Optional[str]" = None,
    ) -> None:
        if default_engine not in engine_mod.ENGINES:
            raise ValueError(
                f"unknown engine {default_engine!r}; expected one of "
                f"{sorted(engine_mod.ENGINES)}"
            )
        if default_backend is not None and default_backend not in backend_names():
            raise ValueError(
                f"unknown backend {default_backend!r}; expected one of "
                f"{sorted(backend_names())}"
            )
        self.store = store
        self.default_engine = default_engine
        self.default_backend = default_backend
        self.neg_ttl = env.serve_neg_ttl() if neg_ttl is None else float(neg_ttl)
        if self.neg_ttl < 0:
            raise ValueError("neg_ttl must be >= 0 (0 disables the negative cache)")
        self._httpd = _Server(
            (host if host is not None else env.serve_host(),
             port if port is not None else env.serve_port()),
            _Handler,
        )
        self._httpd.app = self
        self._thread: "Optional[threading.Thread]" = None
        self._locks_guard = threading.Lock()
        self._run_locks: "Dict[str, threading.Lock]" = {}
        self._active_guard = threading.Lock()
        self._active_runs: "Dict[str, Dict[str, object]]" = {}

    def run_lock(self, spec_id: str) -> threading.Lock:
        """The per-spec lock serialising concurrent runs of one spec."""
        with self._locks_guard:
            lock = self._run_locks.get(spec_id)
            if lock is None:
                lock = self._run_locks[spec_id] = threading.Lock()
            return lock

    # -- live-run tracking (the /statusz surface) -----------------------------

    def register_run(self, spec_id: str) -> str:
        """Track one in-flight ``POST /run``; returns its token."""
        token = uuid.uuid4().hex[:12]
        with self._active_guard:
            self._active_runs[token] = {
                "spec": spec_id,
                "started": time.monotonic(),
            }
        return token

    def unregister_run(self, token: str) -> None:
        with self._active_guard:
            self._active_runs.pop(token, None)

    def active_runs(self) -> "List[dict]":
        """Snapshot of in-flight runs (spec id + elapsed seconds)."""
        now = time.monotonic()
        with self._active_guard:
            return [
                {
                    "token": token,
                    "spec": entry["spec"],
                    "elapsed_seconds": round(now - entry["started"], 3),  # type: ignore[operator]
                }
                for token, entry in sorted(self._active_runs.items())
            ]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ResultServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        _log.info("serving result store at %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        _log.info("serving result store at %s", self.url)
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ResultServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
