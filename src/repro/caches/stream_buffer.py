"""Stream buffer prefetcher (Jouppi 1990).

On a miss, the buffer is (re)loaded with the ``depth`` lines following
the miss line.  A later reference that matches the buffer head promotes
that line into the cache without a memory miss.  The paper notes stream
buffers reduce the miss *penalty* but not the number of conflict misses,
so they compose with dynamic exclusion; this model lets the benchmark
suite demonstrate that complementarity.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, List, Optional

from ..trace.reference import RefKind
from .base import AccessResult, Cache
from .geometry import CacheGeometry

_HIT = AccessResult(hit=True)


class StreamBufferCache(Cache):
    """Direct-mapped cache fronted by a single sequential stream buffer.

    ``stats.misses`` counts *memory* fetch events: references satisfied
    by the stream buffer count as hits (``buffer_hits``), since the line
    was already on its way from the next level.
    """

    def __init__(self, geometry: CacheGeometry, depth: int = 4, name: str = "") -> None:
        if geometry.associativity != 1:
            raise ValueError("StreamBufferCache requires a direct-mapped geometry")
        if depth < 1:
            raise ValueError("stream buffer depth must be at least 1")
        super().__init__(geometry, name=name or f"stream-buffer-{depth}")
        self.depth = depth
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.num_sets - 1
        self._tags: List[Optional[int]] = [None] * geometry.num_sets
        self._buffer: Deque[int] = deque()

    def _reset_state(self) -> None:
        self._tags = [None] * self.geometry.num_sets
        self._buffer = deque()

    def _install(self, line: int) -> Optional[int]:
        """Store ``line`` into its frame, returning the displaced line."""
        index = line & self._index_mask
        displaced = self._tags[index]
        self._tags[index] = line
        return displaced if displaced != line else None

    def _refill_buffer(self, miss_line: int) -> None:
        self._buffer = deque(miss_line + offset for offset in range(1, self.depth + 1))

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        resident = self._tags[index]
        if resident == line:
            stats.hits += 1
            return _HIT
        buffer = self._buffer
        if buffer and buffer[0] == line:
            # Prefetch hit: promote the head into the cache and extend
            # the stream by one line.
            stats.hits += 1
            stats.buffer_hits += 1
            buffer.popleft()
            buffer.append(line + self.depth)
            displaced = self._install(line)
            if displaced is not None:
                stats.evictions += 1
            return _HIT
        stats.misses += 1
        if resident is None:
            stats.cold_misses += 1
        else:
            stats.evictions += 1
        self._install(line)
        self._refill_buffer(line)
        if resident is None:
            return AccessResult(hit=False)
        return AccessResult(hit=False, evicted_line=resident)

    def resident_lines(self) -> FrozenSet[int]:
        return frozenset(tag for tag in self._tags if tag is not None)
