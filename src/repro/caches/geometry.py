"""Cache geometry: the tag / set-index / offset arithmetic.

Every simulator in :mod:`repro.caches` and :mod:`repro.core` shares this
class so that the address decomposition is defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a cache: capacity, line size, and associativity.

    Parameters
    ----------
    size:
        Total data capacity in bytes.
    line_size:
        Line (block) size in bytes.
    associativity:
        Ways per set; 1 for direct-mapped.  Use
        :meth:`fully_associative` for a single-set cache.
    """

    size: int
    line_size: int
    associativity: int = 1

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line size must be a power of two, got {self.line_size}")
        if self.size <= 0:
            raise ValueError(f"cache size must be positive, got {self.size}")
        if self.line_size > self.size:
            raise ValueError("line size cannot exceed cache size")
        if self.associativity < 1:
            raise ValueError("associativity must be at least 1")
        if self.size % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        lines = self.size // self.line_size
        if lines % self.associativity:
            raise ValueError(
                f"{lines} lines do not divide evenly into "
                f"{self.associativity}-way sets"
            )
        # Only the set count must be a power of two (index bits); odd
        # associativities like 3-way / 12KB caches are legal.
        if not _is_power_of_two(lines // self.associativity):
            raise ValueError("number of sets must be a power of two")

    @classmethod
    def fully_associative(cls, size: int, line_size: int) -> "CacheGeometry":
        """A single-set cache holding ``size / line_size`` ways."""
        return cls(size=size, line_size=line_size, associativity=size // line_size)

    # -- derived quantities ----------------------------------------------

    @property
    def num_lines(self) -> int:
        """Total number of lines."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        return _log2(self.line_size)

    @property
    def index_bits(self) -> int:
        return _log2(self.num_sets)

    # -- address decomposition ---------------------------------------------

    def line_address(self, addr: int) -> int:
        """Address divided by line size (unique id of the memory line)."""
        return addr >> self.offset_bits

    def set_index(self, addr: int) -> int:
        """Which set a byte address maps to."""
        return (addr >> self.offset_bits) & (self.num_sets - 1)

    def set_index_of_line(self, line_addr: int) -> int:
        """Which set a line address maps to."""
        return line_addr & (self.num_sets - 1)

    def tag(self, addr: int) -> int:
        """Tag bits of a byte address."""
        return addr >> (self.offset_bits + self.index_bits)

    def line_base(self, addr: int) -> int:
        """Byte address of the start of the line containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def scaled(self, factor: int) -> "CacheGeometry":
        """A geometry ``factor`` times larger (same line size and ways)."""
        return CacheGeometry(self.size * factor, self.line_size, self.associativity)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.associativity == self.num_lines:
            org = "fully-associative"
        elif self.associativity == 1:
            org = "direct-mapped"
        else:
            org = f"{self.associativity}-way"
        return f"{self.size // 1024}KB/{self.line_size}B {org}"
