"""Single-pass stack simulation (Mattson et al.).

LRU obeys the stack-inclusion property, so one pass over a trace yields
the miss counts of *every* capacity at once:

* :func:`lru_miss_counts` — fully-associative LRU for any set of
  capacities, via the reuse-distance machinery in
  :mod:`repro.trace.stats`;
* :func:`set_lru_miss_counts` — set-associative LRU with a fixed number
  of sets, for every associativity from 1 to ``max_ways``, via per-set
  stack distances.

These make sweep experiments cheap and, more importantly, serve as an
independent oracle for the event-driven simulators: the property tests
check :class:`~repro.caches.set_associative.SetAssociativeCache`
against this module configuration by configuration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..trace.stats import reuse_distances
from ..trace.trace import Trace


def lru_miss_counts(
    trace: Trace, capacities_lines: Sequence[int], line_size: int = 4
) -> Dict[int, int]:
    """Miss counts of fully-associative LRU caches of each capacity.

    ``capacities_lines`` are capacities in *lines*.  One pass computes
    all of them (stack inclusion: a reference misses at capacity C iff
    its reuse distance is >= C or it is a first use).
    """
    for capacity in capacities_lines:
        if capacity <= 0:
            raise ValueError("capacities must be positive")
    distances = reuse_distances(trace, line_size)
    counts = {capacity: 0 for capacity in capacities_lines}
    for distance in distances.tolist():
        for capacity in capacities_lines:
            if distance < 0 or distance >= capacity:
                counts[capacity] += 1
    return counts


def set_lru_miss_counts(
    trace: Trace,
    num_sets: int,
    max_ways: int,
    line_size: int = 4,
) -> Dict[int, int]:
    """Miss counts of ``num_sets``-set LRU caches for ways 1..max_ways.

    Maintains one LRU stack per set; the stack position of each
    reference gives its per-set stack distance, and a reference misses
    with A ways iff that distance is >= A (or the line is new).  One
    pass covers every associativity.
    """
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError("num_sets must be a positive power of two")
    if max_ways < 1:
        raise ValueError("max_ways must be at least 1")
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError("line_size must be a positive power of two")

    offset_bits = line_size.bit_length() - 1
    set_mask = num_sets - 1
    # Per set, an MRU-first list of lines.  Stacks are truncated to
    # max_ways since deeper positions always miss at every tracked
    # associativity.
    stacks: Dict[int, List[int]] = {}
    counts = {ways: 0 for ways in range(1, max_ways + 1)}
    for addr, _ in trace.pairs():
        line = addr >> offset_bits
        index = line & set_mask
        stack = stacks.setdefault(index, [])
        try:
            depth = stack.index(line)
        except ValueError:
            depth = -1
        if depth < 0:
            # New (or long-evicted) line: misses at every associativity.
            for ways in counts:
                counts[ways] += 1
            stack.insert(0, line)
            del stack[max_ways:]
        else:
            # Misses wherever the associativity is <= its stack depth.
            for ways in range(1, depth + 1):
                counts[ways] += 1
            del stack[depth]
            stack.insert(0, line)
    return counts


def direct_mapped_miss_counts_by_size(
    trace: Trace, sizes: Sequence[int], line_size: int = 4
) -> Dict[int, int]:
    """Miss counts of direct-mapped caches of several sizes, one pass.

    Direct-mapped caches do not stack (a bigger DM cache can miss where
    a smaller one hits), so this simply advances all tag arrays in a
    single trace traversal — cheaper than one pass per size because the
    trace decode cost is shared.
    """
    offset_bits = line_size.bit_length() - 1
    configs = []
    for size in sizes:
        if size <= 0 or size % line_size:
            raise ValueError(f"bad cache size {size}")
        num_sets = size // line_size
        if num_sets & (num_sets - 1):
            raise ValueError(f"size {size} does not give a power-of-two set count")
        configs.append((size, num_sets - 1, [None] * num_sets))
    counts = {size: 0 for size in sizes}
    for addr, _ in trace.pairs():
        line = addr >> offset_bits
        for size, mask, tags in configs:
            index = line & mask
            if tags[index] != line:
                counts[size] += 1
                tags[index] = line
    return counts
