"""Cache substrate: geometries, stats, and the baseline cache models."""

from .geometry import CacheGeometry
from .stats import CacheStats, SimulationResult, percent_reduction
from .base import AccessResult, Cache, OfflineCache
from .direct_mapped import DirectMappedCache
from .set_associative import FullyAssociativeCache, SetAssociativeCache
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .optimal import (
    NEVER,
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
    next_use_times,
)
from .stack_sim import (
    direct_mapped_miss_counts_by_size,
    lru_miss_counts,
    set_lru_miss_counts,
)
from .victim import VictimCache
from .write_policy import TrafficStats, WritePolicy, WritePolicyCache
from .stream_buffer import StreamBufferCache

__all__ = [
    "NEVER",
    "AccessResult",
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "DirectMappedCache",
    "FIFOPolicy",
    "FullyAssociativeCache",
    "LRUPolicy",
    "OfflineCache",
    "OptimalCache",
    "OptimalDirectMappedCache",
    "OptimalLastLineCache",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SimulationResult",
    "StreamBufferCache",
    "TrafficStats",
    "WritePolicy",
    "WritePolicyCache",
    "VictimCache",
    "direct_mapped_miss_counts_by_size",
    "lru_miss_counts",
    "set_lru_miss_counts",
    "make_policy",
    "next_use_times",
    "percent_reduction",
]
