"""Victim cache (Jouppi 1990), the related-work comparison point.

A direct-mapped L1 backed by a small fully-associative buffer that holds
recently evicted lines.  A reference that misses L1 but hits the victim
buffer swaps the two lines and is counted as a hit (``buffer_hits``
records how many hits came from the buffer).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, List, Optional

from ..trace.reference import RefKind
from .base import AccessResult, Cache
from .geometry import CacheGeometry

_HIT = AccessResult(hit=True)
_COLD_MISS = AccessResult(hit=False)


class VictimCache(Cache):
    """Direct-mapped cache plus an ``entries``-deep victim buffer."""

    def __init__(self, geometry: CacheGeometry, entries: int = 4, name: str = "") -> None:
        if geometry.associativity != 1:
            raise ValueError("VictimCache requires a direct-mapped geometry")
        if entries < 1:
            raise ValueError("victim buffer needs at least one entry")
        super().__init__(geometry, name=name or f"victim-{entries}")
        self.entries = entries
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.num_sets - 1
        self._tags: List[Optional[int]] = [None] * geometry.num_sets
        # line -> None, ordered LRU-first.
        self._buffer: "OrderedDict[int, None]" = OrderedDict()

    def _reset_state(self) -> None:
        self._tags = [None] * self.geometry.num_sets
        self._buffer = OrderedDict()

    def _buffer_insert(self, line: int) -> None:
        buffer = self._buffer
        if line in buffer:
            buffer.move_to_end(line)
            return
        if len(buffer) >= self.entries:
            buffer.popitem(last=False)
        buffer[line] = None

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        tags = self._tags
        resident = tags[index]
        if resident == line:
            stats.hits += 1
            return _HIT
        buffer = self._buffer
        if line in buffer:
            # Swap: the victim-buffer line moves into L1, the displaced
            # L1 line takes its place in the buffer.
            stats.hits += 1
            stats.buffer_hits += 1
            del buffer[line]
            tags[index] = line
            if resident is not None:
                self._buffer_insert(resident)
            return _HIT
        stats.misses += 1
        tags[index] = line
        if resident is None:
            stats.cold_misses += 1
            return _COLD_MISS
        stats.evictions += 1
        self._buffer_insert(resident)
        return AccessResult(hit=False, evicted_line=resident)

    def resident_lines(self) -> FrozenSet[int]:
        resident = {tag for tag in self._tags if tag is not None}
        resident.update(self._buffer)
        return frozenset(resident)
