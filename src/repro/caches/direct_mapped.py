"""A conventional direct-mapped cache (the paper's baseline)."""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..trace.reference import RefKind
from ..trace.trace import Trace
from .base import AccessResult, Cache
from .geometry import CacheGeometry
from .stats import CacheStats

_HIT = AccessResult(hit=True)
_COLD_MISS = AccessResult(hit=False)


class DirectMappedCache(Cache):
    """Direct-mapped cache with always-allocate replacement.

    Every miss stores the fetched line, displacing whatever was resident
    (the behaviour dynamic exclusion improves on).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        allocate_on_miss: bool = True,
        name: str = "",
    ) -> None:
        if geometry.associativity != 1:
            raise ValueError("DirectMappedCache requires associativity 1")
        super().__init__(geometry, name=name or "direct-mapped")
        #: Whether a miss stores the fetched line.  The two-level
        #: hierarchy sets this False on the L2 of an exclusive design
        #: (paper Section 5): lines then enter L2 only via
        #: :meth:`install_line` (L1 victims and bypassed words).
        self.allocate_on_miss = allocate_on_miss
        self._tags: List[Optional[int]] = [None] * geometry.num_sets
        self._index_mask = geometry.num_sets - 1
        self._offset_bits = geometry.offset_bits

    def _reset_state(self) -> None:
        self._tags = [None] * self.geometry.num_sets

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        tags = self._tags
        resident = tags[index]
        if resident == line:
            stats.hits += 1
            return _HIT
        stats.misses += 1
        if not self.allocate_on_miss:
            stats.bypasses += 1
            return AccessResult(hit=False, bypassed=True)
        tags[index] = line
        if resident is None:
            stats.cold_misses += 1
            return _COLD_MISS
        stats.evictions += 1
        return AccessResult(hit=False, evicted_line=resident)

    def simulate(self, trace: Trace) -> CacheStats:
        """Stats-only fast path over :meth:`access`.

        Same state transitions and counters, but no per-reference
        :class:`AccessResult` allocation (``simulate`` callers never see
        the per-access results).  Subclasses that override ``access``
        keep the generic base-class loop.
        """
        if type(self) is not DirectMappedCache:
            return super().simulate(trace)
        tags = self._tags
        mask = self._index_mask
        shift = self._offset_bits
        hits = cold = evictions = bypasses = 0
        if self.allocate_on_miss:
            for addr in trace.addrs.tolist():
                line = addr >> shift
                index = line & mask
                resident = tags[index]
                if resident == line:
                    hits += 1
                elif resident is None:
                    cold += 1
                    tags[index] = line
                else:
                    evictions += 1
                    tags[index] = line
        else:
            for addr in trace.addrs.tolist():
                line = addr >> shift
                if tags[line & mask] == line:
                    hits += 1
                else:
                    bypasses += 1
        accesses = len(trace)
        stats = self.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += accesses - hits
        stats.cold_misses += cold
        stats.evictions += evictions
        stats.bypasses += bypasses
        return stats

    def install_line(self, line: int) -> Optional[int]:
        """Place ``line`` (a line address) without counting an access.

        Returns the displaced line address, if any.  Used by the
        hierarchy for victim transfers into an exclusive L2.
        """
        index = line & self._index_mask
        displaced = self._tags[index]
        self._tags[index] = line
        if displaced == line:
            return None
        return displaced

    def contains(self, addr: int) -> bool:
        # O(1) override of the base-class set construction: the two-level
        # hierarchy probes L2 residency on every L1 miss.
        line = addr >> self._offset_bits
        return self._tags[line & self._index_mask] == line

    def contains_line(self, line: int) -> bool:
        """O(1) residency check by line address."""
        return self._tags[line & self._index_mask] == line

    def resident_lines(self) -> FrozenSet[int]:
        return frozenset(tag for tag in self._tags if tag is not None)
