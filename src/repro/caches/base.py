"""The cache simulator interface.

Every cache model is a :class:`Cache`: a functional (timing-free)
simulator that is fed one reference at a time through :meth:`Cache.access`
and keeps :class:`~repro.caches.stats.CacheStats`.  Models that need the
whole trace in advance (the Belady-optimal cache) implement
:class:`OfflineCache` instead and are driven through :meth:`simulate`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..trace.reference import RefKind
from ..trace.trace import Trace
from .geometry import CacheGeometry
from .stats import CacheStats


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    ``evicted_line`` is the line address displaced by this access, if
    any.  ``bypassed`` means the access missed and the fetched line was
    deliberately not stored.
    """

    hit: bool
    bypassed: bool = False
    evicted_line: Optional[int] = None

    @property
    def miss(self) -> bool:
        return not self.hit


class Cache(abc.ABC):
    """Abstract online cache simulator."""

    def __init__(self, geometry: CacheGeometry, name: str = "") -> None:
        self.geometry = geometry
        self.name = name or type(self).__name__
        self.stats = CacheStats()

    @abc.abstractmethod
    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        """Simulate one reference and update the stats."""

    @abc.abstractmethod
    def resident_lines(self) -> FrozenSet[int]:
        """Line addresses currently stored (for tests and invariants)."""

    def contains(self, addr: int) -> bool:
        """Whether the line holding byte address ``addr`` is resident."""
        return self.geometry.line_address(addr) in self.resident_lines()

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear the cache arrays (subclass hook for :meth:`reset`)."""

    def simulate(self, trace: Trace) -> CacheStats:
        """Run an entire trace through the cache and return the stats."""
        access = self.access
        # ``kind`` is passed as a raw int (RefKind is an IntEnum) to keep
        # this hot loop cheap; no simulator branches on enum identity.
        for addr, kind in trace.pairs():
            access(addr, kind)  # type: ignore[arg-type]
        return self.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} {self.geometry}>"


class OfflineCache(abc.ABC):
    """A cache model that requires the full trace in advance."""

    def __init__(self, geometry: CacheGeometry, name: str = "") -> None:
        self.geometry = geometry
        self.name = name or type(self).__name__

    @abc.abstractmethod
    def simulate(self, trace: Trace) -> CacheStats:
        """Run the whole trace and return the stats."""
