"""Hit/miss accounting shared by every cache simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a simulation.

    ``bypasses`` counts misses where the fetched line was deliberately
    *not* stored (dynamic exclusion or optimal bypass); they are a subset
    of ``misses``.  ``buffer_hits`` counts references satisfied by an
    auxiliary structure (last-line buffer, victim cache, stream buffer)
    and are a subset of ``hits``.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    buffer_hits: int = 0
    cold_misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 for an untouched cache)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits per access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            bypasses=self.bypasses + other.bypasses,
            evictions=self.evictions + other.evictions,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            cold_misses=self.cold_misses + other.cold_misses,
        )

    def check(self) -> None:
        """Assert the internal consistency invariants."""
        if self.hits + self.misses != self.accesses:
            raise AssertionError(
                f"hits({self.hits}) + misses({self.misses}) != accesses({self.accesses})"
            )
        if self.bypasses > self.misses:
            raise AssertionError("bypasses cannot exceed misses")
        if self.buffer_hits > self.hits:
            raise AssertionError("buffer hits cannot exceed hits")
        if self.cold_misses > self.misses:
            raise AssertionError("cold misses cannot exceed misses")


@dataclass(frozen=True)
class SimulationResult:
    """A finished simulation: the configuration label plus its stats."""

    label: str
    stats: CacheStats
    trace_name: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate


def percent_reduction(baseline: float, improved: float) -> float:
    """Relative miss-rate reduction, in percent (positive = better).

    Matches the paper's "percentage reduction from the normal
    direct-mapped cache miss rate".

    A zero baseline with a zero improved rate is a genuine "no change"
    (0.0); a zero baseline with a nonzero improved rate is a regression
    whose relative size is undefined, and silently reporting "no
    change" would hide it — that case raises :class:`ValueError`.
    """
    if baseline == 0.0:
        if improved == 0.0:
            return 0.0
        raise ValueError(
            f"percent reduction from a 0.0 baseline is undefined "
            f"(improved miss rate is {improved!r}, a regression)"
        )
    return 100.0 * (baseline - improved) / baseline
