"""Hit/miss accounting shared by every cache simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a simulation.

    ``bypasses`` counts misses where the fetched line was deliberately
    *not* stored (dynamic exclusion or optimal bypass); they are a subset
    of ``misses``.  ``buffer_hits`` counts references satisfied by an
    auxiliary structure (last-line buffer, victim cache, stream buffer)
    and are a subset of ``hits``.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    buffer_hits: int = 0
    cold_misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 for an untouched cache)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits per access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            bypasses=self.bypasses + other.bypasses,
            evictions=self.evictions + other.evictions,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            cold_misses=self.cold_misses + other.cold_misses,
        )

    def check(self) -> None:
        """Assert the internal consistency invariants."""
        if self.hits + self.misses != self.accesses:
            raise AssertionError(
                f"hits({self.hits}) + misses({self.misses}) != accesses({self.accesses})"
            )
        if self.bypasses > self.misses:
            raise AssertionError("bypasses cannot exceed misses")
        if self.buffer_hits > self.hits:
            raise AssertionError("buffer hits cannot exceed hits")
        if self.cold_misses > self.misses:
            raise AssertionError("cold misses cannot exceed misses")


@dataclass
class ExclusionEvents:
    """Paper-mechanism event counts for one dynamic-exclusion run.

    These sit *beside* :class:`CacheStats` (never inside it — the stats
    shape is part of the serialisation/golden contract) and name the
    Figure 1 FSM activity the paper's argument rests on:

    * ``sticky_saves`` — bypasses where the sticky resident won the
      conflict (FSM row 5): each is one eviction the mechanism avoided;
    * ``hit_last_loads`` — evictions of a *sticky* resident forced
      because the incoming word's hit-last bit was set (row 4);
    * ``exclusion_flips`` — hit-last write-backs that changed the
      store's answer for that word (including the first write over the
      cold default): the store actually learning, as opposed to
      re-confirming.

    Both engines publish the same counts per (benchmark, engine) to the
    obs metrics registry via :meth:`publish`, which is how the fast
    kernels are checked against the reference cache mechanism-for-
    mechanism, not just miss-rate-for-miss-rate.
    """

    sticky_saves: int = 0
    hit_last_loads: int = 0
    exclusion_flips: int = 0

    def as_dict(self) -> dict:
        return {
            "sticky_saves": self.sticky_saves,
            "hit_last_loads": self.hit_last_loads,
            "exclusion_flips": self.exclusion_flips,
        }

    def publish(self, benchmark: "str | None", engine: str) -> None:
        """Fold these counts into the obs metrics registry."""
        from ..obs import metrics as obs_metrics

        labels = {"benchmark": benchmark or "<unnamed>", "engine": engine}
        obs_metrics.counter("fsm.sticky_saves", self.sticky_saves, **labels)
        obs_metrics.counter("fsm.hit_last_loads", self.hit_last_loads, **labels)
        obs_metrics.counter("fsm.exclusion_flips", self.exclusion_flips, **labels)


@dataclass(frozen=True)
class SimulationResult:
    """A finished simulation: the configuration label plus its stats."""

    label: str
    stats: CacheStats
    trace_name: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate


def percent_reduction(baseline: float, improved: float) -> float:
    """Relative miss-rate reduction, in percent (positive = better).

    Matches the paper's "percentage reduction from the normal
    direct-mapped cache miss rate".

    A zero baseline with a zero improved rate is a genuine "no change"
    (0.0); a zero baseline with a nonzero improved rate is a regression
    whose relative size is undefined, and silently reporting "no
    change" would hide it — that case raises :class:`ValueError`.
    """
    if baseline == 0.0:
        if improved == 0.0:
            return 0.0
        raise ValueError(
            f"percent reduction from a 0.0 baseline is undefined "
            f"(improved miss rate is {improved!r}, a regression)"
        )
    return 100.0 * (baseline - improved) / baseline
