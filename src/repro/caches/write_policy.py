"""Write policies and memory-traffic accounting.

The paper's miss-rate studies ignore writes, but a deployable cache
library cannot: combined caches (Section 7) see stores, and the
two-level results (Section 5) ultimately matter because of the traffic
they remove.  This module adds write semantics as a *wrapper* around
any cache model, so exclusion caches get them for free:

* **write-back, write-allocate** (default): stores dirty the resident
  line; evicting a dirty line costs one line of write traffic;
* **write-through, no-write-allocate**: every store goes to memory;
  store misses do not allocate.

The wrapper tracks traffic in a :class:`TrafficStats` alongside the
inner cache's hit/miss stats.  Dirty state is keyed by line address and
synchronised with the inner cache through the
:class:`~repro.caches.base.AccessResult` eviction reports, which is why
every model in this package reports its evictions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Set

from ..trace.reference import RefKind
from .base import AccessResult, Cache


class WritePolicy(enum.Enum):
    """How stores interact with the cache and memory."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass
class TrafficStats:
    """Line-granular traffic between this cache and the next level."""

    lines_fetched: int = 0
    lines_written_back: int = 0
    words_written_through: int = 0

    def bytes_fetched(self, line_size: int) -> int:
        return self.lines_fetched * line_size

    def bytes_written(self, line_size: int, word_size: int = 4) -> int:
        return (
            self.lines_written_back * line_size
            + self.words_written_through * word_size
        )

    def total_bytes(self, line_size: int, word_size: int = 4) -> int:
        return self.bytes_fetched(line_size) + self.bytes_written(line_size, word_size)


class WritePolicyCache(Cache):
    """Write semantics around any inner cache model."""

    def __init__(
        self,
        inner: Cache,
        policy: WritePolicy = WritePolicy.WRITE_BACK,
        name: str = "",
    ) -> None:
        super().__init__(inner.geometry, name=name or f"{policy.value}+{inner.name}")
        self.inner = inner
        self.policy = policy
        self.traffic = TrafficStats()
        self._offset_bits = inner.geometry.offset_bits
        self._dirty: Set[int] = set()

    def _reset_state(self) -> None:
        self.inner.reset()
        self.traffic = TrafficStats()
        self._dirty = set()

    def _note_eviction(self, line: int) -> None:
        if line in self._dirty:
            self._dirty.discard(line)
            self.traffic.lines_written_back += 1

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        is_store = kind == RefKind.STORE
        stats = self.stats
        stats.accesses += 1

        if self.policy is WritePolicy.WRITE_THROUGH and is_store:
            self.traffic.words_written_through += 1
            # No-write-allocate: a store miss bypasses the cache; a
            # store hit updates the (clean, written-through) line.  The
            # inner cache must not allocate, so probe via contains().
            if self.inner.contains(addr):
                result = self.inner.access(addr, kind)
                stats.hits += 1
                return result
            stats.misses += 1
            stats.bypasses += 1
            return AccessResult(hit=False, bypassed=True)

        result = self.inner.access(addr, kind)
        if result.evicted_line is not None:
            self._note_eviction(result.evicted_line)
        if result.hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if result.bypassed:
                stats.bypasses += 1
                # Exclusion avoids *storing* the line, not fetching it:
                # a bypassed load/ifetch still transfers the line (the
                # word goes to the CPU, long lines to the side buffer).
                # A bypassed store writes its word instead.
                if is_store:
                    self.traffic.words_written_through += 1
                else:
                    self.traffic.lines_fetched += 1
            else:
                self.traffic.lines_fetched += 1
        if is_store and self.policy is WritePolicy.WRITE_BACK:
            if result.hit or not result.bypassed:
                self._dirty.add(line)
        return result

    def flush(self) -> int:
        """Write back every dirty line (e.g. at program end); returns
        how many lines were written."""
        written = len(self._dirty)
        self.traffic.lines_written_back += written
        self._dirty.clear()
        return written

    def dirty_lines(self) -> FrozenSet[int]:
        return frozenset(self._dirty)

    def resident_lines(self) -> FrozenSet[int]:
        return self.inner.resident_lines()
