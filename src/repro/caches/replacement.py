"""Replacement policies for set-associative caches.

A policy manages the victim choice within one set.  Policies are small
objects holding only per-set ordering metadata; the tags themselves live
in :class:`~repro.caches.set_associative.SetAssociativeCache`.
"""

from __future__ import annotations

import abc
import random
from typing import List


class ReplacementPolicy(abc.ABC):
    """Victim selection and use-tracking for one cache set."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abc.abstractmethod
    def fill(self, way: int) -> None:
        """Record that ``way`` was just filled."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Choose the way to evict (called only when the set is full)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with an explicit recency list.

    ``_order[0]`` is the least recently used way.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        order = self._order
        order.remove(way)
        order.append(way)

    def fill(self, way: int) -> None:
        self.touch(way)

    def victim(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """LRU-to-MRU way order (exposed for tests)."""
        return list(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest fill; hits do not reorder."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._next = 0

    def touch(self, way: int) -> None:
        pass

    def fill(self, way: int) -> None:
        if way == self._next:
            self._next = (self._next + 1) % self.ways

    def victim(self) -> int:
        return self._next


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim, with a per-policy deterministic stream."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        pass

    def fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Create a policy by name: ``lru``, ``fifo``, or ``random``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(ways, seed=seed)
    return cls(ways)
