"""Belady-optimal caches with bypass.

The paper's "optimal direct-mapped cache" stores lines in the same
locations a direct-mapped cache would, but on each miss chooses between
replacing the resident line and *bypassing* (forwarding the word to the
CPU without storing it), retaining whichever line will be used sooner.
With next-use times known, the greedy rule — keep the line whose next
reference comes first — is optimal for each set independently (standard
exchange argument; sets do not interact in a direct-mapped cache).

:class:`OptimalCache` generalises the rule to any associativity: evict
the way with the farthest next use, but only if the incoming line's next
use is sooner than that.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np

from ..trace.trace import Trace
from .base import OfflineCache
from .geometry import CacheGeometry
from .stats import CacheStats

#: Sentinel next-use time for "never referenced again".
NEVER = sys.maxsize


def next_use_times(line_addrs: "np.ndarray | List[int]") -> List[int]:
    """For each position, the index of the next reference to the same
    line (:data:`NEVER` if there is none).  O(n) reverse scan."""
    if isinstance(line_addrs, np.ndarray):
        lines = line_addrs.tolist()
    else:
        lines = list(line_addrs)
    n = len(lines)
    next_use: List[int] = [NEVER] * n
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        line = lines[i]
        next_use[i] = last_seen.get(line, NEVER)
        last_seen[line] = i
    return next_use


def next_use_array(lines: np.ndarray) -> np.ndarray:
    """Vectorised :func:`next_use_times` over a line-address array.

    A stable argsort groups the positions of each distinct line in
    increasing order, so within a group each position's next use is
    simply its successor; the last position of every group keeps
    :data:`NEVER`.  ``NEVER`` (``sys.maxsize``) is exactly ``int64``
    max, so the sentinel survives the dtype round-trip and compares
    identically to the Python implementation's.
    """
    n = int(lines.shape[0])
    next_use = np.full(n, NEVER, dtype=np.int64)
    if n == 0:
        return next_use
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    next_use[order[:-1][same]] = order[1:][same]
    return next_use


class OptimalCache(OfflineCache):
    """Belady replacement with bypass, any associativity."""

    def __init__(self, geometry: CacheGeometry, name: str = "") -> None:
        super().__init__(geometry, name=name or f"optimal-{geometry.associativity}-way")

    def simulate(self, trace: Trace) -> CacheStats:
        geometry = self.geometry
        shift = np.uint64(geometry.offset_bits)
        lines = (trace.addrs >> shift).tolist()
        future = next_use_times(lines)
        mask = geometry.num_sets - 1
        ways = geometry.associativity

        if ways == 1:
            return self._simulate_direct_mapped(lines, future, mask)
        return self._simulate_associative(lines, future, mask, ways)

    def _simulate_direct_mapped(
        self, lines: List[int], future: List[int], mask: int
    ) -> CacheStats:
        stats = CacheStats()
        resident: Dict[int, int] = {}
        resident_next: Dict[int, int] = {}
        for i, line in enumerate(lines):
            index = line & mask
            stats.accesses += 1
            current = resident.get(index)
            if current == line:
                stats.hits += 1
                resident_next[index] = future[i]
                continue
            stats.misses += 1
            if current is None:
                stats.cold_misses += 1
                resident[index] = line
                resident_next[index] = future[i]
            elif future[i] < resident_next[index]:
                stats.evictions += 1
                resident[index] = line
                resident_next[index] = future[i]
            else:
                stats.bypasses += 1
        return stats

    def _simulate_associative(
        self, lines: List[int], future: List[int], mask: int, ways: int
    ) -> CacheStats:
        stats = CacheStats()
        # Per set: dict line -> next-use time of that resident line.
        sets: Dict[int, Dict[int, int]] = {}
        for i, line in enumerate(lines):
            index = line & mask
            stats.accesses += 1
            content = sets.setdefault(index, {})
            if line in content:
                stats.hits += 1
                content[line] = future[i]
                continue
            stats.misses += 1
            if len(content) < ways:
                stats.cold_misses += 1
                content[line] = future[i]
                continue
            victim = max(content, key=content.__getitem__)
            if future[i] < content[victim]:
                del content[victim]
                content[line] = future[i]
                stats.evictions += 1
            else:
                stats.bypasses += 1
        return stats


class OptimalDirectMappedCache(OptimalCache):
    """The paper's optimal direct-mapped comparison point."""

    def __init__(self, geometry: CacheGeometry, name: str = "") -> None:
        if geometry.associativity != 1:
            raise ValueError("OptimalDirectMappedCache requires associativity 1")
        super().__init__(geometry, name=name or "optimal-direct-mapped")


class OptimalLastLineCache(OfflineCache):
    """Optimal replacement-with-bypass over *line-reference events*.

    With multi-word lines, a naive Belady-with-bypass never bypasses:
    the sequential word that follows a fetch makes the new line's next
    use "immediate", so it always displaces the resident line.  The
    paper's Section 6 treats all consecutive references to one line as a
    single event (the last-line buffer serves the rest), and the optimal
    comparison point must be computed the same way.  This model runs
    :class:`OptimalCache` on the collapsed line-event stream; buffer
    hits (the collapsed-away references) are counted as hits.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "") -> None:
        super().__init__(geometry, name=name or "optimal-last-line")

    def simulate(self, trace: Trace) -> CacheStats:
        from ..trace.transforms import collapse_sequential_lines

        collapsed = collapse_sequential_lines(trace, self.geometry.line_size)
        inner = OptimalCache(self.geometry).simulate(collapsed)
        buffer_hits = len(trace) - len(collapsed)
        stats = CacheStats(
            accesses=len(trace),
            hits=inner.hits + buffer_hits,
            misses=inner.misses,
            bypasses=inner.bypasses,
            evictions=inner.evictions,
            buffer_hits=buffer_hits,
            cold_misses=inner.cold_misses,
        )
        stats.check()
        return stats
