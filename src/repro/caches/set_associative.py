"""N-way set-associative cache (the organisation the paper compares
direct-mapped caches against)."""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..trace.reference import RefKind
from .base import AccessResult, Cache
from .geometry import CacheGeometry
from .replacement import ReplacementPolicy, make_policy

_HIT = AccessResult(hit=True)
_COLD_MISS = AccessResult(hit=False)


class SetAssociativeCache(Cache):
    """Set-associative cache with a pluggable replacement policy.

    Parameters
    ----------
    geometry:
        Must have ``associativity >= 1``.  With associativity 1 this
        behaves exactly like :class:`DirectMappedCache` (useful for
        cross-checking).
    policy:
        ``"lru"`` (default), ``"fifo"``, or ``"random"``.
    seed:
        Seed for the random policy.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(geometry, name=name or f"{geometry.associativity}-way-{policy}")
        self._policy_name = policy
        self._seed = seed
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.num_sets - 1
        self._build_sets()

    def _build_sets(self) -> None:
        ways = self.geometry.associativity
        sets = self.geometry.num_sets
        self._tags: List[List[Optional[int]]] = [[None] * ways for _ in range(sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(self._policy_name, ways, seed=self._seed + i)
            for i in range(sets)
        ]

    def _reset_state(self) -> None:
        self._build_sets()

    @property
    def policy_name(self) -> str:
        """The replacement policy name this cache was built with."""
        return self._policy_name

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        tags = self._tags[index]
        policy = self._policies[index]
        try:
            way = tags.index(line)
        except ValueError:
            way = -1
        if way >= 0:
            stats.hits += 1
            policy.touch(way)
            return _HIT
        stats.misses += 1
        try:
            empty_way = tags.index(None)
        except ValueError:
            empty_way = -1
        if empty_way >= 0:
            tags[empty_way] = line
            policy.fill(empty_way)
            stats.cold_misses += 1
            return _COLD_MISS
        victim_way = policy.victim()
        evicted = tags[victim_way]
        tags[victim_way] = line
        policy.fill(victim_way)
        stats.evictions += 1
        return AccessResult(hit=False, evicted_line=evicted)

    def contains(self, addr: int) -> bool:
        # O(ways) override of the base-class full scan.
        line = addr >> self._offset_bits
        return line in self._tags[line & self._index_mask]

    def resident_lines(self) -> FrozenSet[int]:
        resident = set()
        for tags in self._tags:
            for tag in tags:
                if tag is not None:
                    resident.add(tag)
        return frozenset(resident)


class FullyAssociativeCache(SetAssociativeCache):
    """A single-set LRU cache (used for capacity-miss classification)."""

    def __init__(self, size: int, line_size: int, policy: str = "lru", name: str = "") -> None:
        geometry = CacheGeometry.fully_associative(size, line_size)
        super().__init__(geometry, policy=policy, name=name or f"fully-associative-{policy}")
