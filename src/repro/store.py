"""Content-addressed result store over the sweep-journal format.

The journal (:mod:`repro.perf.journal`) already keys every completed
sweep cell by a sha256 content hash of its full identity, but each
:class:`~repro.perf.journal.SweepJournal` reads exactly one
``journal.jsonl``.  A production result service wants the union: every
journal this machine (or a fleet) has ever written, deduplicated by
cell key, behind one lookup — so repeat queries are O(1) hits and only
genuinely new cells cost simulation time.

:class:`ResultStore` provides that union:

* **many sources, one index** — the store owns a writable *primary*
  journal and merges any number of read-only extra journal files or
  directories at load time, in source order, last-wins per key (the
  same rule ``SweepJournal`` applies within one file);
* **integrity on load** — every candidate line must be a well-formed
  ``sweep-cell`` entry of a known version whose metrics pass
  :meth:`SweepJournal.entry_metrics`; anything else (torn tail, future
  version, corrupted metrics) is counted in :class:`StoreStats` and
  skipped, never served;
* **incremental refresh** — :meth:`refresh` tails every source from its
  last byte offset, picking up entries appended by concurrent writers
  without re-reading gigabytes of history (only complete,
  newline-terminated lines are consumed, so a torn tail is retried on
  the next refresh rather than mis-parsed);
* **compaction** — :meth:`compact` rewrites the deduplicated index into
  generation-stamped shard files (``journal-<gen>-<shard>.jsonl``,
  sharded by key prefix) behind an atomic ``store_manifest.json`` swap,
  then truncates the primary journal; a store over a multi-gigabyte
  append history reloads from the shards without replaying every
  superseded line;
* **negative-result cache** — failed cells can be recorded as
  ``sweep-cell-error`` entries (:meth:`record_errors`); the serve layer
  bounds them with a TTL so a hot failing spec stops burning simulation
  time on every request (see ``REPRO_SERVE_NEG_TTL``);
* **journal protocol** — ``get``/``record``/``record_many`` match
  :class:`SweepJournal`, so a store passes directly as the ``journal=``
  argument of :func:`repro.perf.parallel.run_labeled_cells`: cached
  cells replay from the whole store, new results append to the primary
  and are immediately servable.

The server in :mod:`repro.serve` is the network face of this class.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .perf.journal import JOURNAL_FILENAME, JOURNAL_VERSION, SweepJournal

__all__ = [
    "CompactionStats",
    "DEFAULT_SHARDS",
    "ERROR_KIND",
    "ResultStore",
    "STORE_MANIFEST_FILENAME",
    "StoreStats",
    "open_store",
]

#: Journal-line kind for a cached *failure* (the negative-result cache).
ERROR_KIND = "sweep-cell-error"

#: Atomically swapped manifest naming the live compaction shards.
STORE_MANIFEST_FILENAME = "store_manifest.json"

#: Default shard-file count for :meth:`ResultStore.compact`.
DEFAULT_SHARDS = 16

#: Shard files are ``journal-<generation>-<shard>.jsonl``; the pattern
#: deliberately cannot match the primary ``journal.jsonl`` and rejects
#: manifest entries that try to escape the store directory.
_SHARD_NAME_RE = re.compile(r"journal-(\d+)-(\d+)\.jsonl\Z")


@dataclass
class StoreStats:
    """Load/refresh accounting: what the index accepted and why not.

    ``entries`` is the live index size; ``errors`` the live
    negative-cache size; ``duplicates`` counts keys that were
    overwritten by a later source or line (last-wins); ``skipped``
    counts lines rejected by the integrity checks (unknown kind, future
    version, missing key, unusable metrics).  ``sources`` maps each
    journal file to the byte offset consumed so far.
    """

    entries: int = 0
    errors: int = 0
    duplicates: int = 0
    skipped: int = 0
    sources: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "errors": self.errors,
            "duplicates": self.duplicates,
            "skipped": self.skipped,
            "sources": dict(sorted(self.sources.items())),
        }


@dataclass
class CompactionStats:
    """What one :meth:`ResultStore.compact` rewrote.

    ``bytes_before`` counts the primary journal plus the superseded
    shard files; ``bytes_after`` the freshly written shards — the
    difference is the dead weight (superseded lines, torn tails,
    expired errors) the next full load no longer replays.
    """

    generation: int
    entries: int
    errors: int
    shard_files: int
    bytes_before: int
    bytes_after: int

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "entries": self.entries,
            "errors": self.errors,
            "shard_files": self.shard_files,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }


def _journal_path(source: Union[str, Path]) -> Path:
    """A journal file: either the path itself or ``<dir>/journal.jsonl``.

    A source that does not exist yet is classified by its name — only
    an explicit ``*.jsonl`` path is a file; anything else is a journal
    directory that will be tailed once it appears.
    """
    path = Path(source)
    if path.is_file() or path.suffix == ".jsonl":
        return path
    return path / JOURNAL_FILENAME


def _shard_index(key: str, shards: int) -> int:
    """Stable shard slot from the key prefix (hex keys) or a CRC."""
    try:
        return int(key[:8], 16) % shards
    except ValueError:
        return zlib.crc32(key.encode("utf-8")) % shards


def _shard_name(generation: int, shard: int) -> str:
    return f"journal-{generation:06d}-{shard:03d}.jsonl"


def _read_store_manifest(directory: Path) -> "Tuple[int, List[str]]":
    """The (generation, shard names) of the live manifest, or (0, []).

    A missing, torn, or foreign manifest degrades to "no shards": the
    primary journal and extra sources still load, so a store predating
    compaction (or whose manifest was lost) keeps serving.
    """
    path = directory / STORE_MANIFEST_FILENAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return 0, []
    if not isinstance(data, dict) or data.get("kind") != "store-manifest":
        return 0, []
    generation = data.get("generation")
    shards = data.get("shards")
    if not isinstance(generation, int) or generation < 0 or not isinstance(shards, list):
        return 0, []
    names = [
        str(name) for name in shards
        if isinstance(name, str) and _SHARD_NAME_RE.match(name)
    ]
    return generation, names


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a unique fsynced temp + rename."""
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


class ResultStore:
    """A deduplicated, content-addressed index over many sweep journals.

    ``primary`` is the writable journal directory — new results recorded
    through the store append there (and only there).  ``extra_sources``
    are read-only journal files or directories merged into the index;
    they are tailed again on every :meth:`refresh`, so a store can watch
    directories that other sweep runs are still appending to.

    Thread safety: the index is guarded by one lock, so a serving
    daemon's request threads can read while a run thread records.
    """

    def __init__(
        self,
        primary: Union[str, Path],
        extra_sources: "Sequence[str | Path]" = (),
    ) -> None:
        self.primary_dir = Path(primary)
        self.journal = SweepJournal(self.primary_dir)
        self._lock = threading.RLock()
        self._entries: Dict[str, dict] = {}
        self._errors: Dict[str, dict] = {}
        self._stats = StoreStats()
        self._generation, shard_names = _read_store_manifest(self.primary_dir)
        self._revision = 0
        self._shards: List[Path] = [
            self.primary_dir / name for name in shard_names
        ]
        # Compaction shards first (they hold the oldest, already
        # deduplicated history), then the primary journal, then extras
        # in caller order: a later source wins a key collision, and
        # within one file the later line wins — exactly SweepJournal's
        # own replay rule, extended across files.
        self._sources: List[Path] = [*self._shards, self.journal.path]
        for source in extra_sources:
            self.add_source(source)
        self.refresh()

    # -- sources ---------------------------------------------------------------

    def add_source(self, source: Union[str, Path]) -> Path:
        """Merge another journal file or directory into the index.

        Returns the resolved journal path.  The new source is read on
        the next :meth:`refresh` (call it yourself for immediate
        visibility); a missing file is fine — it is tailed from offset 0
        whenever it appears.
        """
        path = _journal_path(source)
        with self._lock:
            if path not in self._sources:
                self._sources.append(path)
        return path

    def sources(self) -> List[Path]:
        """The journal files feeding the index, shards and primary first."""
        with self._lock:
            return list(self._sources)

    # -- change tokens ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """The live compaction generation (0 until the first compact)."""
        with self._lock:
            return self._generation

    @property
    def revision(self) -> int:
        """A counter that bumps on every index mutation (never persisted)."""
        with self._lock:
            return self._revision

    def state_token(self) -> str:
        """``<generation>.<revision>`` — changes iff the index changed.

        The serve layer folds this into its ``ETag`` values: a repeat
        conditional request is answered ``304 Not Modified`` without
        re-planning exactly when no result has landed in between.
        """
        with self._lock:
            return f"{self._generation}.{self._revision}"

    # -- loading ---------------------------------------------------------------

    def _ingest_line(self, line: str) -> None:
        """Index one raw journal line if it passes every integrity check."""
        line = line.strip()
        if not line:
            return
        try:
            entry = json.loads(line)
        except ValueError:
            self._stats.skipped += 1
            return
        if not isinstance(entry, dict):
            self._stats.skipped += 1
            return
        if entry.get("version", 0) > JOURNAL_VERSION:
            self._stats.skipped += 1
            return
        key = entry.get("key")
        if entry.get("kind") == ERROR_KIND:
            recorded_at = entry.get("recorded_at")
            if (
                not isinstance(key, str)
                or not isinstance(entry.get("error"), str)
                or isinstance(recorded_at, bool)
                or not isinstance(recorded_at, (int, float))
            ):
                self._stats.skipped += 1
                return
            self._errors[key] = entry
            self._revision += 1
            return
        if entry.get("kind") != "sweep-cell":
            self._stats.skipped += 1
            return
        if not isinstance(key, str) or SweepJournal.entry_metrics(entry) is None:
            self._stats.skipped += 1
            return
        if key in self._entries:
            self._stats.duplicates += 1
        self._entries[key] = entry
        # A success supersedes any cached failure for the same cell.
        self._errors.pop(key, None)
        self._revision += 1

    def refresh(self) -> int:
        """Tail every source from its consumed offset; return new-entry count.

        Only complete lines (terminated by ``\\n``) are consumed: a
        writer caught mid-append leaves its torn tail for the next
        refresh instead of poisoning the index, and the offset never
        advances past unparsed bytes.

        Sources are tailed in *binary* mode and decoded per line.  The
        offset is advanced by the raw byte length of each line — a
        text-mode reader with ``errors="replace"`` used to expand every
        invalid byte into a 3-byte U+FFFD, overshoot the true file
        offset, and then silently skip the head of every later append.
        """
        with self._lock:
            before = len(self._entries)
            for path in self._sources:
                offset = self._stats.sources.get(str(path), 0)
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                if size <= offset:
                    continue
                try:
                    handle = path.open("rb")
                except OSError:
                    continue
                with handle:
                    handle.seek(offset)
                    while True:
                        raw = handle.readline()
                        if not raw or not raw.endswith(b"\n"):
                            break
                        offset += len(raw)
                        self._ingest_line(raw.decode("utf-8", errors="replace"))
                self._stats.sources[str(path)] = offset
            self._stats.entries = len(self._entries)
            self._stats.errors = len(self._errors)
            return len(self._entries) - before

    # -- reads -----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The stored journal entry for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            return dict(entry) if entry is not None else None

    def metrics(self, key: str) -> "Optional[Dict[str, float]]":
        """The replayable metric dict for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        return SweepJournal.entry_metrics(entry)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> StoreStats:
        """A snapshot of the load/refresh accounting."""
        with self._lock:
            snapshot = StoreStats(
                entries=self._stats.entries,
                errors=self._stats.errors,
                duplicates=self._stats.duplicates,
                skipped=self._stats.skipped,
                sources=dict(self._stats.sources),
            )
            return snapshot

    # -- the negative-result cache ---------------------------------------------

    def error_entry(self, key: str) -> Optional[dict]:
        """The cached ``sweep-cell-error`` entry for ``key``, or ``None``.

        The store keeps failures indefinitely; freshness is the
        caller's policy (the serve layer applies ``REPRO_SERVE_NEG_TTL``
        against the entry's ``recorded_at`` stamp).  A success recorded
        for the same key evicts the failure.
        """
        with self._lock:
            entry = self._errors.get(key)
            return dict(entry) if entry is not None else None

    def error_keys(self) -> List[str]:
        with self._lock:
            return list(self._errors)

    def record_errors(
        self,
        failures: "Sequence[Tuple[str, str]]",
        at: "Optional[float]" = None,
    ) -> None:
        """Append ``(key, error text)`` failures to the primary journal.

        Each failure becomes one ``sweep-cell-error`` line stamped with
        ``recorded_at`` (default: now), replacing any previous failure
        under the same key — the TTL window restarts on every recorded
        attempt.  Plain :class:`SweepJournal` readers ignore these lines
        (unknown kind), so resume semantics are unchanged.
        """
        if not failures:
            return
        stamp = time.time() if at is None else float(at)
        with self._lock:
            self.refresh()
            built = []
            for key, error in failures:
                entry = {
                    "kind": ERROR_KIND,
                    "version": JOURNAL_VERSION,
                    "key": str(key),
                    "error": str(error),
                    "recorded_at": stamp,
                }
                built.append(entry)
            with self.journal.path.open("a", encoding="utf-8") as handle:
                for entry in built:
                    handle.write(
                        json.dumps(entry, sort_keys=True, allow_nan=False) + "\n"
                    )
                handle.flush()
            for entry in built:
                self._errors[entry["key"]] = entry
            self._revision += 1
            self._stats.errors = len(self._errors)
            self._stats.sources[str(self.journal.path)] = (
                self.journal.path.stat().st_size
            )

    # -- writes (the SweepJournal protocol) ------------------------------------

    def record(
        self,
        key: str,
        fields: dict,
        metrics: "Union[Dict[str, float], float]",
        seconds: float,
    ) -> None:
        """Append one completed cell to the primary journal and index it."""
        self.record_many([(key, fields, metrics, seconds)])

    def record_many(
        self,
        entries: "Sequence[Tuple[str, dict, Union[Dict[str, float], float], float]]",
    ) -> None:
        """Append a batch to the primary journal and index it (one flush)."""
        if not entries:
            return
        with self._lock:
            # Consume anything already appended to the sources first, so
            # advancing the primary's offset below cannot step over
            # unread lines.  (The primary journal is owned by this
            # store's process; a journal other processes write belongs
            # in ``extra_sources``, where it is only ever tailed.)
            self.refresh()
            self.journal.record_many(entries)
            # The primary's in-memory index already has the parsed
            # entries; mirror them instead of re-reading the file.  The
            # file offset must still advance past the new bytes so the
            # next refresh doesn't double-count them as duplicates.
            for key, _fields, _metrics, _seconds in entries:
                entry = self.journal.get(key)
                if entry is not None:
                    if key in self._entries:
                        self._stats.duplicates += 1
                    self._entries[key] = entry
                    self._errors.pop(key, None)
            self._revision += 1
            self._stats.entries = len(self._entries)
            self._stats.errors = len(self._errors)
            self._stats.sources[str(self.journal.path)] = (
                self.journal.path.stat().st_size
            )

    # -- compaction ------------------------------------------------------------

    def compact(self, shards: int = DEFAULT_SHARDS) -> CompactionStats:
        """Rewrite the deduplicated index into generation-stamped shards.

        The append-only history (primary journal + previous shards)
        accumulates one line per *recorded* cell; the live index needs
        one line per *distinct* cell.  Compaction writes the index —
        success entries and cached failures — into
        ``journal-<gen>-<shard>.jsonl`` files sharded by key prefix,
        atomically swaps ``store_manifest.json`` to name them, truncates
        the primary journal, and deletes superseded shard files.  A
        fresh :class:`ResultStore` then loads the shards in manifest
        order and replays no superseded line.

        Crash safety: the manifest swap is the commit point.  Dying
        before it leaves the old manifest + untouched journal (orphan
        new-generation shards are swept by the next compact); dying
        between the swap and the truncation leaves journal lines that
        duplicate shard content — reloaded last-wins, identical values.

        Entries merged from ``extra_sources`` are included, so a
        compacted store serves its full index even if the extras later
        disappear; the extras' consumed offsets are kept, and any line
        they append afterwards still wins its key on the next refresh.
        """
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        with self._lock:
            self.refresh()
            generation = self._generation + 1
            old_shards = list(self._shards)
            bytes_before = 0
            for path in [*old_shards, self.journal.path]:
                try:
                    bytes_before += path.stat().st_size
                except OSError:
                    pass

            buckets: Dict[int, List[dict]] = {}
            for index in (self._entries, self._errors):
                for key, entry in index.items():
                    buckets.setdefault(_shard_index(key, shards), []).append(entry)

            new_names: List[str] = []
            new_paths: List[Path] = []
            bytes_after = 0
            for slot in sorted(buckets):
                entries = sorted(buckets[slot], key=lambda e: str(e.get("key")))
                name = _shard_name(generation, slot)
                path = self.primary_dir / name
                text = "".join(
                    json.dumps(entry, sort_keys=True, allow_nan=False) + "\n"
                    for entry in entries
                )
                _write_atomic(path, text)
                new_names.append(name)
                new_paths.append(path)
                bytes_after += path.stat().st_size

            manifest = {
                "kind": "store-manifest",
                "version": 1,
                "generation": generation,
                "shards": new_names,
                "shard_count": shards,
                "entries": len(self._entries),
                "errors": len(self._errors),
                "compacted_at": time.time(),
            }
            _write_atomic(
                self.primary_dir / STORE_MANIFEST_FILENAME,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )

            # Post-commit cleanup: empty the journal (its lines live in
            # the shards now) and drop every shard file the manifest no
            # longer names, including orphans from a crashed compact.
            self.journal.path.open("w", encoding="utf-8").close()
            live = set(new_names)
            for stale in self.primary_dir.glob("journal-*.jsonl"):
                if stale.name not in live and _SHARD_NAME_RE.match(stale.name):
                    self._stats.sources.pop(str(stale), None)
                    try:
                        stale.unlink()
                    except OSError:  # pragma: no cover - best-effort
                        pass

            extras = [
                path for path in self._sources
                if path != self.journal.path and path not in set(old_shards)
            ]
            self._shards = new_paths
            self._sources = [*new_paths, self.journal.path, *extras]
            for path in new_paths:
                # Fully consumed by construction: the shards were
                # written from the in-memory index.
                self._stats.sources[str(path)] = path.stat().st_size
            self._stats.sources[str(self.journal.path)] = 0
            self._generation = generation
            self._revision += 1
            return CompactionStats(
                generation=generation,
                entries=len(self._entries),
                errors=len(self._errors),
                shard_files=len(new_paths),
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )


def open_store(
    primary: Union[str, Path],
    extra_sources: "Iterable[str | Path]" = (),
) -> ResultStore:
    """Convenience constructor mirroring the CLI's flags."""
    return ResultStore(primary, tuple(extra_sources))
