"""Content-addressed result store over the sweep-journal format.

The journal (:mod:`repro.perf.journal`) already keys every completed
sweep cell by a sha256 content hash of its full identity, but each
:class:`~repro.perf.journal.SweepJournal` reads exactly one
``journal.jsonl``.  A production result service wants the union: every
journal this machine (or a fleet) has ever written, deduplicated by
cell key, behind one lookup — so repeat queries are O(1) hits and only
genuinely new cells cost simulation time.

:class:`ResultStore` provides that union:

* **many sources, one index** — the store owns a writable *primary*
  journal and merges any number of read-only extra journal files or
  directories at load time, in source order, last-wins per key (the
  same rule ``SweepJournal`` applies within one file);
* **integrity on load** — every candidate line must be a well-formed
  ``sweep-cell`` entry of a known version whose metrics pass
  :meth:`SweepJournal.entry_metrics`; anything else (torn tail, future
  version, corrupted metrics) is counted in :class:`StoreStats` and
  skipped, never served;
* **incremental refresh** — :meth:`refresh` tails every source from its
  last byte offset, picking up entries appended by concurrent writers
  without re-reading gigabytes of history (only complete,
  newline-terminated lines are consumed, so a torn tail is retried on
  the next refresh rather than mis-parsed);
* **journal protocol** — ``get``/``record``/``record_many`` match
  :class:`SweepJournal`, so a store passes directly as the ``journal=``
  argument of :func:`repro.perf.parallel.run_labeled_cells`: cached
  cells replay from the whole store, new results append to the primary
  and are immediately servable.

The server in :mod:`repro.serve` is the network face of this class.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .perf.journal import JOURNAL_FILENAME, JOURNAL_VERSION, SweepJournal

__all__ = ["ResultStore", "StoreStats", "open_store"]


@dataclass
class StoreStats:
    """Load/refresh accounting: what the index accepted and why not.

    ``entries`` is the live index size; ``duplicates`` counts keys that
    were overwritten by a later source or line (last-wins); ``skipped``
    counts lines rejected by the integrity checks (unknown kind, future
    version, missing key, unusable metrics).  ``sources`` maps each
    journal file to the byte offset consumed so far.
    """

    entries: int = 0
    duplicates: int = 0
    skipped: int = 0
    sources: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "duplicates": self.duplicates,
            "skipped": self.skipped,
            "sources": dict(sorted(self.sources.items())),
        }


def _journal_path(source: Union[str, Path]) -> Path:
    """A journal file: either the path itself or ``<dir>/journal.jsonl``.

    A source that does not exist yet is classified by its name — only
    an explicit ``*.jsonl`` path is a file; anything else is a journal
    directory that will be tailed once it appears.
    """
    path = Path(source)
    if path.is_file() or path.suffix == ".jsonl":
        return path
    return path / JOURNAL_FILENAME


class ResultStore:
    """A deduplicated, content-addressed index over many sweep journals.

    ``primary`` is the writable journal directory — new results recorded
    through the store append there (and only there).  ``extra_sources``
    are read-only journal files or directories merged into the index;
    they are tailed again on every :meth:`refresh`, so a store can watch
    directories that other sweep runs are still appending to.

    Thread safety: the index is guarded by one lock, so a serving
    daemon's request threads can read while a run thread records.
    """

    def __init__(
        self,
        primary: Union[str, Path],
        extra_sources: "Sequence[str | Path]" = (),
    ) -> None:
        self.primary_dir = Path(primary)
        self.journal = SweepJournal(self.primary_dir)
        self._lock = threading.RLock()
        self._entries: Dict[str, dict] = {}
        self._stats = StoreStats()
        # Primary journal first, extras in caller order: a later source
        # wins a key collision, and within one file the later line wins
        # — exactly SweepJournal's own replay rule, extended across files.
        self._sources: List[Path] = [self.journal.path]
        for source in extra_sources:
            self.add_source(source)
        self.refresh()

    # -- sources ---------------------------------------------------------------

    def add_source(self, source: Union[str, Path]) -> Path:
        """Merge another journal file or directory into the index.

        Returns the resolved journal path.  The new source is read on
        the next :meth:`refresh` (call it yourself for immediate
        visibility); a missing file is fine — it is tailed from offset 0
        whenever it appears.
        """
        path = _journal_path(source)
        with self._lock:
            if path not in self._sources:
                self._sources.append(path)
        return path

    def sources(self) -> List[Path]:
        """The journal files feeding the index, primary first."""
        with self._lock:
            return list(self._sources)

    # -- loading ---------------------------------------------------------------

    def _ingest_line(self, line: str) -> None:
        """Index one raw journal line if it passes every integrity check."""
        line = line.strip()
        if not line:
            return
        try:
            entry = json.loads(line)
        except ValueError:
            self._stats.skipped += 1
            return
        if not isinstance(entry, dict) or entry.get("kind") != "sweep-cell":
            self._stats.skipped += 1
            return
        if entry.get("version", 0) > JOURNAL_VERSION:
            self._stats.skipped += 1
            return
        key = entry.get("key")
        if not isinstance(key, str) or SweepJournal.entry_metrics(entry) is None:
            self._stats.skipped += 1
            return
        if key in self._entries:
            self._stats.duplicates += 1
        self._entries[key] = entry

    def refresh(self) -> int:
        """Tail every source from its consumed offset; return new-entry count.

        Only complete lines (terminated by ``\\n``) are consumed: a
        writer caught mid-append leaves its torn tail for the next
        refresh instead of poisoning the index, and the offset never
        advances past unparsed bytes.
        """
        with self._lock:
            before = len(self._entries)
            for path in self._sources:
                offset = self._stats.sources.get(str(path), 0)
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                if size <= offset:
                    continue
                try:
                    handle = path.open("r", encoding="utf-8", errors="replace")
                except OSError:
                    continue
                with handle:
                    handle.seek(offset)
                    while True:
                        line = handle.readline()
                        if not line or not line.endswith("\n"):
                            break
                        offset += len(line.encode("utf-8"))
                        self._ingest_line(line)
                self._stats.sources[str(path)] = offset
            self._stats.entries = len(self._entries)
            return len(self._entries) - before

    # -- reads -----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The stored journal entry for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            return dict(entry) if entry is not None else None

    def metrics(self, key: str) -> "Optional[Dict[str, float]]":
        """The replayable metric dict for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        return SweepJournal.entry_metrics(entry)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> StoreStats:
        """A snapshot of the load/refresh accounting."""
        with self._lock:
            snapshot = StoreStats(
                entries=self._stats.entries,
                duplicates=self._stats.duplicates,
                skipped=self._stats.skipped,
                sources=dict(self._stats.sources),
            )
            return snapshot

    # -- writes (the SweepJournal protocol) ------------------------------------

    def record(
        self,
        key: str,
        fields: dict,
        metrics: "Union[Dict[str, float], float]",
        seconds: float,
    ) -> None:
        """Append one completed cell to the primary journal and index it."""
        self.record_many([(key, fields, metrics, seconds)])

    def record_many(
        self,
        entries: "Sequence[Tuple[str, dict, Union[Dict[str, float], float], float]]",
    ) -> None:
        """Append a batch to the primary journal and index it (one flush)."""
        if not entries:
            return
        with self._lock:
            # Consume anything already appended to the sources first, so
            # advancing the primary's offset below cannot step over
            # unread lines.  (The primary journal is owned by this
            # store's process; a journal other processes write belongs
            # in ``extra_sources``, where it is only ever tailed.)
            self.refresh()
            self.journal.record_many(entries)
            # The primary's in-memory index already has the parsed
            # entries; mirror them instead of re-reading the file.  The
            # file offset must still advance past the new bytes so the
            # next refresh doesn't double-count them as duplicates.
            for key, _fields, _metrics, _seconds in entries:
                entry = self.journal.get(key)
                if entry is not None:
                    if key in self._entries:
                        self._stats.duplicates += 1
                    self._entries[key] = entry
            self._stats.entries = len(self._entries)
            self._stats.sources[str(self.journal.path)] = (
                self.journal.path.stat().st_size
            )


def open_store(
    primary: Union[str, Path],
    extra_sources: "Iterable[str | Path]" = (),
) -> ResultStore:
    """Convenience constructor mirroring the CLI's flags."""
    return ResultStore(primary, tuple(extra_sources))
