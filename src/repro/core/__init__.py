"""Dynamic exclusion: the paper's contribution.

Public surface: the FSM, the hit-last stores, the single-word-line DE
cache, the long-line variants, and the hardware cost model.
"""

from .fsm import Decision, DynamicExclusionFSM, LineState
from .hitlast import (
    HashedHitLastStore,
    HitLastStore,
    IdealHitLastStore,
    L2BackedHitLastStore,
    make_hitlast_store,
)
from .exclusion_cache import DynamicExclusionCache
from .set_assoc_exclusion import SetAssociativeExclusionCache
from .victim_exclusion import ExclusionVictimCache
from .long_lines import (
    ExclusionStreamBufferCache,
    InstructionRegisterCache,
    LastLineBufferCache,
    make_long_line_exclusion_cache,
)
from .cost import (
    ADDRESS_BITS,
    EfficiencyRow,
    direct_mapped_bits,
    doubling_efficiency,
    exclusion_efficiency,
    exclusion_overhead_bits,
)

__all__ = [
    "ADDRESS_BITS",
    "Decision",
    "DynamicExclusionCache",
    "DynamicExclusionFSM",
    "EfficiencyRow",
    "ExclusionStreamBufferCache",
    "ExclusionVictimCache",
    "HashedHitLastStore",
    "HitLastStore",
    "IdealHitLastStore",
    "InstructionRegisterCache",
    "L2BackedHitLastStore",
    "LastLineBufferCache",
    "LineState",
    "SetAssociativeExclusionCache",
    "direct_mapped_bits",
    "doubling_efficiency",
    "exclusion_efficiency",
    "exclusion_overhead_bits",
    "make_hitlast_store",
    "make_long_line_exclusion_cache",
]
