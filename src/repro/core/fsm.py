"""The dynamic-exclusion finite state machine (paper Figure 1).

This module is the *readable reference implementation* of the FSM: a
pure decision function plus a tiny per-line state record.  The
production simulator (:mod:`repro.core.exclusion_cache`) inlines the same
logic for speed; the test suite differentially checks the two against
each other.

Per cache line the FSM keeps:

* the resident tag,
* the **sticky** level ``s`` (the paper uses one bit; the McF91a
  extension generalises it to a small saturating counter, selected here
  with ``sticky_levels``), and
* ``hl`` — the L1 copy of the resident word's **hit-last** bit.

The backing hit-last store (one bit per memory word, in principle) is
abstracted by :mod:`repro.core.hitlast`.

Transitions on an access to ``x`` with resident ``y`` (Section 4 of the
paper, reconstructed in DESIGN.md §4):

====================================  =======================================
condition                             action
====================================  =======================================
``x == y``                            hit; ``s := max``, ``hl := 1``
miss, line empty                      load ``x``; ``s := max``, ``hl := 1``
miss, ``s == 0``                      write back ``h[y] := hl``; load ``x``;
                                      ``s := max``, ``hl := 1``
miss, ``s > 0`` and ``h[x]``          write back ``h[y] := hl``; load ``x``;
                                      ``s := max``, ``hl := 0``
miss, ``s > 0`` and not ``h[x]``      bypass; ``s := s - 1``
====================================  =======================================

The third row is the paper's "sets h[b] even though b did not hit"
transition (``A,!s -> B,s``); the fourth row's ``hl := 0`` is what resets
``h[b]`` when an instruction loaded on the strength of its hit-last bit
is evicted without ever hitting — the paper's loop-level example relies
on this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .hitlast import HitLastStore


class Decision(enum.Enum):
    """What the FSM decided for one access."""

    HIT = "hit"
    LOAD = "load"          # miss; store the fetched word (cold or !s or h[x])
    BYPASS = "bypass"      # miss; forward to CPU without storing


@dataclass
class LineState:
    """Mutable dynamic-exclusion state for one cache line."""

    tag: Optional[int] = None
    sticky: int = 0
    hit_last: bool = False

    def copy(self) -> "LineState":
        return LineState(self.tag, self.sticky, self.hit_last)


class DynamicExclusionFSM:
    """The per-line decision logic, shared by every DE cache model.

    Parameters
    ----------
    store:
        The backing hit-last store.
    sticky_levels:
        Maximum sticky value (1 reproduces the paper's single sticky
    bit; larger values give a resident line more conflict "lives",
        the McF91a multi-sticky extension).
    """

    def __init__(self, store: HitLastStore, sticky_levels: int = 1) -> None:
        if sticky_levels < 1:
            raise ValueError("sticky_levels must be at least 1")
        self.store = store
        self.sticky_levels = sticky_levels

    def step(self, line: LineState, incoming: int) -> Decision:
        """Apply one access to ``line`` in place and return the decision."""
        max_sticky = self.sticky_levels
        if line.tag == incoming:
            line.sticky = max_sticky
            line.hit_last = True
            return Decision.HIT
        if line.tag is None:
            line.tag = incoming
            line.sticky = max_sticky
            line.hit_last = True
            return Decision.LOAD
        if line.sticky == 0:
            self.store.update(line.tag, line.hit_last)
            line.tag = incoming
            line.sticky = max_sticky
            line.hit_last = True
            return Decision.LOAD
        if self.store.lookup(incoming):
            self.store.update(line.tag, line.hit_last)
            line.tag = incoming
            line.sticky = max_sticky
            line.hit_last = False
            return Decision.LOAD
        line.sticky -= 1
        return Decision.BYPASS
