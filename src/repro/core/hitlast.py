"""Hit-last bit storage strategies (paper Section 5).

In principle there is one hit-last bit per memory word; in practice the
bit has to live somewhere affordable.  The paper considers:

* an idealised per-word table (used for the main Figures 3-5, 11-15),
* keeping the bit with the corresponding **L2 line**, with a fallback
  assumption (*assume-hit* / *assume-miss*) when the word misses in L2,
* a **hashed** table of untagged bits held in the L1 cache itself
  (about four bits per L1 line suffice, per Figure 7's observation that
  an L2 four times the L1 size captures most of the benefit).

All stores share the tiny :class:`HitLastStore` interface consumed by
the FSM: ``lookup(word)`` on a miss, ``update(word, bit)`` at write-back
time (when the word's line leaves the L1 cache).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Set


class HitLastStore(abc.ABC):
    """Backing storage for hit-last bits."""

    @abc.abstractmethod
    def lookup(self, word: int) -> bool:
        """The hit-last bit for ``word`` (including any fallback rule)."""

    @abc.abstractmethod
    def update(self, word: int, bit: bool) -> None:
        """Write back the bit for ``word`` (may be dropped by the store)."""

    def reset(self) -> None:
        """Forget everything (default: stateless stores need not override)."""


class IdealHitLastStore(HitLastStore):
    """One bit per memory word, unbounded (the paper's idealisation).

    ``default`` is the bit's cold value; the paper's FSM analysis covers
    both polarities and the ablation benchmark compares them.  True
    ("assume hit") lets new words into the cache faster.
    """

    def __init__(self, default: bool = True) -> None:
        self.default = default
        self._bits: Dict[int, bool] = {}

    def lookup(self, word: int) -> bool:
        return self._bits.get(word, self.default)

    def update(self, word: int, bit: bool) -> None:
        self._bits[word] = bit

    def reset(self) -> None:
        self._bits.clear()

    def __len__(self) -> int:
        return len(self._bits)


class HashedHitLastStore(HitLastStore):
    """A fixed-size, untagged bit table indexed by a hash of the word.

    Collisions silently share a bit — exactly the hardware behaviour of
    the paper's hashing strategy ("there is no need to insure that the
    current instruction matches").  ``num_bits`` must be a power of two.
    """

    def __init__(self, num_bits: int, default: bool = True) -> None:
        if num_bits <= 0 or num_bits & (num_bits - 1):
            raise ValueError("num_bits must be a positive power of two")
        self.num_bits = num_bits
        self.default = default
        self._bits = [default] * num_bits
        self._mask = num_bits - 1

    def _index(self, word: int) -> int:
        # Plain low-address indexing: with k bits per cache line the
        # table covers log2(k) tag bits beyond the cache index, so up
        # to k words aliasing one cache line keep distinct hit-last
        # bits — the paper's "four hit-last bits per cache line".
        return word & self._mask

    def lookup(self, word: int) -> bool:
        return self._bits[self._index(word)]

    def update(self, word: int, bit: bool) -> None:
        self._bits[self._index(word)] = bit

    def reset(self) -> None:
        self._bits = [self.default] * self.num_bits


class L2BackedHitLastStore(HitLastStore):
    """Hit-last bits that live with the corresponding L2 cache line.

    ``resident`` is a callable mapping an L2 line address to "is this
    line in L2 right now"; ``l2_line_of`` maps a word to its L2 line
    address.  When the word's L2 line is absent the ``assume_hit``
    fallback applies; write-backs to absent lines are dropped, and
    :meth:`invalidate` must be called when L2 evicts a line so its bits
    die with it.
    """

    def __init__(
        self,
        resident: Callable[[int], bool],
        l2_line_of: Callable[[int], int],
        assume_hit: bool,
        record_when_absent: bool = False,
    ) -> None:
        self._resident = resident
        self._l2_line_of = l2_line_of
        self.assume_hit = assume_hit
        self.record_when_absent = record_when_absent
        self._bits: Dict[int, bool] = {}

    def lookup(self, word: int) -> bool:
        if self._resident(self._l2_line_of(word)):
            return self._bits.get(word, self.assume_hit)
        return self.assume_hit

    def update(self, word: int, bit: bool) -> None:
        if self.record_when_absent or self._resident(self._l2_line_of(word)):
            # ``record_when_absent`` models the victim transfer in an
            # exclusive hierarchy: the write-back races the line's own
            # move into L2, so the bit must not be dropped.
            self._bits[word] = bit

    def invalidate(self, l2_line: int, words: Optional[Set[int]] = None) -> None:
        """Drop the bits belonging to an evicted L2 line.

        If ``words`` is given only those are dropped; otherwise every
        stored word mapping to ``l2_line`` is swept (slower).
        """
        if words is not None:
            for word in words:
                self._bits.pop(word, None)
            return
        line_of = self._l2_line_of
        stale = [word for word in self._bits if line_of(word) == l2_line]
        for word in stale:
            del self._bits[word]

    def reset(self) -> None:
        self._bits.clear()


def make_hitlast_store(kind: str, **kwargs: object) -> HitLastStore:
    """Build a store by name: ``ideal`` or ``hashed``.

    (The L2-backed stores need live L2 callbacks and are constructed by
    :mod:`repro.hierarchy.two_level` directly.)
    """
    if kind == "ideal":
        return IdealHitLastStore(**kwargs)  # type: ignore[arg-type]
    if kind == "hashed":
        return HashedHitLastStore(**kwargs)  # type: ignore[arg-type]
    raise ValueError(f"unknown hit-last store kind {kind!r}")
