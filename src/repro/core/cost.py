"""Hardware cost model for dynamic exclusion (paper Figure 13).

Figure 13 compares the *efficiency* of adding dynamic exclusion to a
direct-mapped cache against simply doubling the capacity: the miss-rate
reduction divided by the SRAM growth.  This module counts the bits.

The DE configuration assumed by the paper's table: the hashing hit-last
strategy with four bits per L1 line, one sticky bit per line, and a
last-line buffer (one line of data plus a last-tag register).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..caches.geometry import CacheGeometry

#: Physical address width assumed for tag sizing (the DECstation 3100 is
#: a 32-bit machine).
ADDRESS_BITS = 32


def direct_mapped_bits(geometry: CacheGeometry, address_bits: int = ADDRESS_BITS) -> int:
    """Total SRAM bits of a conventional cache: data + tag + valid."""
    tag_bits = address_bits - geometry.offset_bits - geometry.index_bits
    per_line = geometry.line_size * 8 + tag_bits + 1
    return geometry.num_lines * per_line


def exclusion_overhead_bits(
    geometry: CacheGeometry,
    sticky_levels: int = 1,
    hashed_hitlast_bits_per_line: int = 4,
    last_line_buffer: bool = True,
    address_bits: int = ADDRESS_BITS,
) -> int:
    """Extra bits dynamic exclusion adds to a direct-mapped cache."""
    sticky_bits = max(1, math.ceil(math.log2(sticky_levels + 1)))
    per_line = sticky_bits + hashed_hitlast_bits_per_line
    total = geometry.num_lines * per_line
    if last_line_buffer:
        # One line of data plus the last-tag register (a full line
        # address) plus a valid bit.
        total += geometry.line_size * 8
        total += (address_bits - geometry.offset_bits) + 1
    return total


@dataclass(frozen=True)
class EfficiencyRow:
    """One column of the Figure 13 table."""

    label: str
    delta_size_percent: float
    delta_miss_percent: float

    @property
    def efficiency(self) -> float:
        """Miss-rate reduction per unit of size growth (bigger = better)."""
        if self.delta_size_percent == 0.0:
            return math.inf if self.delta_miss_percent > 0 else 0.0
        return self.delta_miss_percent / self.delta_size_percent


def exclusion_efficiency(
    geometry: CacheGeometry,
    baseline_miss_rate: float,
    exclusion_miss_rate: float,
    sticky_levels: int = 1,
    hashed_hitlast_bits_per_line: int = 4,
) -> EfficiencyRow:
    """Efficiency of adding DE to ``geometry`` (Figure 13, middle column)."""
    base_bits = direct_mapped_bits(geometry)
    extra_bits = exclusion_overhead_bits(
        geometry,
        sticky_levels=sticky_levels,
        hashed_hitlast_bits_per_line=hashed_hitlast_bits_per_line,
    )
    delta_size = 100.0 * extra_bits / base_bits
    delta_miss = _percent_reduction(baseline_miss_rate, exclusion_miss_rate)
    return EfficiencyRow(
        label=f"{geometry.size // 1024}KB DE",
        delta_size_percent=delta_size,
        delta_miss_percent=delta_miss,
    )


def doubling_efficiency(
    geometry: CacheGeometry,
    baseline_miss_rate: float,
    doubled_miss_rate: float,
) -> EfficiencyRow:
    """Efficiency of doubling capacity (Figure 13, right column)."""
    base_bits = direct_mapped_bits(geometry)
    doubled_bits = direct_mapped_bits(geometry.scaled(2))
    delta_size = 100.0 * (doubled_bits - base_bits) / base_bits
    delta_miss = _percent_reduction(baseline_miss_rate, doubled_miss_rate)
    return EfficiencyRow(
        label=f"{geometry.size * 2 // 1024}KB DM",
        delta_size_percent=delta_size,
        delta_miss_percent=delta_miss,
    )


def _percent_reduction(baseline: float, improved: float) -> float:
    if baseline == 0.0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
