"""Dynamic exclusion with multi-word cache lines (paper Section 6).

With lines longer than one instruction, two problems appear: sequential
references within a line would confuse the FSM (a line would almost
never look excludable), and excluding a whole line would charge one miss
per word.  The fix is to treat all consecutive references to one line as
a single *line-reference event*, and to keep the most recently fetched
line in a small side buffer so an excluded line still costs only one
miss for its sequential words.

The paper offers three equivalent structures (instruction register,
last-line buffer, stream buffer); this module implements the second —
a ``last-tag``/``last-line`` register in front of the cache (paper
Figure 10) — as a wrapper usable around *any* inner cache model, so the
baselines can be wrapped identically when a like-for-like comparison is
wanted.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..caches.base import AccessResult, Cache
from ..caches.geometry import CacheGeometry
from ..trace.reference import RefKind
from .exclusion_cache import DynamicExclusionCache
from .hitlast import HitLastStore

_BUFFER_HIT = AccessResult(hit=True)


class LastLineBufferCache(Cache):
    """A one-line buffer in front of an inner cache.

    A reference to the same line as the immediately preceding reference
    is served by the buffer: it is a hit and does **not** touch the
    inner cache's state (the paper: "the dynamic exclusion state is only
    changed when the current instruction address does not match
    last-tag").  Every line-change event is forwarded to the inner
    cache, whose replacement policy decides whether the line is stored.

    The wrapper's stats cover all references; the inner cache's own
    stats count only line-reference events.
    """

    def __init__(self, inner: Cache, name: str = "") -> None:
        super().__init__(inner.geometry, name=name or f"last-line+{inner.name}")
        self.inner = inner
        self._offset_bits = inner.geometry.offset_bits
        self._last_line: Optional[int] = None

    def _reset_state(self) -> None:
        self.inner.reset()
        self._last_line = None

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        stats = self.stats
        stats.accesses += 1
        if line == self._last_line:
            stats.hits += 1
            stats.buffer_hits += 1
            return _BUFFER_HIT
        self._last_line = line
        result = self.inner.access(addr, kind)
        if result.hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if result.bypassed:
                stats.bypasses += 1
        return result

    def resident_lines(self) -> FrozenSet[int]:
        resident = set(self.inner.resident_lines())
        if self._last_line is not None:
            resident.add(self._last_line)
        return frozenset(resident)


def make_long_line_exclusion_cache(
    geometry: CacheGeometry,
    store: Optional[HitLastStore] = None,
    sticky_levels: int = 1,
    name: str = "",
) -> LastLineBufferCache:
    """The paper's Section 6 design: DE cache plus last-line buffer."""
    inner = DynamicExclusionCache(geometry, store=store, sticky_levels=sticky_levels)
    return LastLineBufferCache(inner, name=name or f"dynamic-exclusion/{geometry.line_size}B")


class ExclusionStreamBufferCache(Cache):
    """Section 6, scheme 3: leave excluded lines in a stream buffer.

    A ``depth``-line sequential stream buffer fronts the exclusion
    cache.  A reference to the most recent line is served directly
    (as in the last-line scheme); a reference that matches the stream
    head is a *prefetch* hit — the line is offered to the FSM (which
    may store or exclude it) but costs no memory miss, and the stream
    extends by one line.  Anything else is a miss that restarts the
    stream.  This composes the paper's two Jouppi-inspired mechanisms:
    exclusion removes conflict misses, the stream hides sequential ones.
    """

    def __init__(self, inner: Cache, depth: int = 4, name: str = "") -> None:
        if depth < 1:
            raise ValueError("stream depth must be at least 1")
        super().__init__(inner.geometry, name=name or f"stream+{inner.name}")
        self.inner = inner
        self.depth = depth
        self._offset_bits = inner.geometry.offset_bits
        self._last_line: Optional[int] = None
        self._stream: List[int] = []

    def _reset_state(self) -> None:
        self.inner.reset()
        self._last_line = None
        self._stream = []

    def _restart_stream(self, miss_line: int) -> None:
        self._stream = [miss_line + offset for offset in range(1, self.depth + 1)]

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        stats = self.stats
        stats.accesses += 1
        if line == self._last_line:
            stats.hits += 1
            stats.buffer_hits += 1
            return _BUFFER_HIT
        self._last_line = line
        if self._stream and self._stream[0] == line:
            # Prefetch hit: the line arrived from the next level before
            # it was needed.  The FSM still decides whether it is worth
            # a cache frame, but no miss is charged.
            stats.hits += 1
            stats.buffer_hits += 1
            self._stream.pop(0)
            self._stream.append(line + self.depth)
            self.inner.access(addr, kind)
            return _BUFFER_HIT
        result = self.inner.access(addr, kind)
        if result.hit:
            stats.hits += 1
            return result
        stats.misses += 1
        if result.bypassed:
            stats.bypasses += 1
        self._restart_stream(line)
        return result

    def resident_lines(self) -> FrozenSet[int]:
        resident = set(self.inner.resident_lines())
        if self._last_line is not None:
            resident.add(self._last_line)
        return frozenset(resident)


class InstructionRegisterCache(Cache):
    """Section 6, scheme 1: a line-wide instruction register.

    Functionally this is the same as the last-line buffer for a single
    reference stream; it is kept as a distinct model because its stats
    separate *register* hits (sequential words of the current line) from
    cache hits, which the efficiency table uses.  For interleaved I/D
    traces the register only captures instruction-side runs.
    """

    def __init__(self, inner: Cache, name: str = "") -> None:
        super().__init__(inner.geometry, name=name or f"iregister+{inner.name}")
        self.inner = inner
        self._offset_bits = inner.geometry.offset_bits
        self._register_line: Optional[int] = None

    def _reset_state(self) -> None:
        self.inner.reset()
        self._register_line = None

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        stats = self.stats
        stats.accesses += 1
        if kind == RefKind.IFETCH and line == self._register_line:
            stats.hits += 1
            stats.buffer_hits += 1
            return _BUFFER_HIT
        if kind == RefKind.IFETCH:
            self._register_line = line
        result = self.inner.access(addr, kind)
        if result.hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if result.bypassed:
                stats.bypasses += 1
        return result

    def resident_lines(self) -> FrozenSet[int]:
        resident = set(self.inner.resident_lines())
        if self._register_line is not None:
            resident.add(self._register_line)
        return frozenset(resident)
