"""Hybrid: dynamic exclusion plus a victim buffer (extension).

The paper argues victim caches and dynamic exclusion attack different
conflict populations — small hot conflict sets vs the long tail of
instruction conflicts.  The obvious question is whether combining them
stacks the benefits: let the FSM keep the sticky winner resident *and*
catch its evicted rival in a small fully-associative buffer.

The composition is: a :class:`DynamicExclusionCache` whose evictions
fall into an LRU victim buffer; a reference that misses the main array
but hits the buffer swaps in (a hit, as in Jouppi's design) and counts
as a buffer hit.  Bypassed words are *not* placed in the buffer — the
FSM just decided they are not worth SRAM, which is exactly the filter a
victim buffer otherwise lacks.

``benchmarks/bench_ablation_victim.py`` compares the hybrid against
each mechanism alone.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..caches.base import AccessResult, Cache
from ..caches.geometry import CacheGeometry
from ..trace.reference import RefKind
from .exclusion_cache import DynamicExclusionCache
from .hitlast import HitLastStore

_HIT = AccessResult(hit=True)


class ExclusionVictimCache(Cache):
    """Dynamic exclusion backed by an ``entries``-deep victim buffer."""

    def __init__(
        self,
        geometry: CacheGeometry,
        entries: int = 4,
        store: Optional[HitLastStore] = None,
        sticky_levels: int = 1,
        name: str = "",
    ) -> None:
        if entries < 1:
            raise ValueError("victim buffer needs at least one entry")
        super().__init__(geometry, name=name or f"exclusion+victim-{entries}")
        self.inner = DynamicExclusionCache(
            geometry, store=store, sticky_levels=sticky_levels
        )
        self.entries = entries
        self._offset_bits = geometry.offset_bits
        # line -> None, ordered LRU-first.
        self._buffer: "OrderedDict[int, None]" = OrderedDict()

    def _reset_state(self) -> None:
        self.inner.reset()
        self._buffer = OrderedDict()

    def _buffer_insert(self, line: int) -> None:
        buffer = self._buffer
        if line in buffer:
            buffer.move_to_end(line)
            return
        if len(buffer) >= self.entries:
            buffer.popitem(last=False)
        buffer[line] = None

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        stats = self.stats
        if self.inner.contains(addr):
            stats.accesses += 1
            stats.hits += 1
            self.inner.access(addr, kind)  # keep FSM/LRU state exact
            return _HIT
        if line in self._buffer:
            # Victim hit: swap into the main array through the FSM.  The
            # line was recently resident, so we re-install it directly
            # (the swap of Jouppi's design) rather than re-running the
            # bypass decision; whatever it displaces enters the buffer.
            stats.accesses += 1
            stats.hits += 1
            stats.buffer_hits += 1
            del self._buffer[line]
            result = self.inner.access(addr, kind)
            if result.miss and result.bypassed:
                # FSM kept it out; it stays the most recent victim.
                self._buffer_insert(line)
            elif result.evicted_line is not None:
                self._buffer_insert(result.evicted_line)
            return _HIT
        stats.accesses += 1
        result = self.inner.access(addr, kind)
        stats.misses += 1
        if result.bypassed:
            stats.bypasses += 1
        elif result.evicted_line is not None:
            stats.evictions += 1
            self._buffer_insert(result.evicted_line)
        elif result.miss:
            stats.cold_misses += 1
        return result

    def resident_lines(self) -> FrozenSet[int]:
        resident = set(self.inner.resident_lines())
        resident.update(self._buffer)
        return frozenset(resident)
