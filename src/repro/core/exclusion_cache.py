"""The dynamic-exclusion direct-mapped cache (the paper's contribution).

This is the production simulator: a direct-mapped cache whose
replacement decisions follow the FSM of :mod:`repro.core.fsm`.  The FSM
logic is inlined here for speed (these loops run millions of times in
the figure sweeps); ``tests/core/test_exclusion_cache.py`` checks this
implementation reference-by-reference against the readable FSM.

Each geometry *line* is one exclusion unit.  With ``line_size=4`` every
line is a single instruction — the paper's Sections 3-5 configuration.
For longer lines, wrap this cache in
:class:`repro.core.long_lines.LastLineBufferCache` (Section 6).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..caches.base import AccessResult, Cache
from ..caches.geometry import CacheGeometry
from ..caches.stats import CacheStats, ExclusionEvents
from ..trace.reference import RefKind
from ..trace.trace import Trace
from .fsm import LineState
from .hitlast import HitLastStore, IdealHitLastStore

_HIT = AccessResult(hit=True)
_COLD_MISS = AccessResult(hit=False)
_BYPASS = AccessResult(hit=False, bypassed=True)


class DynamicExclusionCache(Cache):
    """Direct-mapped cache with the dynamic-exclusion replacement policy.

    Parameters
    ----------
    geometry:
        Must be direct-mapped (associativity 1).
    store:
        Hit-last backing store; defaults to a fresh
        :class:`~repro.core.hitlast.IdealHitLastStore`.
    sticky_levels:
        1 for the paper's single sticky bit; more for the multi-sticky
        extension.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        store: Optional[HitLastStore] = None,
        sticky_levels: int = 1,
        name: str = "",
    ) -> None:
        if geometry.associativity != 1:
            raise ValueError("DynamicExclusionCache requires associativity 1")
        if sticky_levels < 1:
            raise ValueError("sticky_levels must be at least 1")
        super().__init__(geometry, name=name or "dynamic-exclusion")
        self.store = store if store is not None else IdealHitLastStore()
        self.sticky_levels = sticky_levels
        #: Paper-mechanism event counts (FSM rows 4/5 and store flips);
        #: accumulated alongside ``stats``, cleared by :meth:`reset`.
        self.events = ExclusionEvents()
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.num_sets - 1
        sets = geometry.num_sets
        self._tags: List[Optional[int]] = [None] * sets
        self._sticky: List[int] = [0] * sets
        self._hl: List[bool] = [False] * sets

    def _reset_state(self) -> None:
        sets = self.geometry.num_sets
        self._tags = [None] * sets
        self._sticky = [0] * sets
        self._hl = [False] * sets
        self.store.reset()
        self.events = ExclusionEvents()

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        tags = self._tags
        resident = tags[index]
        if resident == line:
            stats.hits += 1
            self._sticky[index] = self.sticky_levels
            self._hl[index] = True
            return _HIT
        stats.misses += 1
        if resident is None:
            stats.cold_misses += 1
            tags[index] = line
            self._sticky[index] = self.sticky_levels
            self._hl[index] = True
            return _COLD_MISS
        store = self.store
        events = self.events
        if self._sticky[index] == 0:
            # Unsticky resident: replace, and optimistically mark the
            # incoming word hit-last (paper's A,!s -> B,s transition).
            # (``lookup`` is a pure read on every store, so the flip
            # check cannot perturb the simulation.)
            if store.lookup(resident) != self._hl[index]:
                events.exclusion_flips += 1
            store.update(resident, self._hl[index])
            tags[index] = line
            self._sticky[index] = self.sticky_levels
            self._hl[index] = True
            stats.evictions += 1
            return AccessResult(hit=False, evicted_line=resident)
        if store.lookup(line):
            # Sticky resident, but the incoming word hit last time it
            # was cached: load it anyway.  Its fresh hl copy starts at 0
            # so that if it leaves without hitting, its bit is reset.
            events.hit_last_loads += 1
            if store.lookup(resident) != self._hl[index]:
                events.exclusion_flips += 1
            store.update(resident, self._hl[index])
            tags[index] = line
            self._sticky[index] = self.sticky_levels
            self._hl[index] = False
            stats.evictions += 1
            return AccessResult(hit=False, evicted_line=resident)
        # Sticky resident wins: bypass the incoming word.
        self._sticky[index] -= 1
        stats.bypasses += 1
        events.sticky_saves += 1
        return _BYPASS

    def simulate(self, trace: Trace) -> CacheStats:
        """Stats-only fast path over :meth:`access`.

        Identical FSM transitions and store traffic, but no per-reference
        :class:`AccessResult` allocation and no method-call overhead per
        reference.  Subclasses that override ``access`` keep the generic
        base-class loop.
        """
        if type(self) is not DynamicExclusionCache:
            return super().simulate(trace)
        tags = self._tags
        sticky = self._sticky
        hl = self._hl
        store = self.store
        lookup = store.lookup
        update = store.update
        mask = self._index_mask
        shift = self._offset_bits
        sticky_max = self.sticky_levels
        hits = cold = evictions = bypasses = 0
        hit_last_loads = flips = 0
        for addr in trace.addrs.tolist():
            line = addr >> shift
            index = line & mask
            resident = tags[index]
            if resident == line:
                hits += 1
                sticky[index] = sticky_max
                hl[index] = True
            elif resident is None:
                cold += 1
                tags[index] = line
                sticky[index] = sticky_max
                hl[index] = True
            elif sticky[index] == 0:
                if lookup(resident) != hl[index]:
                    flips += 1
                update(resident, hl[index])
                tags[index] = line
                sticky[index] = sticky_max
                hl[index] = True
                evictions += 1
            elif lookup(line):
                hit_last_loads += 1
                if lookup(resident) != hl[index]:
                    flips += 1
                update(resident, hl[index])
                tags[index] = line
                sticky[index] = sticky_max
                hl[index] = False
                evictions += 1
            else:
                sticky[index] -= 1
                bypasses += 1
        accesses = len(trace)
        stats = self.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += accesses - hits
        stats.cold_misses += cold
        stats.evictions += evictions
        stats.bypasses += bypasses
        events = self.events
        events.sticky_saves += bypasses
        events.hit_last_loads += hit_last_loads
        events.exclusion_flips += flips
        ExclusionEvents(
            sticky_saves=bypasses,
            hit_last_loads=hit_last_loads,
            exclusion_flips=flips,
        ).publish(trace.name, engine="reference")
        return stats

    def contains(self, addr: int) -> bool:
        # O(1) override; wrappers (write policies, hierarchies) probe
        # residency on hot paths.
        line = addr >> self._offset_bits
        return self._tags[line & self._index_mask] == line

    def resident_lines(self) -> FrozenSet[int]:
        return frozenset(tag for tag in self._tags if tag is not None)

    # -- introspection (tests, hierarchy) ----------------------------------

    def line_state(self, index: int) -> LineState:
        """Snapshot of one line's FSM state."""
        return LineState(
            tag=self._tags[index],
            sticky=self._sticky[index],
            hit_last=self._hl[index],
        )

    def flush_hitlast(self) -> None:
        """Write every resident line's hl copy back to the store.

        Models draining the L1 copies (for example at a context switch);
        used by tests to observe the store's view of resident words.
        """
        for index, tag in enumerate(self._tags):
            if tag is not None:
                self.store.update(tag, self._hl[index])
