"""Dynamic exclusion for set-associative caches (extension).

The paper develops dynamic exclusion for direct-mapped caches; this
module provides the natural generalisation the paper's conclusion
gestures at: combine LRU victim selection with the sticky / hit-last
gate.  Each way carries its own sticky counter and hit-last copy; on a
miss the LRU way is the candidate victim, and the FSM decides whether
the incoming word is worth displacing it:

* incoming word's ``h`` bit set  -> replace the LRU way;
* LRU way unsticky               -> replace it (and optimistically mark
  the incoming word hit-last, the paper's ``A,!s -> B,s`` transition);
* otherwise                      -> bypass and decrement the LRU way's
  sticky counter.

With ``associativity == 1`` this reduces *exactly* to
:class:`~repro.core.exclusion_cache.DynamicExclusionCache` (the test
suite checks this differentially), so the class is a strict superset of
the paper's design.  Where it helps beyond LRU: cyclic patterns over
``ways + 1`` conflicting words, the set-associative analogue of the
paper's ``(ab)^n`` — plain LRU misses everything, exclusion pins
``ways`` of them.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..caches.base import AccessResult, Cache
from ..caches.geometry import CacheGeometry
from ..trace.reference import RefKind
from .hitlast import HitLastStore, IdealHitLastStore

_HIT = AccessResult(hit=True)
_COLD_MISS = AccessResult(hit=False)
_BYPASS = AccessResult(hit=False, bypassed=True)


class _ExclusionSet:
    """One set: tags, per-way sticky/hit-last, LRU order."""

    __slots__ = ("tags", "sticky", "hl", "order")

    def __init__(self, ways: int) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.sticky: List[int] = [0] * ways
        self.hl: List[bool] = [False] * ways
        # LRU-first list of way indices.
        self.order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self.order.remove(way)
        self.order.append(way)


class SetAssociativeExclusionCache(Cache):
    """LRU set-associative cache with the dynamic-exclusion gate."""

    def __init__(
        self,
        geometry: CacheGeometry,
        store: Optional[HitLastStore] = None,
        sticky_levels: int = 1,
        name: str = "",
    ) -> None:
        if sticky_levels < 1:
            raise ValueError("sticky_levels must be at least 1")
        super().__init__(
            geometry, name=name or f"exclusion-{geometry.associativity}-way"
        )
        self.store = store if store is not None else IdealHitLastStore()
        self.sticky_levels = sticky_levels
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.num_sets - 1
        self._sets = [
            _ExclusionSet(geometry.associativity) for _ in range(geometry.num_sets)
        ]

    def _reset_state(self) -> None:
        self._sets = [
            _ExclusionSet(self.geometry.associativity)
            for _ in range(self.geometry.num_sets)
        ]
        self.store.reset()

    def access(self, addr: int, kind: RefKind = RefKind.IFETCH) -> AccessResult:
        line = addr >> self._offset_bits
        index = line & self._index_mask
        stats = self.stats
        stats.accesses += 1
        cache_set = self._sets[index]
        tags = cache_set.tags
        try:
            way = tags.index(line)
        except ValueError:
            way = -1
        if way >= 0:
            stats.hits += 1
            cache_set.touch(way)
            cache_set.sticky[way] = self.sticky_levels
            cache_set.hl[way] = True
            return _HIT
        stats.misses += 1
        try:
            empty = tags.index(None)
        except ValueError:
            empty = -1
        if empty >= 0:
            tags[empty] = line
            cache_set.sticky[empty] = self.sticky_levels
            cache_set.hl[empty] = True
            cache_set.touch(empty)
            stats.cold_misses += 1
            return _COLD_MISS
        victim = cache_set.order[0]
        victim_tag = tags[victim]
        store = self.store
        # FSM row order matters (see repro.core.fsm): an unsticky victim
        # is replaced with the incoming hl copy *set*, whereas the
        # hit-last gate loads with the copy *clear*.
        if cache_set.sticky[victim] == 0:
            store.update(victim_tag, cache_set.hl[victim])
            tags[victim] = line
            cache_set.sticky[victim] = self.sticky_levels
            cache_set.hl[victim] = True
            cache_set.touch(victim)
            stats.evictions += 1
            return AccessResult(hit=False, evicted_line=victim_tag)
        if store.lookup(line):
            # Hit-last gate: load despite stickiness; fresh copy clear.
            store.update(victim_tag, cache_set.hl[victim])
            tags[victim] = line
            cache_set.sticky[victim] = self.sticky_levels
            cache_set.hl[victim] = False
            cache_set.touch(victim)
            stats.evictions += 1
            return AccessResult(hit=False, evicted_line=victim_tag)
        cache_set.sticky[victim] -= 1
        stats.bypasses += 1
        return _BYPASS

    def resident_lines(self) -> FrozenSet[int]:
        resident = set()
        for cache_set in self._sets:
            for tag in cache_set.tags:
                if tag is not None:
                    resident.add(tag)
        return frozenset(resident)
