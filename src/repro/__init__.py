"""repro — a reproduction of McFarling, "Cache Replacement with Dynamic
Exclusion" (ISCA 1992).

The package is organised as:

* :mod:`repro.trace` — address traces (containers, I/O, statistics);
* :mod:`repro.workloads` — synthetic SPEC'89-like programs and the
  Section-3 conflict microkernels;
* :mod:`repro.caches` — baseline cache models (direct-mapped,
  set-associative, Belady-optimal-with-bypass, victim, stream buffer);
* :mod:`repro.core` — dynamic exclusion: the FSM, hit-last stores, the
  DE cache, long-line support, the hardware cost model;
* :mod:`repro.hierarchy` — two-level hierarchies with the Section-5
  hit-last storage strategies;
* :mod:`repro.analysis` — 3C classification, sweeps, tables, charts;
* :mod:`repro.perf` — fast set-partitioned simulation kernels, engine
  dispatch, and the process-parallel sweep runner;
* :mod:`repro.experiments` — one module per paper figure/table, plus a
  CLI (``python -m repro.experiments``).

Quickstart::

    from repro import (CacheGeometry, DirectMappedCache,
                       DynamicExclusionCache, instruction_trace)

    geometry = CacheGeometry(size=32 * 1024, line_size=4)
    trace = instruction_trace("gcc")
    base = DirectMappedCache(geometry).simulate(trace)
    excl = DynamicExclusionCache(geometry).simulate(trace)
    print(base.miss_rate, excl.miss_rate)
"""

from .caches import (
    AccessResult,
    Cache,
    CacheGeometry,
    CacheStats,
    DirectMappedCache,
    FullyAssociativeCache,
    OptimalCache,
    OptimalDirectMappedCache,
    SetAssociativeCache,
    StreamBufferCache,
    VictimCache,
    percent_reduction,
)
from .core import (
    Decision,
    DynamicExclusionCache,
    DynamicExclusionFSM,
    HashedHitLastStore,
    IdealHitLastStore,
    L2BackedHitLastStore,
    LastLineBufferCache,
    LineState,
    make_long_line_exclusion_cache,
)
from .hierarchy import Strategy, TwoLevelCache, TwoLevelResult
from .trace import Reference, RefKind, Trace, TraceBuilder
from .workloads import (
    benchmark_names,
    build_program,
    data_trace,
    instruction_trace,
    mixed_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessResult",
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "Decision",
    "DirectMappedCache",
    "DynamicExclusionCache",
    "DynamicExclusionFSM",
    "FullyAssociativeCache",
    "HashedHitLastStore",
    "IdealHitLastStore",
    "L2BackedHitLastStore",
    "LastLineBufferCache",
    "LineState",
    "OptimalCache",
    "OptimalDirectMappedCache",
    "Reference",
    "RefKind",
    "SetAssociativeCache",
    "Strategy",
    "StreamBufferCache",
    "Trace",
    "TraceBuilder",
    "TwoLevelCache",
    "TwoLevelResult",
    "VictimCache",
    "benchmark_names",
    "build_program",
    "data_trace",
    "instruction_trace",
    "make_long_line_exclusion_cache",
    "mixed_trace",
    "percent_reduction",
    "__version__",
]
