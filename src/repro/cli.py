"""General-purpose command line tools.

Ten subcommands make the library usable without writing Python:

* ``trace``    — generate a benchmark trace and write it as din text;
* ``simulate`` — run a cache configuration over a din trace (or a named
  benchmark) and print the statistics;
* ``classify`` — 3C miss classification of a trace against a geometry;
* ``conflicts`` — find the thrashing sets and ping-pong address pairs;
* ``experiments`` — the paper-figure registry (same flags as
  ``python -m repro.experiments``);
* ``obs``      — observability tools; ``obs summarize DIR`` renders the
  span tree, manifest, and slowest cells of a ``--trace-dir`` run;
* ``serve``    — run the result-store daemon (:mod:`repro.serve`) over
  a content-addressed journal store;
* ``store``    — maintain a result store offline; ``store compact``
  rewrites the append-only history into generation-stamped shards so
  multi-gigabyte journals reload without replaying superseded lines;
* ``query``    — talk to a running daemon: list specs, look up a stored
  cell by content key, or run an experiment server-side;
* ``worker``   — the fleet-backend protocol loop: serve sweep cells
  over NDJSON on stdin/stdout until EOF or a shutdown op (launched by
  ``--backend fleet``, locally or as ``ssh host python3 -m repro.cli
  worker``).

Examples::

    python -m repro.cli trace gcc --kind instruction --refs 100000 --out gcc.din
    python -m repro.cli simulate gcc.din --size 32768 --line 4 --policy exclusion
    python -m repro.cli simulate gcc --policy optimal --size 8192
    python -m repro.cli classify gcc.din --size 32768 --line 4
    python -m repro.cli experiments --only fig04 --engine fast --workers 4
    python -m repro.cli experiments --only fig05 --engine fast --trace-dir /tmp/obs
    python -m repro.cli obs summarize /tmp/obs
    python -m repro.cli serve --store /tmp/results --port 8377
    python -m repro.cli store compact --store /tmp/results
    python -m repro.cli query run fig04 --url http://127.0.0.1:8377
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Union

from .analysis.conflicts import format_profile, profile_conflicts
from .analysis.missclass import classify_misses
from .caches.base import Cache, OfflineCache
from .caches.direct_mapped import DirectMappedCache
from .caches.geometry import CacheGeometry
from .caches.optimal import OptimalDirectMappedCache, OptimalLastLineCache
from .caches.set_associative import SetAssociativeCache
from .caches.stream_buffer import StreamBufferCache
from .caches.victim import VictimCache
from .core.exclusion_cache import DynamicExclusionCache
from .core.hitlast import HashedHitLastStore, IdealHitLastStore
from .core.long_lines import make_long_line_exclusion_cache
from .env import validate as validate_env
from .obs import configure_logging, summarize_directory
from .perf.backends import backend_names, set_default_backend
from .perf.engine import ENGINES, simulate as engine_simulate
from .perf.parallel import set_default_workers
from .trace.io import load_din, save_din
from .trace.trace import Trace
from .workloads.registry import benchmark_names, trace_by_kind

POLICIES = [
    "direct",
    "exclusion",
    "exclusion-hashed",
    "optimal",
    "lru",
    "fifo",
    "random",
    "victim",
    "stream",
]


def _load_trace(source: str, kind: str, refs: int) -> Trace:
    """A din file path or a benchmark name."""
    if source in benchmark_names():
        return trace_by_kind(source, kind, max_refs=refs)
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"{source!r} is neither a benchmark ({benchmark_names()}) "
            f"nor an existing trace file"
        )
    return load_din(path, name=path.stem)


def _build_simulator(
    policy: str, geometry: CacheGeometry, args: argparse.Namespace
) -> Union[Cache, OfflineCache]:
    if policy == "direct":
        return DirectMappedCache(geometry)
    if policy == "exclusion":
        store = IdealHitLastStore(default=not args.assume_miss)
        if geometry.line_size > 4:
            return make_long_line_exclusion_cache(
                geometry, store=store, sticky_levels=args.sticky
            )
        return DynamicExclusionCache(geometry, store=store, sticky_levels=args.sticky)
    if policy == "exclusion-hashed":
        store = HashedHitLastStore(
            geometry.num_lines * args.hashed_bits, default=not args.assume_miss
        )
        if geometry.line_size > 4:
            return make_long_line_exclusion_cache(
                geometry, store=store, sticky_levels=args.sticky
            )
        return DynamicExclusionCache(geometry, store=store, sticky_levels=args.sticky)
    if policy == "optimal":
        if geometry.line_size > 4:
            return OptimalLastLineCache(geometry)
        return OptimalDirectMappedCache(geometry)
    if policy in ("lru", "fifo", "random"):
        assoc_geometry = CacheGeometry(
            geometry.size, geometry.line_size, associativity=args.ways
        )
        return SetAssociativeCache(assoc_geometry, policy=policy)
    if policy == "victim":
        return VictimCache(geometry, entries=args.victim_entries)
    if policy == "stream":
        return StreamBufferCache(geometry, depth=args.stream_depth)
    raise SystemExit(f"unknown policy {policy!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = trace_by_kind(args.benchmark, args.kind, max_refs=args.refs)
    if args.out:
        save_din(trace, args.out)
        print(f"wrote {len(trace):,} references to {args.out}")
    else:
        save_din(trace, sys.stdout)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    geometry = CacheGeometry(args.size, args.line)
    trace = _load_trace(args.trace, args.kind, args.refs)
    simulator = _build_simulator(args.policy, geometry, args)
    stats = engine_simulate(simulator, trace, engine=args.engine)
    print(f"trace      : {trace.name or args.trace} ({len(trace):,} refs)")
    print(f"cache      : {geometry} [{args.policy}]")
    print(f"accesses   : {stats.accesses:,}")
    print(f"hits       : {stats.hits:,}  ({stats.hit_rate:.3%})")
    print(f"misses     : {stats.misses:,}  ({stats.miss_rate:.3%})")
    if stats.bypasses:
        print(f"bypasses   : {stats.bypasses:,}")
    if stats.buffer_hits:
        print(f"buffer hits: {stats.buffer_hits:,}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    geometry = CacheGeometry(args.size, args.line)
    trace = _load_trace(args.trace, args.kind, args.refs)
    breakdown = classify_misses(trace, geometry)
    print(f"trace      : {trace.name or args.trace} ({len(trace):,} refs)")
    print(f"cache      : {geometry}")
    print(f"compulsory : {breakdown.compulsory:,}  ({breakdown.rate('compulsory'):.3%})")
    print(f"capacity   : {breakdown.capacity:,}  ({breakdown.rate('capacity'):.3%})")
    print(f"conflict   : {breakdown.conflict:,}  ({breakdown.rate('conflict'):.3%})")
    print(f"total      : {breakdown.total:,}  ({breakdown.miss_rate:.3%})")
    return 0


def _cmd_conflicts(args: argparse.Namespace) -> int:
    geometry = CacheGeometry(args.size, args.line)
    trace = _load_trace(args.trace, args.kind, args.refs)
    profile = profile_conflicts(trace, geometry)
    print(f"trace      : {trace.name or args.trace} ({len(trace):,} refs)")
    print(format_profile(profile, top=args.top))
    return 0


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    try:
        print(summarize_directory(args.directory, top=args.top), end="")
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from . import env
    from .serve import ResultServer
    from .store import open_store

    store_dir = args.store or env.serve_store()
    if not store_dir:
        raise SystemExit(
            "serve needs a store directory: pass --store DIR or set REPRO_SERVE_STORE"
        )
    store = open_store(store_dir, extra_sources=args.journals or ())
    ingested = store.refresh()
    tracer = None
    if args.trace_dir:
        from . import obs

        tracer = obs.install_tracer(obs.Tracer(args.trace_dir))
        print(f"tracing requests to {tracer.path}", file=sys.stderr)
    server = ResultServer(
        store, host=args.host, port=args.port, default_engine=args.engine,
        default_backend=args.backend,
    )
    print(
        f"serving {store_dir} ({len(store)} cells, {ingested} ingested, "
        f"{len(store.sources())} journals) at {server.url}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if tracer is not None:
            from . import obs

            obs.uninstall_tracer()
            tracer.close()
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from . import env
    from .store import DEFAULT_SHARDS, open_store

    store_dir = args.store or env.serve_store()
    if not store_dir:
        raise SystemExit(
            "store compact needs a store directory: pass --store DIR or "
            "set REPRO_SERVE_STORE"
        )
    store = open_store(store_dir, extra_sources=args.journals or ())
    shards = DEFAULT_SHARDS if args.shards is None else args.shards
    try:
        stats = store.compact(shards=shards)
    except ValueError as exc:
        raise SystemExit(str(exc))
    saved = stats.bytes_before - stats.bytes_after
    print(
        f"compacted {store_dir} to generation {stats.generation}: "
        f"{stats.entries} cells + {stats.errors} cached errors in "
        f"{stats.shard_files} shard(s), "
        f"{stats.bytes_before:,} -> {stats.bytes_after:,} bytes "
        f"({saved:+,} reclaimed)"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .perf.worker import worker_main

    return worker_main()


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.query_command == "specs":
            for spec in client.specs():
                marker = " (hidden)" if spec.get("hidden") else ""
                print(f"{spec['id']:12s} [{spec['kind']:7s}] {spec['title']}{marker}")
            return 0
        if args.query_command == "cell":
            print(json.dumps(client.cell(args.key), indent=2, sort_keys=True))
            return 0
        # query run: stream progress to stderr, artefact to stdout
        def on_event(event: dict) -> None:
            kind = event.get("event")
            if kind == "plan":
                print(
                    f"[plan] {event['cells']} cells, {event['cached']} cached, "
                    f"{event['pending']} to compute [{event['engine']}]",
                    file=sys.stderr,
                )
            elif kind == "cell" and args.progress:
                status = "cached" if event["cached"] else f"{event['seconds']:.3f}s"
                print(
                    f"[cell] {event['label']} | {event['parameter']} | "
                    f"{event['trace']} ({status})",
                    file=sys.stderr,
                )

        done = client.run(
            args.spec, engine=args.engine, workers=args.workers,
            backend=args.backend, on_event=on_event,
        )
        manifest = done["manifest"]
        print(
            f"[done] run {done['run_id']}: {manifest['cells_computed']} computed, "
            f"{manifest['cells_cached']} cached in {manifest['wall_seconds']:.3f}s",
            file=sys.stderr,
        )
        print(done["report"])
        return 0
    except ServeError as exc:
        raise SystemExit(str(exc))


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="din file path or benchmark name")
    parser.add_argument("--kind", default="instruction",
                        choices=["instruction", "data", "mixed"],
                        help="reference kind for benchmark traces")
    parser.add_argument("--refs", type=int, default=200_000,
                        help="reference budget for benchmark traces")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace and cache-simulation tools for the dynamic-exclusion reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_parser = sub.add_parser("trace", help="generate a benchmark trace as din text")
    trace_parser.add_argument("benchmark", choices=benchmark_names())
    trace_parser.add_argument("--kind", default="instruction",
                              choices=["instruction", "data", "mixed"])
    trace_parser.add_argument("--refs", type=int, default=200_000)
    trace_parser.add_argument("--out", help="output path (default: stdout)")
    trace_parser.set_defaults(func=_cmd_trace)

    sim_parser = sub.add_parser("simulate", help="simulate a cache over a trace")
    _add_trace_source(sim_parser)
    sim_parser.add_argument("--size", type=int, default=32 * 1024, help="bytes")
    sim_parser.add_argument("--line", type=int, default=4, help="line size, bytes")
    sim_parser.add_argument("--policy", default="direct", choices=POLICIES)
    sim_parser.add_argument("--ways", type=int, default=2,
                            help="associativity for lru/fifo/random")
    sim_parser.add_argument("--sticky", type=int, default=1,
                            help="sticky levels for exclusion policies")
    sim_parser.add_argument("--hashed-bits", type=int, default=4,
                            help="hashed hit-last bits per line")
    sim_parser.add_argument("--assume-miss", action="store_true",
                            help="cold hit-last polarity 0 instead of 1")
    sim_parser.add_argument("--victim-entries", type=int, default=4)
    sim_parser.add_argument("--stream-depth", type=int, default=4)
    sim_parser.add_argument("--engine", choices=list(ENGINES), default=None,
                            help="'fast' uses the set-partitioned numpy "
                            "kernels where available (identical results); "
                            "'batch' additionally vectorizes multi-cell "
                            "sweeps sharing one trace (single-cell runs "
                            "behave like 'fast'); "
                            "default: the process default ('reference')")
    sim_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help="default process-pool size for any sweep "
                            "run in-process (default: REPRO_WORKERS or 1)")
    sim_parser.add_argument("--backend", choices=backend_names(), default=None,
                            help="default sweep execution backend for any "
                            "sweep run in-process: inline, local-pool, or "
                            "fleet (default: REPRO_BACKEND or automatic)")
    sim_parser.set_defaults(func=_cmd_simulate)

    classify_parser = sub.add_parser("classify", help="3C miss classification")
    _add_trace_source(classify_parser)
    classify_parser.add_argument("--size", type=int, default=32 * 1024)
    classify_parser.add_argument("--line", type=int, default=4)
    classify_parser.set_defaults(func=_cmd_classify)

    conflicts_parser = sub.add_parser(
        "conflicts", help="find thrashing sets and ping-pong pairs"
    )
    _add_trace_source(conflicts_parser)
    conflicts_parser.add_argument("--size", type=int, default=32 * 1024)
    conflicts_parser.add_argument("--line", type=int, default=4)
    conflicts_parser.add_argument("--top", type=int, default=10,
                                  help="how many sets to show")
    conflicts_parser.set_defaults(func=_cmd_conflicts)

    experiments_parser = sub.add_parser(
        "experiments",
        help="run the paper-figure registry (python -m repro.experiments)",
    )
    from .experiments import frontend as experiments_frontend

    experiments_frontend.add_arguments(experiments_parser)
    experiments_parser.set_defaults(
        func=lambda args: experiments_frontend.run(args, experiments_parser)
    )

    obs_parser = sub.add_parser(
        "obs", help="observability tools for --trace-dir run artefacts"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    summarize_parser = obs_sub.add_parser(
        "summarize",
        help="render the span tree, manifest, and slowest cells of a run "
        "directory (or every run one level below it)",
    )
    summarize_parser.add_argument(
        "directory", help="a --trace-dir path or one run directory under it"
    )
    summarize_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many slowest cells to show (default 10)",
    )
    summarize_parser.set_defaults(func=_cmd_obs_summarize)

    serve_parser = sub.add_parser(
        "serve",
        help="run the result-store daemon over a content-addressed journal store",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory: the writable primary journal plus run "
        "manifests live here (default: REPRO_SERVE_STORE)",
    )
    serve_parser.add_argument(
        "--journals", action="append", default=None, metavar="DIR",
        help="extra read-only journal directory to index (repeatable), "
        "e.g. past --resume-dir runs",
    )
    serve_parser.add_argument(
        "--host", default=None,
        help="bind address (default: REPRO_SERVE_HOST or 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help="bind port, 0 for ephemeral (default: REPRO_SERVE_PORT or 8377)",
    )
    serve_parser.add_argument(
        "--engine", choices=list(ENGINES), default="fast",
        help="engine for cells the store does not hold yet (default fast; "
        "batch shares the fast tier's store keys)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="default process-pool size for server-side sweeps "
        "(default: REPRO_WORKERS or 1)",
    )
    serve_parser.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="default execution backend for server-side sweeps: inline, "
        "local-pool, or fleet (default: REPRO_BACKEND or automatic); "
        "per-run override via the POST /run body",
    )
    serve_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="persist the daemon's spans (serve.request, execute_run, "
        "sweeps, shipped worker spans) to DIR/trace.jsonl for "
        "'repro obs summarize'",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    store_parser = sub.add_parser(
        "store", help="offline maintenance for a result store directory"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    compact_parser = store_sub.add_parser(
        "compact",
        help="rewrite the store's deduplicated index into generation-"
        "stamped shard files (atomic manifest swap; the primary journal "
        "is truncated and superseded lines are never replayed again)",
    )
    compact_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory to compact (default: REPRO_SERVE_STORE)",
    )
    compact_parser.add_argument(
        "--journals", action="append", default=None, metavar="DIR",
        help="extra read-only journal directory to fold into the "
        "compacted index (repeatable)",
    )
    compact_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard-file count, keys spread by prefix (default 16)",
    )
    compact_parser.set_defaults(func=_cmd_store_compact)

    query_parser = sub.add_parser(
        "query", help="query a running result-store daemon"
    )
    query_parser.add_argument(
        "--url", default=None,
        help="daemon base URL (default: REPRO_SERVE_URL or "
        "http://REPRO_SERVE_HOST:REPRO_SERVE_PORT)",
    )
    query_sub = query_parser.add_subparsers(dest="query_command", required=True)
    query_sub.add_parser("specs", help="list the daemon's experiment registry")
    cell_parser = query_sub.add_parser(
        "cell", help="look up one stored cell by its content key"
    )
    cell_parser.add_argument("key", help="sha256 content key of the cell")
    run_parser = query_sub.add_parser(
        "run", help="run an experiment server-side (cached cells are free)"
    )
    run_parser.add_argument("spec", help="experiment spec id; see 'query specs'")
    run_parser.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="engine for newly computed cells (default: the daemon's)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="server-side process-pool size for this run",
    )
    run_parser.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="server-side execution backend for this run "
        "(default: the daemon's)",
    )
    run_parser.add_argument(
        "--progress", action="store_true",
        help="print each newly resolved cell on stderr as it streams in",
    )
    query_parser.set_defaults(func=_cmd_query)

    worker_parser = sub.add_parser(
        "worker",
        help="serve fleet-backend sweep cells over NDJSON on stdin/stdout "
        "(long-lived; launched by --backend fleet, locally or over SSH)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    return parser


def main(argv: "List[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Validate the environment before any trace work: a malformed
    # REPRO_WORKERS should fail at startup, not when a pool spins up.
    try:
        validate_env()
    except ValueError as exc:
        parser.error(str(exc))
    configure_logging()
    workers = getattr(args, "workers", None)
    if workers is not None:
        if workers < 1:
            parser.error("--workers must be at least 1")
        set_default_workers(workers)
    backend = getattr(args, "backend", None)
    if backend is not None:
        set_default_backend(backend)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
