"""Figure 15: dynamic exclusion on combined I+D caches vs cache size.

Paper expectations: for small combined caches, where instruction
references dominate the misses, the improvement is nearly as large as
for instruction caches; for large caches data misses dominate and the
improvement shrinks.
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.stats import percent_reduction
from .fig04_cache_size import size_sweep_spec
from .spec import register, run_spec

TITLE = "Figure 15: combined I+D cache dynamic exclusion performance (b=4B)"


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="combined cache miss rate (%)")
    red = reductions()
    trail = ", ".join(f"{s // 1024}KB: {r:.1f}%" for s, r in red.items())
    return f"{table}\n\n{chart}\n\nDE reduction by size: {trail}"


SPEC = register(size_sweep_spec("fig15", TITLE, kind="mixed", render=_render))


def run() -> SweepResult:
    return run_spec(SPEC)


def reductions() -> "dict[int, float]":
    """Cache size -> percent reduction of the mixed-cache miss rate."""
    result = run()
    out = {}
    for size in result.parameters:
        dm = result.series["direct-mapped"].points[size]
        de = result.series["dynamic-exclusion"].points[size]
        out[int(size)] = percent_reduction(dm, de)
    return out


def report() -> str:
    return _render(run())
