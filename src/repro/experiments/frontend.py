"""The shared spec-driven front-end for the experiment registry.

Both entry points — ``python -m repro.experiments`` and
``python -m repro.cli experiments`` — are thin wrappers around this
module: one argument set (``--only/--filter/--list/--svg/--engine/
--workers/--resume-dir/--progress/--trace-dir``), one selection rule,
and one execution path through
:func:`repro.experiments.spec.run_spec`, so journaling, parallelism,
engine choice, and observability behave identically no matter which
door an experiment is launched through.

Output discipline: **stdout carries only the artefact** — the banner
and the rendered report (what you'd pipe into a file) — while run
chatter (svg/telemetry paths, timing footers, progress) goes to stderr
through the ``REPRO_LOG_LEVEL``-gated logger, so
``repro-experiments --only fig05 > fig05.txt`` captures a clean
report.

With ``--trace-dir DIR``, each experiment run writes ``DIR/<id>/``:
``trace.jsonl`` (the span tree), ``run_manifest.json`` (spec
fingerprint, engine, workers, env, git SHA, wall/CPU time), and — when
``REPRO_PROFILE=1`` — ``profile.txt`` (per-phase breakdown + hot
functions).  ``repro.cli obs summarize DIR`` renders them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .. import obs, perf
from ..env import profile_enabled
from ..env import validate as validate_env
from .spec import ExperimentSpec, fingerprint_digest, get_spec, render_spec, run_spec

_log = obs.get_logger("experiments")


def ordered_specs() -> "List[ExperimentSpec]":
    """Visible specs in presentation order (paper order, then extensions)."""
    from . import EXPERIMENTS

    return [get_spec(key) for key in EXPERIMENTS]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the uniform experiment flags on ``parser``."""
    parser.add_argument(
        "--only",
        action="append",
        metavar="ID",
        help="experiment id (repeatable); see --list",
    )
    parser.add_argument(
        "--filter",
        metavar="SUBSTR",
        default=None,
        help="run only experiments whose id or title contains SUBSTR "
        "(case-insensitive)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also render each sweep-style experiment as DIR/<id>.svg",
    )
    parser.add_argument(
        "--engine",
        choices=list(perf.ENGINES),
        default=None,
        help="simulation engine: 'fast' uses the set-partitioned numpy "
        "kernels where available (identical results), 'batch' adds "
        "vectorized multi-cell kernels so a whole geometry sweep sharing "
        "one trace runs in a single invocation (still identical results), "
        "'reference' the per-reference simulators (default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for sweep cells (default: REPRO_WORKERS "
        "or 1 = sequential)",
    )
    parser.add_argument(
        "--backend",
        choices=perf.backend_names(),
        default=None,
        help="sweep execution backend: 'inline' runs cells in this "
        "process, 'local-pool' uses one machine's process pool (plus the "
        "batched shared-memory tier), 'fleet' shards cells across "
        "long-lived repro worker subprocesses — local by default, or the "
        "REPRO_FLEET_HOSTS endpoints (SSH or command templates) "
        "(default: REPRO_BACKEND, or automatic by worker count)",
    )
    parser.add_argument(
        "--resume-dir",
        metavar="DIR",
        default=None,
        help="journal completed sweep cells under DIR and reuse them on "
        "the next run, so a crashed or interrupted sweep resumes instead "
        "of recomputing; telemetry is recorded there too",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report each sweep cell and a per-experiment telemetry "
        "summary on stderr",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write per-experiment observability artefacts under "
        "DIR/<id>/: trace.jsonl (span tree), run_manifest.json, and "
        "profile.txt when REPRO_PROFILE=1; render them with "
        "'repro.cli obs summarize DIR'",
    )


def select_specs(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> "List[ExperimentSpec]":
    specs = ordered_specs()
    if args.only:
        known = {spec.id for spec in specs}
        unknown = [key for key in args.only if key not in known]
        if unknown:
            parser.error(f"unknown experiment ids {unknown}; try --list")
        return [get_spec(key) for key in args.only]
    if args.filter:
        needle = args.filter.lower()
        selected = [
            spec
            for spec in specs
            if needle in spec.id.lower() or needle in spec.title.lower()
        ]
        if not selected:
            parser.error(f"--filter {args.filter!r} matches no experiments; try --list")
        return selected
    return specs


def run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Execute the parsed experiment arguments (shared by both CLIs)."""
    # Fail on malformed environment before any trace is generated: a bad
    # REPRO_WORKERS used to surface only when the first sweep spun up its
    # pool, minutes into a run.
    try:
        validate_env()
    except ValueError as exc:
        parser.error(str(exc))
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")
    obs.configure_logging()

    if args.list:
        for spec in ordered_specs():
            print(f"{spec.id:12s} {spec.title}")
        return 0

    selected = select_specs(args, parser)

    resume_dir: Optional[Path] = None
    if args.resume_dir:
        resume_dir = Path(args.resume_dir)
        resume_dir.mkdir(parents=True, exist_ok=True)

    svg_dir: Optional[Path] = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)

    trace_dir: Optional[Path] = None
    if getattr(args, "trace_dir", None):
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)

    telemetry_dir = resume_dir if resume_dir is not None else svg_dir
    profiling = profile_enabled()

    for spec in selected:
        started = time.time()
        perf.drain_telemetry()  # discard any runs from a prior experiment
        print(f"\n{'#' * 72}\n# {spec.id}: {spec.title}\n{'#' * 72}")
        result = _run_observed(spec, args, resume_dir, trace_dir, profiling)
        print(render_spec(spec, result))
        if svg_dir is not None:
            path = _maybe_save_svg(spec, result, svg_dir)
            if path is not None:
                _log.info("[svg written to %s]", path)
        elapsed = time.time() - started
        sweeps = perf.drain_telemetry()
        if telemetry_dir is not None and sweeps:
            path = _save_telemetry(spec.id, sweeps, elapsed, telemetry_dir)
            _log.info("[telemetry written to %s]", path)
        if args.progress:
            for record in sweeps:
                print(f"[{spec.id}] {record.summary()}", file=sys.stderr)
        _log.info("[%s done in %.1fs]", spec.id, elapsed)
    return 0


def _run_observed(
    spec: ExperimentSpec,
    args: argparse.Namespace,
    resume_dir: Optional[Path],
    trace_dir: Optional[Path],
    profiling: bool,
) -> object:
    """Run one spec under the requested observability instrumentation.

    With ``--trace-dir`` the spec gets its own run directory, a
    process-wide tracer whose root ``experiment`` span brackets the
    whole run (so the span tree accounts for the manifest's wall time),
    and a ``run_manifest.json``; with ``REPRO_PROFILE=1`` a profiler is
    installed for the duration and its breakdown written (or logged,
    without a trace dir).  Without either, this is exactly the plain
    ``run_spec`` call — no tracer, no profiler, zero overhead.
    """
    run_dir = trace_dir / spec.id if trace_dir is not None else None
    tracer = obs.install_tracer(obs.Tracer(run_dir)) if run_dir is not None else None
    registry = (
        obs.install_registry(obs.MetricsRegistry()) if run_dir is not None else None
    )
    profiler = obs.install_profiler(obs.Profiler()) if profiling else None
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    started_at = time.time()
    try:
        if tracer is not None:
            with tracer.span("experiment", spec=spec.id):
                result = _run_spec_args(spec, args, resume_dir)
        else:
            result = _run_spec_args(spec, args, resume_dir)
    finally:
        wall = time.perf_counter() - wall_started
        cpu = time.process_time() - cpu_started
        if profiler is not None:
            obs.uninstall_profiler()
            if run_dir is not None:
                path = profiler.write(run_dir)
                _log.info("[profile written to %s]", path)
            else:
                _log.info("profile breakdown:\n%s", profiler.report())
        if registry is not None:
            obs.uninstall_registry()
            metrics_path = run_dir / obs.METRICS_FILENAME
            metrics_path.write_text(
                json.dumps(registry.export(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            _log.info("[metrics written to %s]", metrics_path)
        if tracer is not None:
            obs.uninstall_tracer()
            tracer.close()
            manifest = obs.build_manifest(
                spec_id=spec.id,
                spec_fingerprint=fingerprint_digest(spec),
                engine=args.engine or perf.default_engine(),
                workers=perf.resolve_workers(args.workers),
                wall_seconds=wall,
                cpu_seconds=cpu,
                started_at=started_at,
            )
            path = obs.write_manifest(run_dir, manifest)
            _log.info("[manifest written to %s]", path)
    return result


def _run_spec_args(
    spec: ExperimentSpec, args: argparse.Namespace, resume_dir: Optional[Path]
) -> object:
    return run_spec(
        spec,
        engine=args.engine,
        workers=args.workers,
        journal=str(resume_dir) if resume_dir is not None else None,
        progress=True if args.progress else None,
        backend=getattr(args, "backend", None),
    )


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Cache Replacement with Dynamic Exclusion'",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv), parser)


def _save_telemetry(key: str, sweeps, elapsed: float, directory: Path) -> Path:
    """Record the experiment's sweep telemetry next to its outputs."""
    payload = {
        "kind": "experiment-telemetry",
        "version": 1,
        "experiment": key,
        "elapsed_seconds": round(elapsed, 3),
        "sweeps": [record.to_dict() for record in sweeps],
    }
    path = directory / f"{key}.telemetry.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _maybe_save_svg(spec: ExperimentSpec, result: object, directory: Path):
    """Render the experiment as SVG when its result is a sweep."""
    from ..analysis.svg import sweep_svg
    from ..analysis.sweep import SweepResult

    if not isinstance(result, SweepResult):
        return None
    path = directory / f"{spec.id}.svg"
    percent = all(
        0.0 <= value <= 1.0
        for series in result.series.values()
        for value in series.points.values()
    )
    path.write_text(sweep_svg(result, title=spec.title, percent=percent))
    return path
