"""Figure 12: miss-rate improvement vs cache size at 16-byte lines.

The same sweep as Figures 4/5 but with b=16B, the configuration the
paper's abstract quotes (33% average reduction at 32KB/16B).  Derived
from the hidden ``fig04-b16`` base spec, so the b=16B grid is simulated
once per process no matter how often the rates or reductions are read.
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from .fig05_improvement import percent_reduction_curves
from .spec import ExperimentSpec, register, run_spec

TITLE = "Figure 12: miss-rate reduction vs cache size (b=16B)"

LINE_SIZE = 16


def run_rates() -> SweepResult:
    """The raw miss-rate curves at b=16B (the shared base sweep)."""
    return run_spec("fig04-b16")


def _render(result: SweepResult) -> str:
    rates = format_sweep(run_rates(), title=TITLE + " — miss rates", value_format="{:.3%}")
    table = format_sweep(result, title=TITLE, value_format="{:.1f}%")
    chart = sweep_chart(result, title="reduction over direct-mapped (%)", percent=False)
    return f"{rates}\n\n{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="fig12",
        title=TITLE,
        base=("fig04-b16",),
        derive=percent_reduction_curves,
        render=_render,
    )
)


def run() -> SweepResult:
    """Percent-reduction curves at b=16B."""
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
