"""Figure 12: miss-rate improvement vs cache size at 16-byte lines.

The same sweep as Figures 4/5 but with b=16B, the configuration the
paper's abstract quotes (33% average reduction at 32KB/16B).
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.stats import percent_reduction
from . import fig04_cache_size

TITLE = "Figure 12: miss-rate reduction vs cache size (b=16B)"

LINE_SIZE = 16


def run_rates() -> SweepResult:
    """The raw miss-rate curves at b=16B."""
    return fig04_cache_size.run(line_size=LINE_SIZE)


def run() -> SweepResult:
    """Percent-reduction curves at b=16B."""
    base = run_rates()
    result = SweepResult(parameter_name="cache size", parameters=list(base.parameters))
    for size in base.parameters:
        dm = base.series["direct-mapped"].points[size]
        for label in ["dynamic-exclusion", "optimal"]:
            result.add(label, size, percent_reduction(dm, base.series[label].points[size]))
    return result


def report() -> str:
    rates = format_sweep(run_rates(), title=TITLE + " — miss rates", value_format="{:.3%}")
    reductions = run()
    table = format_sweep(reductions, title=TITLE, value_format="{:.1f}%")
    chart = sweep_chart(reductions, title="reduction over direct-mapped (%)", percent=False)
    return f"{rates}\n\n{table}\n\n{chart}"
