"""Declarative experiment specs: one pipeline from figure to results.

Every figure/table module used to hand-roll the same loop — build
traces, build models, simulate, average across benchmarks, memoise per
process — each with its own cache dict and its own (in)ability to use
the fast kernels, the worker pool, or the resume journal.  This module
replaces those loops with a single declarative layer:

* :class:`ExperimentSpec` describes an experiment — a *grid* (parameter
  axis x picklable model factories x trace recipes, with an optional
  custom per-cell metric evaluator and a ``collect`` post-processor), a
  *derived* transform over other specs' results (``base`` + ``derive``,
  e.g. Figure 5's percent-reduction over Figure 4), or an irregular
  *custom* computation (``compute``);
* :func:`run_spec` is the one executor: grid specs run through
  :func:`repro.perf.parallel.run_labeled_cells` (engine dispatch,
  process pool, per-cell envelopes, resume journal), derived specs
  recursively run their bases, and every result lands in a
  process-wide cache keyed by ``(spec fingerprint, trace budget)`` so
  derived figures share their base sweep and a ``REPRO_TRACE_SCALE``
  change can never serve stale results;
* :func:`register` / :func:`get_spec` maintain the central registry the
  CLI frontends and the differential tests iterate.

Grid cells journal under exactly the identity scheme the pre-spec sweep
runner used (the ``evaluator`` field joins the key payload only for
custom evaluators), so a journal written by the old runner resumes
under :func:`run_spec` unchanged.
"""

from __future__ import annotations

import hashlib
import json
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.sweep import SweepResult
from ..env import max_refs
from ..obs import tracing as obs_tracing
from ..perf import parallel
from ..perf.parallel import CellEvaluator, CellOutcome, SweepCellError, TraceLike


# -- trace axes ----------------------------------------------------------------


@dataclass(frozen=True)
class BenchmarkSuite:
    """The standard trace recipe: every SPEC benchmark, one kind.

    Resolved at run time so the recipes carry the *current*
    ``REPRO_TRACE_SCALE`` budget; the parameter is ignored (the same
    benchmarks back every point of a size or line-size sweep).
    """

    kind: str = "instruction"

    def for_parameter(self, parameter: object) -> Sequence[TraceLike]:
        from .common import all_trace_keys

        return all_trace_keys(self.kind)


# -- the spec ------------------------------------------------------------------

#: A labelled model factory: ``factory(parameter) -> simulator``.  Must
#: be picklable (module-level callable or frozen dataclass) with an
#: address-free repr so its cells fan out to workers and journal.
FactoryPair = Tuple[str, Callable[[object], object]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, declaratively.

    Exactly one of the three shapes must be populated:

    * **grid** — ``parameter_name``/``parameters``/``factories``/
      ``traces`` (+ optional ``evaluator`` and ``collect``);
    * **derived** — ``base`` spec ids + a ``derive`` transform over
      their results;
    * **custom** — a ``compute`` thunk for experiments with no grid
      structure (e.g. the Section 3 analytic patterns).

    ``engine`` is a hint (``"fast"``/``"batch"``/``"reference"``)
    applied when the caller passes none; ``render`` turns the result into the report
    text; ``hidden`` keeps auxiliary base specs (the b=16B size sweep,
    the two-level hierarchy grid) out of the CLI listing while still
    letting derived specs and ``--only`` reach them.
    """

    id: str
    title: str
    # grid shape
    parameter_name: str = ""
    parameters: Tuple[object, ...] = ()
    factories: Tuple[FactoryPair, ...] = ()
    traces: Optional[object] = None
    evaluator: Optional[CellEvaluator] = None
    collect: Optional[Callable[["GridResult"], object]] = None
    # derived shape
    base: Tuple[str, ...] = ()
    derive: Optional[Callable[..., object]] = None
    # custom shape
    compute: Optional[Callable[[], object]] = None
    # presentation / execution hints
    render: Optional[Callable[[object], str]] = None
    engine: Optional[str] = None
    hidden: bool = False

    def __post_init__(self) -> None:
        shapes = [bool(self.parameters), self.derive is not None, self.compute is not None]
        if sum(shapes) != 1:
            raise ValueError(
                f"spec {self.id!r} must be exactly one of grid (parameters), "
                f"derived (derive), or custom (compute)"
            )
        if self.parameters and (not self.factories or self.traces is None):
            raise ValueError(f"grid spec {self.id!r} needs factories and traces")
        if self.derive is not None and not self.base:
            raise ValueError(f"derived spec {self.id!r} needs base spec ids")

    @property
    def kind(self) -> str:
        if self.parameters:
            return "grid"
        if self.derive is not None:
            return "derived"
        return "custom"

    def fingerprint(self) -> str:
        """An address-free content identity for the result cache.

        Built from stable prints of every defining field — deliberately
        *not* the id or title, so two specs describing the same
        computation share cached results (``fig04.run(kind="data")``
        and the registered ``fig14`` spec are one cache entry) while
        any change in grid, factories, evaluator, or derivation chain
        is a different key.  Raises :class:`ValueError` for components
        whose repr embeds a memory address (lambdas, local closures) —
        those cannot be named stably across processes or sessions.
        """
        payload = {
            "kind": self.kind,
            "parameter_name": self.parameter_name,
            "parameters": [_stable_print(p, self.id) for p in self.parameters],
            "factories": [
                [label, _stable_print(factory, self.id)]
                for label, factory in self.factories
            ],
            "traces": _stable_print(self.traces, self.id),
            "evaluator": _stable_print(self.evaluator, self.id),
            "collect": _stable_print(self.collect, self.id),
            "base": list(self.base),
            "derive": _stable_print(self.derive, self.id),
            "compute": _stable_print(self.compute, self.id),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint_digest(spec: "ExperimentSpec") -> str:
    """Short stable sha256 digest of a spec's content fingerprint.

    The form recorded in run manifests and served by ``repro.serve`` —
    compact enough for logs, stable across processes and sessions.
    """
    return hashlib.sha256(spec.fingerprint().encode("utf-8")).hexdigest()[:16]


def _stable_print(obj: object, spec_id: str) -> str:
    """A repr stable across processes, or a ValueError naming the spec."""
    if obj is None:
        return "-"
    if isinstance(obj, (types.FunctionType, types.MethodType)):
        qualname = getattr(obj, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ValueError(
                f"spec {spec_id!r} uses a lambda/local function {qualname!r}; "
                f"use a module-level function or frozen dataclass so the "
                f"spec fingerprints (and pickles) stably"
            )
        return f"{obj.__module__}.{qualname}"
    text = repr(obj)
    if " at 0x" in text or "object at" in text:
        raise ValueError(
            f"spec {spec_id!r} component {type(obj).__name__} reprs a memory "
            f"address; give it a stable repr (frozen dataclass) so the spec "
            f"fingerprints stably"
        )
    return text


# -- grid results --------------------------------------------------------------


@dataclass
class GridResult:
    """All cell metrics from one grid run, shaped for ``collect``.

    Cells are ordered parameter-major, then factory label, then trace —
    the same order the pre-spec ``run_sweep`` used — and every accessor
    preserves it, so collectors that average across traces reproduce
    the old figures bit-for-bit.
    """

    parameter_name: str
    parameters: List[object]
    labels: List[str]
    outcomes: List[CellOutcome] = field(default_factory=list)
    _traces: Dict[object, List[str]] = field(default_factory=dict)
    _cells: Dict[Tuple[str, object], List[Dict[str, float]]] = field(default_factory=dict)

    def trace_names(self, parameter: Optional[object] = None) -> List[str]:
        parameter = self.parameters[0] if parameter is None else parameter
        return list(self._traces[parameter])

    def cell_metrics(self, label: str, parameter: object) -> List[Dict[str, float]]:
        """Per-trace metric dicts for one (curve, parameter) pair."""
        return [dict(m) for m in self._cells[(label, parameter)]]

    def values(
        self, label: str, parameter: object, metric: str = "miss_rate"
    ) -> List[float]:
        return [m[metric] for m in self._cells[(label, parameter)]]

    def mean(self, label: str, parameter: object, metric: str = "miss_rate") -> float:
        values = self.values(label, parameter, metric)
        return sum(values) / len(values)

    def sweep_result(self, metric: str = "miss_rate") -> SweepResult:
        """The default collection: mean metric across traces per curve."""
        result = SweepResult(
            parameter_name=self.parameter_name, parameters=list(self.parameters)
        )
        for parameter in self.parameters:
            for label in self.labels:
                result.add(label, parameter, self.mean(label, parameter, metric))
        return result


def collect_sweep(grid: GridResult) -> SweepResult:
    """The default ``collect``: a mean-miss-rate :class:`SweepResult`."""
    return grid.sweep_result()


# -- registry ------------------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the central registry (import-time, one per id)."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing is not spec:
        raise ValueError(f"experiment spec {spec.id!r} is already registered")
    spec.fingerprint()  # fail at registration, not first run
    _REGISTRY[spec.id] = spec
    return spec


def get_spec(spec_id: str) -> ExperimentSpec:
    try:
        return _REGISTRY[spec_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown experiment spec {spec_id!r}; known: {known}") from None


def all_specs(include_hidden: bool = False) -> List[ExperimentSpec]:
    """Registered specs in registration order."""
    return [s for s in _REGISTRY.values() if include_hidden or not s.hidden]


# -- the executor --------------------------------------------------------------

#: (fingerprint, trace budget) -> collected result.  One entry per spec
#: per scale; derived figures therefore compute their base sweep once
#: per process, and a REPRO_TRACE_SCALE flip evicts everything computed
#: under the old budget (stale results can never be served, and dead
#: scales do not accumulate).
_RESULT_CACHE: Dict[Tuple[str, int], object] = {}


def clear_result_cache() -> None:
    """Drop every cached spec result (tests; scale changes do it lazily)."""
    _RESULT_CACHE.clear()


def _evict_other_budgets(budget: int) -> None:
    stale = [key for key in _RESULT_CACHE if key[1] != budget]
    for key in stale:
        del _RESULT_CACHE[key]


def run_spec(
    spec: "ExperimentSpec | str",
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    journal: "parallel.SweepJournal | str | None" = None,
    progress: Optional[bool] = None,
    timeout: Optional[float] = None,
    backend: Optional[str] = None,
) -> object:
    """Execute a spec (or registered spec id) and return its result.

    Results are memoised by ``(fingerprint, trace budget)``; execution
    options (engine, workers, journal, backend) are deliberately *not*
    part of the key because they cannot change the result, only how
    fast and how durably it is computed.  Grid cells run through the resilient
    sweep runner, so ``--workers``/``--resume-dir``/``--progress`` and
    worker-crash retry all apply; any cell failure raises
    :class:`~repro.perf.parallel.SweepCellError` naming the cells.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    budget = max_refs()
    key = (spec.fingerprint(), budget)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        # A zero-length synthetic span keeps cache hits visible in the
        # trace without pretending any work happened.
        obs_tracing.record("run_spec", 0.0, spec=spec.id, cached=True)
        return cached
    _evict_other_budgets(budget)

    with obs_tracing.span("run_spec", spec=spec.id, kind=spec.kind):
        if spec.compute is not None:
            result = spec.compute()
        elif spec.derive is not None:
            bases = [
                run_spec(base, engine=engine, workers=workers, journal=journal,
                         progress=progress, timeout=timeout, backend=backend)
                for base in spec.base
            ]
            result = spec.derive(*bases)
        else:
            grid = _run_grid(spec, engine, workers, journal, progress, timeout, backend)
            result = collect_result(spec, grid)

    _RESULT_CACHE[key] = result
    return result


def grid_cells(
    spec: ExperimentSpec,
) -> "Tuple[List[parallel.LabeledCell], Dict[object, Sequence[TraceLike]]]":
    """Enumerate a grid spec's labelled cells (and traces per parameter).

    The cell order is the executor's contract — parameter-major, then
    factory label, then trace — and the trace recipes carry the current
    ``REPRO_TRACE_SCALE`` budget.  ``repro.serve`` uses this to compute
    every cell's content key *without* running anything, so a fully
    cached spec is answered straight from the result store.
    """
    if spec.kind != "grid":
        raise ValueError(f"spec {spec.id!r} is {spec.kind}, not a grid spec")
    traces_by_parameter: Dict[object, Sequence[TraceLike]] = {}
    cells: List[parallel.LabeledCell] = []
    for parameter in spec.parameters:
        traces = list(spec.traces.for_parameter(parameter))  # type: ignore[union-attr]
        if not traces:
            raise ValueError(
                f"spec {spec.id!r} produced no traces for parameter "
                f"{parameter!r}; refusing to average an empty cell set"
            )
        traces_by_parameter[parameter] = traces
        for label, factory in spec.factories:
            for trace in traces:
                cells.append((label, factory, parameter, trace))
    return cells, traces_by_parameter


def grid_from_outcomes(
    spec: ExperimentSpec,
    outcomes: "List[CellOutcome]",
    traces_by_parameter: "Dict[object, Sequence[TraceLike]]",
) -> GridResult:
    """Shape executed cell envelopes (in :func:`grid_cells` order) into a
    :class:`GridResult`; any failed envelope raises
    :class:`~repro.perf.parallel.SweepCellError` naming its cells."""
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise SweepCellError(failures, len(outcomes))
    labels = [label for label, _ in spec.factories]
    grid = GridResult(
        parameter_name=spec.parameter_name,
        parameters=list(spec.parameters),
        labels=labels,
        outcomes=outcomes,
    )
    position = 0
    for parameter in spec.parameters:
        traces = traces_by_parameter[parameter]
        grid._traces[parameter] = [
            str(getattr(trace, "name", "") or "<anonymous>") for trace in traces
        ]
        for label in labels:
            per_trace = outcomes[position : position + len(traces)]
            position += len(traces)
            grid._cells[(label, parameter)] = [o.metrics or {} for o in per_trace]
    return grid


def collect_result(spec: ExperimentSpec, grid: GridResult) -> object:
    """Apply the spec's ``collect`` (default: mean-miss-rate sweep)."""
    collect = spec.collect if spec.collect is not None else collect_sweep
    return collect(grid)


def _run_grid(
    spec: ExperimentSpec,
    engine: Optional[str],
    workers: Optional[int],
    journal: "parallel.SweepJournal | str | None",
    progress: Optional[bool],
    timeout: Optional[float],
    backend: Optional[str] = None,
) -> GridResult:
    cells, traces_by_parameter = grid_cells(spec)
    outcomes = parallel.run_labeled_cells(
        cells,
        engine=engine if engine is not None else spec.engine,
        workers=workers,
        timeout=timeout,
        journal=journal,
        progress=progress,
        evaluator=spec.evaluator,
        backend=backend,
    )
    return grid_from_outcomes(spec, outcomes, traces_by_parameter)


def render_spec(spec: "ExperimentSpec | str", result: Optional[object] = None) -> str:
    """The report text for a spec (running it first if needed)."""
    if isinstance(spec, str):
        spec = get_spec(spec)
    if result is None:
        result = run_spec(spec)
    if spec.render is None:
        return f"{spec.title}\n\n{result!r}"
    return spec.render(result)
