"""Figure 8: L2 miss rate for the hit-last storage options vs L2 size.

The miss rate plotted is *global* (L2 misses per CPU reference), since
the options change how many references even reach the L2.  Paper
expectations: *assume-miss* and *hashed* let the L2 skip storing
L1-resident lines (exclusive content) and so miss less; *assume-hit*
tracks the conventional hierarchy exactly.
"""

from __future__ import annotations

from typing import List

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..hierarchy.two_level import Strategy
from . import hierarchy_sweep
from .hierarchy_sweep import HierarchySweep
from .spec import ExperimentSpec, register, run_spec

TITLE = "Figure 8: dynamic exclusion L2 performance vs L2 size (L1=32KB, b=4B)"

#: assume-hit and the conventional baseline share an L2 curve (paper:
#: "direct-mapped or dynamic exclusion (assume-hit)").
CURVES = [
    Strategy.DIRECT_MAPPED,
    Strategy.ASSUME_HIT,
    Strategy.ASSUME_MISS,
    Strategy.HASHED,
]


def _render(sweep: HierarchySweep) -> str:
    headers = ["L2 size"] + [s.value for s in CURVES]
    rows: List[List[object]] = []
    for ratio in sweep.ratios:
        size_kb = sweep.l1_size * ratio // 1024
        row: List[object] = [f"{size_kb}KB"]
        for strategy in CURVES:
            row.append(f"{100 * sweep.points[(strategy, ratio)].l2_global_miss_rate:.3f}%")
        rows.append(row)
    table = format_table(headers, rows, title=TITLE)
    chart = ascii_chart(
        {s.value: [100 * v for v in sweep.l2_curve(s)] for s in CURVES},
        x_labels=[f"{sweep.l1_size * r // 1024}K" for r in sweep.ratios],
        title="global L2 miss rate (%)",
    )
    return f"{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="fig08",
        title=TITLE,
        base=("hierarchy",),
        derive=hierarchy_sweep.same_sweep,
        render=_render,
    )
)


def run() -> HierarchySweep:
    return run_spec(SPEC)


def report() -> str:
    return _render(run())


def exclusive_strategies_win() -> bool:
    """True if assume-miss and hashed beat assume-hit's L2 at small L2."""
    sweep = run()
    small = sweep.ratios[0]
    inclusive = sweep.points[(Strategy.ASSUME_HIT, small)].l2_global_miss_rate
    return (
        sweep.points[(Strategy.ASSUME_MISS, small)].l2_global_miss_rate < inclusive
        and sweep.points[(Strategy.HASHED, small)].l2_global_miss_rate < inclusive
    )
