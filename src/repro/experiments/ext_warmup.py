"""Extension: warm-up behaviour and the trace-length effect.

Two cold-start questions from the reproduction:

* the paper notes nasa7/tomcatv see a *slight* miss increase while the
  exclusion state initialises, negligible on full streams — how big is
  the training cost really, and where does it go as the trace grows?
* EXPERIMENTS.md D2 attributes our Figure 5 peak shift to short traces
  (cold misses weigh more).  Splitting each run into cold and warm
  halves shows the steady-state improvement directly.

For every benchmark this experiment reports the miss-rate reduction of
dynamic exclusion separately over the first and second halves of the
trace; the warm-half column is the better estimate of the paper's
10M-reference numbers.

Spec-wise each cell yields two metrics ("cold" and "warm" percent
reductions) and the factory returns a plain geometry — the evaluator
builds the baseline/improved pair itself, twice, for the half-trace
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.report import format_table
from ..analysis.warmup import steady_state_reduction
from ..caches.geometry import CacheGeometry
from ..trace.trace import Trace
from .common import (
    REFERENCE_LINE,
    REFERENCE_SIZE,
    direct_mapped,
    dynamic_exclusion,
)
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Extension: cold vs warm dynamic-exclusion improvement (S=32KB, b=4B)"


@dataclass(frozen=True)
class WarmupProbe:
    """The "model" is just the geometry; the evaluator does the rest."""

    line_size: int = REFERENCE_LINE

    def __call__(self, size: object) -> CacheGeometry:
        return CacheGeometry(int(size), self.line_size)  # type: ignore[call-overload]


@dataclass(frozen=True)
class WarmupEvaluator:
    """Cold- and warm-half DE reductions for one benchmark."""

    def __call__(
        self, geometry: CacheGeometry, trace: Trace, engine: Optional[str]
    ) -> Dict[str, float]:
        cold, warm = steady_state_reduction(
            lambda: direct_mapped(geometry),
            lambda: dynamic_exclusion(geometry),
            trace,
        )
        return {"cold": float(cold), "warm": float(warm)}


def _collect(grid: GridResult) -> "Dict[str, Tuple[float, float]]":
    size = grid.parameters[0]
    names = grid.trace_names(size)
    metrics = grid.cell_metrics("warmup", size)
    return {
        name: (cell["cold"], cell["warm"]) for name, cell in zip(names, metrics)
    }


def _render(results: "Dict[str, Tuple[float, float]]") -> str:
    rows = []
    for name, (cold, warm) in results.items():
        rows.append([name, f"{cold:.1f}%", f"{warm:.1f}%"])
    cold_mean, warm_mean = mean_reductions()
    rows.append(["MEAN", f"{cold_mean:.1f}%", f"{warm_mean:.1f}%"])
    table = format_table(
        ["benchmark", "cold-half reduction", "warm-half reduction"],
        rows,
        title=TITLE,
    )
    note = (
        "\nThe warm column approximates long-trace behaviour: training"
        "\ncosts are paid in the cold half, so warm >= cold on the"
        "\nconflict-heavy benchmarks (EXPERIMENTS.md, deviation D2)."
    )
    return table + note


SPEC = register(
    ExperimentSpec(
        id="ext-warmup",
        title=TITLE,
        parameter_name="cache size",
        parameters=(REFERENCE_SIZE,),
        factories=(("warmup", WarmupProbe()),),
        traces=BenchmarkSuite("instruction"),
        evaluator=WarmupEvaluator(),
        collect=_collect,
        render=_render,
    )
)


def run() -> "Dict[str, Tuple[float, float]]":
    """Benchmark -> (cold-half %, warm-half %) DE reduction."""
    return run_spec(SPEC)


def mean_reductions() -> Tuple[float, float]:
    results = run()
    cold = sum(v[0] for v in results.values()) / len(results)
    warm = sum(v[1] for v in results.values()) / len(results)
    return cold, warm


def report() -> str:
    return _render(run())
