"""Extension: warm-up behaviour and the trace-length effect.

Two cold-start questions from the reproduction:

* the paper notes nasa7/tomcatv see a *slight* miss increase while the
  exclusion state initialises, negligible on full streams — how big is
  the training cost really, and where does it go as the trace grows?
* EXPERIMENTS.md D2 attributes our Figure 5 peak shift to short traces
  (cold misses weigh more).  Splitting each run into cold and warm
  halves shows the steady-state improvement directly.

For every benchmark this experiment reports the miss-rate reduction of
dynamic exclusion separately over the first and second halves of the
trace; the warm-half column is the better estimate of the paper's
10M-reference numbers.
"""

from __future__ import annotations

import statistics
from typing import Dict, Tuple

from ..analysis.report import format_table
from ..analysis.warmup import steady_state_reduction
from ..caches.geometry import CacheGeometry
from ..workloads.registry import benchmark_names
from .common import (
    REFERENCE_LINE,
    REFERENCE_SIZE,
    cached_trace,
    direct_mapped,
    dynamic_exclusion,
    max_refs,
)

TITLE = "Extension: cold vs warm dynamic-exclusion improvement (S=32KB, b=4B)"

_CACHE: "dict[int, Dict[str, Tuple[float, float]]]" = {}


def run() -> "Dict[str, Tuple[float, float]]":
    """Benchmark -> (cold-half %, warm-half %) DE reduction."""
    key = max_refs()
    if key not in _CACHE:
        geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
        results: "Dict[str, Tuple[float, float]]" = {}
        for name in benchmark_names():
            trace = cached_trace(name, "instruction")
            results[name] = steady_state_reduction(
                lambda: direct_mapped(geometry),
                lambda: dynamic_exclusion(geometry),
                trace,
            )
        _CACHE[key] = results
    return _CACHE[key]


def mean_reductions() -> Tuple[float, float]:
    results = run()
    cold = statistics.mean(v[0] for v in results.values())
    warm = statistics.mean(v[1] for v in results.values())
    return cold, warm


def report() -> str:
    results = run()
    rows = []
    for name, (cold, warm) in results.items():
        rows.append([name, f"{cold:.1f}%", f"{warm:.1f}%"])
    cold_mean, warm_mean = mean_reductions()
    rows.append(["MEAN", f"{cold_mean:.1f}%", f"{warm_mean:.1f}%"])
    table = format_table(
        ["benchmark", "cold-half reduction", "warm-half reduction"],
        rows,
        title=TITLE,
    )
    note = (
        "\nThe warm column approximates long-trace behaviour: training"
        "\ncosts are paid in the cold half, so warm >= cold on the"
        "\nconflict-heavy benchmarks (EXPERIMENTS.md, deviation D2)."
    )
    return table + note
