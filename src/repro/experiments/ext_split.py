"""Extension: split instruction/data caches vs a unified cache.

Section 7 of the paper evaluates dynamic exclusion on combined
(unified) caches and observes that its benefit tracks the instruction
share of the misses.  The natural follow-up — which the paper leaves
implicit — is the split-vs-unified design question: with a fixed
transistor budget, is it better to run a unified cache with exclusion
or split it into I and D halves?  This experiment compares, per total
capacity:

* unified direct-mapped;
* unified + dynamic exclusion;
* split (half I / half D) direct-mapped;
* split with exclusion on the instruction half only (where Section 7
  says it pays).
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.base import Cache
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..trace.reference import RefKind
from ..trace.trace import Trace
from .common import all_traces, max_refs

TITLE = "Extension: split I/D caches vs unified (b=4B)"

SIZES_KB = [2, 4, 8, 16, 32, 64, 128]


def _split_miss_rate(icache: Cache, dcache: Cache, trace: Trace) -> float:
    """Route references by kind and pool the misses."""
    ifetch = int(RefKind.IFETCH)
    for addr, kind in trace.pairs():
        if kind == ifetch:
            icache.access(addr, kind)  # type: ignore[arg-type]
        else:
            dcache.access(addr, kind)  # type: ignore[arg-type]
    total_misses = icache.stats.misses + dcache.stats.misses
    total_accesses = icache.stats.accesses + dcache.stats.accesses
    return total_misses / total_accesses if total_accesses else 0.0


def _unified(size: int, exclusion: bool) -> Cache:
    geometry = CacheGeometry(size, 4)
    if exclusion:
        return DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True))
    return DirectMappedCache(geometry)


def _configs() -> "Dict[str, Callable[[int, Trace], float]]":
    def unified_dm(size: int, trace: Trace) -> float:
        return _unified(size, exclusion=False).simulate(trace).miss_rate

    def unified_de(size: int, trace: Trace) -> float:
        return _unified(size, exclusion=True).simulate(trace).miss_rate

    def split_dm(size: int, trace: Trace) -> float:
        half = CacheGeometry(size // 2, 4)
        return _split_miss_rate(
            DirectMappedCache(half), DirectMappedCache(half), trace
        )

    def split_de_icache(size: int, trace: Trace) -> float:
        half = CacheGeometry(size // 2, 4)
        icache = DynamicExclusionCache(half, store=IdealHitLastStore(default=True))
        return _split_miss_rate(icache, DirectMappedCache(half), trace)

    return {
        "unified DM": unified_dm,
        "unified DE": unified_de,
        "split DM": split_dm,
        "split DM+DE(I)": split_de_icache,
    }


_CACHE: "dict[int, SweepResult]" = {}


def run() -> SweepResult:
    key = max_refs()
    if key not in _CACHE:
        traces = all_traces("mixed")
        result = SweepResult(
            parameter_name="total size",
            parameters=[kb * 1024 for kb in SIZES_KB],
        )
        for size in result.parameters:
            for label, runner in _configs().items():
                rates = [runner(int(size), trace) for trace in traces]
                result.add(label, size, statistics.mean(rates))
        _CACHE[key] = result
    return _CACHE[key]


def report() -> str:
    result = run()
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="miss rate (%)")
    return f"{table}\n\n{chart}"
