"""Extension: split instruction/data caches vs a unified cache.

Section 7 of the paper evaluates dynamic exclusion on combined
(unified) caches and observes that its benefit tracks the instruction
share of the misses.  The natural follow-up — which the paper leaves
implicit — is the split-vs-unified design question: with a fixed
transistor budget, is it better to run a unified cache with exclusion
or split it into I and D halves?  This experiment compares, per total
capacity:

* unified direct-mapped;
* unified + dynamic exclusion;
* split (half I / half D) direct-mapped;
* split with exclusion on the instruction half only (where Section 7
  says it pays).

The split configurations need a custom cell evaluator — the "model" is
a *pair* of caches and the references are routed by kind — which is
exactly what the spec layer's ``evaluator`` hook exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.base import Cache
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..trace.reference import RefKind
from ..trace.trace import Trace
from .spec import BenchmarkSuite, ExperimentSpec, register, run_spec

TITLE = "Extension: split I/D caches vs unified (b=4B)"

SIZES_KB = [2, 4, 8, 16, 32, 64, 128]

_LABELS = ["unified DM", "unified DE", "split DM", "split DM+DE(I)"]


class SplitPair:
    """An I-cache and a D-cache posing as one model."""

    def __init__(self, icache: Cache, dcache: Cache) -> None:
        self.icache = icache
        self.dcache = dcache

    def miss_rate(self, trace: Trace) -> float:
        """Route references by kind and pool the misses."""
        ifetch = int(RefKind.IFETCH)
        icache, dcache = self.icache, self.dcache
        for addr, kind in trace.pairs():
            if kind == ifetch:
                icache.access(addr, kind)  # type: ignore[arg-type]
            else:
                dcache.access(addr, kind)  # type: ignore[arg-type]
        total_misses = icache.stats.misses + dcache.stats.misses
        total_accesses = icache.stats.accesses + dcache.stats.accesses
        return total_misses / total_accesses if total_accesses else 0.0


def _unified(size: int, exclusion: bool) -> Cache:
    geometry = CacheGeometry(size, 4)
    if exclusion:
        return DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True))
    return DirectMappedCache(geometry)


@dataclass(frozen=True)
class SplitFactory:
    """Build one of the four budget-matched configurations."""

    label: str

    def __call__(self, size: object):
        total = int(size)  # type: ignore[call-overload]
        if self.label == "unified DM":
            return _unified(total, exclusion=False)
        if self.label == "unified DE":
            return _unified(total, exclusion=True)
        half = CacheGeometry(total // 2, 4)
        if self.label == "split DM":
            return SplitPair(DirectMappedCache(half), DirectMappedCache(half))
        if self.label == "split DM+DE(I)":
            icache = DynamicExclusionCache(half, store=IdealHitLastStore(default=True))
            return SplitPair(icache, DirectMappedCache(half))
        raise ValueError(f"unknown configuration {self.label!r}")


@dataclass(frozen=True)
class SplitEvaluator:
    """Simulate either a plain cache or a routed I/D pair."""

    def __call__(self, model: object, trace: Trace, engine: Optional[str]) -> dict:
        if isinstance(model, SplitPair):
            return {"miss_rate": model.miss_rate(trace)}
        return {"miss_rate": model.simulate(trace).miss_rate}  # type: ignore[attr-defined]


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="miss rate (%)")
    return f"{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="ext-split",
        title=TITLE,
        parameter_name="total size",
        parameters=tuple(kb * 1024 for kb in SIZES_KB),
        factories=tuple((label, SplitFactory(label)) for label in _LABELS),
        traces=BenchmarkSuite("mixed"),
        evaluator=SplitEvaluator(),
        render=_render,
    )
)


def run() -> SweepResult:
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
