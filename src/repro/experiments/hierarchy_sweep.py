"""Shared two-level sweep behind Figures 7, 8, and 9.

One grid spec produces both the L1 and the L2 curves for every hit-last
storage strategy and every L2/L1 size ratio; the three figure modules
derive from this hidden ``hierarchy`` base spec, so the grid is
simulated once per process (and, unlike the pre-spec version, fans out
to workers and journals under ``--resume-dir``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..caches.geometry import CacheGeometry
from ..hierarchy.two_level import Strategy, TwoLevelCache
from ..trace.trace import Trace
from .common import L2_RATIO_SWEEP, REFERENCE_LINE, REFERENCE_SIZE
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

#: The strategies compared by the Section 5 figures.
STRATEGIES: List[Strategy] = [
    Strategy.DIRECT_MAPPED,
    Strategy.ASSUME_HIT,
    Strategy.ASSUME_MISS,
    Strategy.HASHED,
    Strategy.IDEAL,
]


@dataclass
class HierarchyPoint:
    """Mean rates for one (strategy, ratio) grid cell."""

    l1_miss_rate: float
    l2_global_miss_rate: float
    l2_local_miss_rate: float


@dataclass
class HierarchySweep:
    """The whole Figures 7-9 grid."""

    l1_size: int
    line_size: int
    ratios: List[int]
    points: "Dict[Tuple[Strategy, int], HierarchyPoint]" = field(default_factory=dict)

    def l1_curve(self, strategy: Strategy) -> List[float]:
        return [self.points[(strategy, r)].l1_miss_rate for r in self.ratios]

    def l2_curve(self, strategy: Strategy) -> List[float]:
        return [self.points[(strategy, r)].l2_global_miss_rate for r in self.ratios]


@dataclass(frozen=True)
class HierarchyFactory:
    """Picklable (strategy, L1 geometry) factory over the ratio axis."""

    strategy: str
    l1_size: int
    line_size: int

    def __call__(self, ratio: object) -> TwoLevelCache:
        l1 = CacheGeometry(self.l1_size, self.line_size)
        l2 = CacheGeometry(self.l1_size * int(ratio), self.line_size)  # type: ignore[call-overload]
        return TwoLevelCache(l1, l2, strategy=Strategy(self.strategy))


@dataclass(frozen=True)
class HierarchyEvaluator:
    """Per-cell metrics: all three rates from one hierarchy pass."""

    def __call__(self, model: TwoLevelCache, trace: Trace, engine: str) -> Dict[str, float]:
        result = model.simulate(trace)
        return {
            "l1_miss_rate": result.l1_miss_rate,
            "l2_global_miss_rate": result.l2_global_miss_rate,
            "l2_local_miss_rate": result.l2_local_miss_rate,
        }


@dataclass(frozen=True)
class CollectHierarchy:
    """Fold the grid back into the :class:`HierarchySweep` the figures slice."""

    l1_size: int
    line_size: int

    def __call__(self, grid: GridResult) -> HierarchySweep:
        sweep = HierarchySweep(
            l1_size=self.l1_size,
            line_size=self.line_size,
            ratios=[int(r) for r in grid.parameters],
        )
        for ratio in grid.parameters:
            for label in grid.labels:
                sweep.points[(Strategy(label), int(ratio))] = HierarchyPoint(
                    l1_miss_rate=grid.mean(label, ratio, "l1_miss_rate"),
                    l2_global_miss_rate=grid.mean(label, ratio, "l2_global_miss_rate"),
                    l2_local_miss_rate=grid.mean(label, ratio, "l2_local_miss_rate"),
                )
        return sweep


def hierarchy_spec(
    spec_id: str,
    l1_size: int = REFERENCE_SIZE,
    line_size: int = REFERENCE_LINE,
    ratios: "Tuple[int, ...] | None" = None,
    hidden: bool = True,
) -> ExperimentSpec:
    ratios = tuple(ratios) if ratios is not None else tuple(L2_RATIO_SWEEP)
    return ExperimentSpec(
        id=spec_id,
        title="Two-level hierarchy grid (base for Figures 7-9)",
        parameter_name="L2/L1 ratio",
        parameters=ratios,
        factories=tuple(
            (strategy.value, HierarchyFactory(strategy.value, l1_size, line_size))
            for strategy in STRATEGIES
        ),
        traces=BenchmarkSuite("instruction"),
        evaluator=HierarchyEvaluator(),
        collect=CollectHierarchy(l1_size, line_size),
        hidden=hidden,
    )


SPEC = register(hierarchy_spec("hierarchy"))


def same_sweep(sweep: HierarchySweep) -> HierarchySweep:
    """Identity derive: Figures 7 and 8 present the base sweep directly
    (and share the exact cached object — tests rely on ``is``)."""
    return sweep


def run(
    l1_size: int = REFERENCE_SIZE,
    line_size: int = REFERENCE_LINE,
    ratios: "List[int] | None" = None,
) -> HierarchySweep:
    """The full strategy x ratio grid (memoised by the spec cache)."""
    if l1_size == REFERENCE_SIZE and line_size == REFERENCE_LINE and (
        ratios is None or list(ratios) == list(L2_RATIO_SWEEP)
    ):
        return run_spec(SPEC)
    return run_spec(
        hierarchy_spec(
            f"hierarchy[{l1_size},{line_size},{ratios}]",
            l1_size=l1_size,
            line_size=line_size,
            ratios=tuple(ratios) if ratios is not None else None,
        )
    )
