"""Shared two-level sweep behind Figures 7, 8, and 9.

One simulation pass produces both the L1 and the L2 curves for every
hit-last storage strategy and every L2/L1 size ratio; the three figure
modules slice this result.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..caches.geometry import CacheGeometry
from ..hierarchy.two_level import Strategy, TwoLevelCache
from .common import L2_RATIO_SWEEP, REFERENCE_LINE, REFERENCE_SIZE, all_traces, max_refs

#: The strategies compared by the Section 5 figures.
STRATEGIES: List[Strategy] = [
    Strategy.DIRECT_MAPPED,
    Strategy.ASSUME_HIT,
    Strategy.ASSUME_MISS,
    Strategy.HASHED,
    Strategy.IDEAL,
]


@dataclass
class HierarchyPoint:
    """Mean rates for one (strategy, ratio) grid cell."""

    l1_miss_rate: float
    l2_global_miss_rate: float
    l2_local_miss_rate: float


@dataclass
class HierarchySweep:
    """The whole Figures 7-9 grid."""

    l1_size: int
    line_size: int
    ratios: List[int]
    points: "Dict[Tuple[Strategy, int], HierarchyPoint]" = field(default_factory=dict)

    def l1_curve(self, strategy: Strategy) -> List[float]:
        return [self.points[(strategy, r)].l1_miss_rate for r in self.ratios]

    def l2_curve(self, strategy: Strategy) -> List[float]:
        return [self.points[(strategy, r)].l2_global_miss_rate for r in self.ratios]


_CACHE: "Dict[Tuple[int, int, Tuple[int, ...], int], HierarchySweep]" = {}


def run(
    l1_size: int = REFERENCE_SIZE,
    line_size: int = REFERENCE_LINE,
    ratios: "List[int] | None" = None,
) -> HierarchySweep:
    """Simulate the full strategy x ratio grid (memoised per process)."""
    ratios = list(ratios) if ratios is not None else list(L2_RATIO_SWEEP)
    key = (l1_size, line_size, tuple(ratios), max_refs())
    if key in _CACHE:
        return _CACHE[key]

    l1_geometry = CacheGeometry(l1_size, line_size)
    traces = all_traces("instruction")
    sweep = HierarchySweep(l1_size=l1_size, line_size=line_size, ratios=ratios)
    for ratio in ratios:
        l2_geometry = CacheGeometry(l1_size * ratio, line_size)
        for strategy in STRATEGIES:
            l1_rates: List[float] = []
            l2_global: List[float] = []
            l2_local: List[float] = []
            for trace in traces:
                hierarchy = TwoLevelCache(l1_geometry, l2_geometry, strategy=strategy)
                result = hierarchy.simulate(trace)
                l1_rates.append(result.l1_miss_rate)
                l2_global.append(result.l2_global_miss_rate)
                l2_local.append(result.l2_local_miss_rate)
            sweep.points[(strategy, ratio)] = HierarchyPoint(
                l1_miss_rate=statistics.mean(l1_rates),
                l2_global_miss_rate=statistics.mean(l2_global),
                l2_local_miss_rate=statistics.mean(l2_local),
            )
    _CACHE[key] = sweep
    return sweep
