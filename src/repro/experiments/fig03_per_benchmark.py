"""Figure 3: per-benchmark instruction-cache miss rates at 32 KB / 4 B.

Three bars per benchmark: conventional direct-mapped, direct-mapped
with dynamic exclusion, and optimal direct-mapped.  The grid runs the
same :class:`~repro.experiments.common.StandardFactory` curves as the
size sweeps, at the single reference size, and collects per-trace
rates instead of the mean.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import format_table
from ..caches.stats import percent_reduction
from .common import REFERENCE_LINE, REFERENCE_SIZE, standard_factories
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Figure 3: instruction cache performance per benchmark (S=32KB, b=4B)"

_POLICIES = ["direct-mapped", "dynamic-exclusion", "optimal"]


def _collect(grid: GridResult) -> "Dict[str, Dict[str, float]]":
    size = grid.parameters[0]
    names = grid.trace_names(size)
    results: "Dict[str, Dict[str, float]]" = {name: {} for name in names}
    for label in grid.labels:
        for name, rate in zip(names, grid.values(label, size)):
            results[name][label] = rate
    return results


def _render(results: "Dict[str, Dict[str, float]]") -> str:
    rows: List[List[object]] = []
    for name, rates in results.items():
        rows.append(
            [
                name,
                f"{100 * rates['direct-mapped']:.2f}%",
                f"{100 * rates['dynamic-exclusion']:.2f}%",
                f"{100 * rates['optimal']:.2f}%",
                f"{percent_reduction(rates['direct-mapped'], rates['dynamic-exclusion']):.1f}%",
            ]
        )
    mean = {
        policy: sum(r[policy] for r in results.values()) / len(results)
        for policy in _POLICIES
    }
    rows.append(
        [
            "MEAN",
            f"{100 * mean['direct-mapped']:.2f}%",
            f"{100 * mean['dynamic-exclusion']:.2f}%",
            f"{100 * mean['optimal']:.2f}%",
            f"{percent_reduction(mean['direct-mapped'], mean['dynamic-exclusion']):.1f}%",
        ]
    )
    return format_table(
        ["benchmark", "direct-mapped", "dynamic-exclusion", "optimal", "DE reduction"],
        rows,
        title=TITLE,
    )


def _spec(spec_id: str, size: int, line_size: int, render=None, hidden: bool = False):
    return ExperimentSpec(
        id=spec_id,
        title=TITLE,
        parameter_name="cache size",
        parameters=(size,),
        factories=tuple(standard_factories(line_size).items()),
        traces=BenchmarkSuite("instruction"),
        collect=_collect,
        render=render,
        hidden=hidden,
    )


SPEC = register(_spec("fig03", REFERENCE_SIZE, REFERENCE_LINE, render=_render))


def run(
    size: int = REFERENCE_SIZE, line_size: int = REFERENCE_LINE
) -> "Dict[str, Dict[str, float]]":
    """Miss rate per benchmark per policy."""
    if size == REFERENCE_SIZE and line_size == REFERENCE_LINE:
        return run_spec(SPEC)
    return run_spec(_spec(f"fig03[{size},{line_size}]", size, line_size, hidden=True))


def report() -> str:
    return _render(run())
