"""Figure 3: per-benchmark instruction-cache miss rates at 32 KB / 4 B.

Three bars per benchmark: conventional direct-mapped, direct-mapped
with dynamic exclusion, and optimal direct-mapped.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import format_table
from ..caches.geometry import CacheGeometry
from ..caches.stats import percent_reduction
from ..perf.engine import simulate as engine_simulate
from ..workloads.registry import benchmark_names
from .common import (
    REFERENCE_LINE,
    REFERENCE_SIZE,
    cached_trace,
    direct_mapped,
    dynamic_exclusion,
    optimal,
)

TITLE = "Figure 3: instruction cache performance per benchmark (S=32KB, b=4B)"


def run(
    size: int = REFERENCE_SIZE, line_size: int = REFERENCE_LINE
) -> "Dict[str, Dict[str, float]]":
    """Miss rate per benchmark per policy."""
    geometry = CacheGeometry(size, line_size)
    results: "Dict[str, Dict[str, float]]" = {}
    for name in benchmark_names():
        trace = cached_trace(name, "instruction")
        # Through the engine dispatch: all three policies have fast
        # kernels, so --engine fast accelerates the whole figure.
        results[name] = {
            "direct-mapped": engine_simulate(direct_mapped(geometry), trace).miss_rate,
            "dynamic-exclusion": engine_simulate(
                dynamic_exclusion(geometry), trace
            ).miss_rate,
            "optimal": engine_simulate(optimal(geometry), trace).miss_rate,
        }
    return results


def report() -> str:
    results = run()
    rows: List[List[object]] = []
    for name, rates in results.items():
        rows.append(
            [
                name,
                f"{100 * rates['direct-mapped']:.2f}%",
                f"{100 * rates['dynamic-exclusion']:.2f}%",
                f"{100 * rates['optimal']:.2f}%",
                f"{percent_reduction(rates['direct-mapped'], rates['dynamic-exclusion']):.1f}%",
            ]
        )
    mean = {
        policy: sum(r[policy] for r in results.values()) / len(results)
        for policy in ["direct-mapped", "dynamic-exclusion", "optimal"]
    }
    rows.append(
        [
            "MEAN",
            f"{100 * mean['direct-mapped']:.2f}%",
            f"{100 * mean['dynamic-exclusion']:.2f}%",
            f"{100 * mean['optimal']:.2f}%",
            f"{percent_reduction(mean['direct-mapped'], mean['dynamic-exclusion']):.1f}%",
        ]
    )
    return format_table(
        ["benchmark", "direct-mapped", "dynamic-exclusion", "optimal", "DE reduction"],
        rows,
        title=TITLE,
    )
