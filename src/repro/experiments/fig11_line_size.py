"""Figure 11: instruction cache performance vs line size (S=32KB).

Dynamic exclusion uses the Section 6 last-line buffer; the optimal
comparison point is computed over collapsed line-reference events (see
:class:`repro.caches.optimal.OptimalLastLineCache`).  Paper expectation:
the percentage improvement declines as lines grow (37% at 4B down to
25% at 64B) because longer lines create additional conflicts.
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult, run_sweep
from ..caches.stats import percent_reduction
from .common import (
    LINE_SIZE_SWEEP,
    REFERENCE_SIZE,
    all_trace_keys,
    line_size_factories,
    max_refs,
)

TITLE = "Figure 11: instruction cache miss rate vs line size (S=32KB)"

_CACHE: "dict[tuple, SweepResult]" = {}


def run(size: int = REFERENCE_SIZE) -> SweepResult:
    key = (size, max_refs())
    if key not in _CACHE:
        _CACHE[key] = run_sweep(
            parameter_name="line size",
            parameters=list(LINE_SIZE_SWEEP),
            factories=line_size_factories(size),
            traces=all_trace_keys("instruction"),
        )
    return _CACHE[key]


def improvements() -> "dict[int, float]":
    """Line size -> percent miss-rate reduction from dynamic exclusion."""
    result = run()
    out = {}
    for b in result.parameters:
        dm = result.series["direct-mapped"].points[b]
        de = result.series["dynamic-exclusion"].points[b]
        out[int(b)] = percent_reduction(dm, de)
    return out


def report() -> str:
    result = run()
    table = format_sweep(
        result, title=TITLE, value_format="{:.3%}", param_format="{}B"
    )
    chart = sweep_chart(result, title="miss rate (%)")
    reductions = improvements()
    trail = ", ".join(f"{b}B: {r:.1f}%" for b, r in reductions.items())
    return f"{table}\n\n{chart}\n\nDE reduction by line size: {trail}"
