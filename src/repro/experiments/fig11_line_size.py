"""Figure 11: instruction cache performance vs line size (S=32KB).

Dynamic exclusion uses the Section 6 last-line buffer; the optimal
comparison point is computed over collapsed line-reference events (see
:class:`repro.caches.optimal.OptimalLastLineCache`).  Paper expectation:
the percentage improvement declines as lines grow (37% at 4B down to
25% at 64B) because longer lines create additional conflicts.
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.stats import percent_reduction
from .common import LINE_SIZE_SWEEP, REFERENCE_SIZE, line_size_factories
from .spec import BenchmarkSuite, ExperimentSpec, register, run_spec

TITLE = "Figure 11: instruction cache miss rate vs line size (S=32KB)"


def _spec(spec_id: str, size: int, render=None, hidden: bool = False) -> ExperimentSpec:
    return ExperimentSpec(
        id=spec_id,
        title=TITLE,
        parameter_name="line size",
        parameters=tuple(LINE_SIZE_SWEEP),
        factories=tuple(line_size_factories(size).items()),
        traces=BenchmarkSuite("instruction"),
        render=render,
        hidden=hidden,
    )


def _render(result: SweepResult) -> str:
    table = format_sweep(
        result, title=TITLE, value_format="{:.3%}", param_format="{}B"
    )
    chart = sweep_chart(result, title="miss rate (%)")
    reductions = improvements()
    trail = ", ".join(f"{b}B: {r:.1f}%" for b, r in reductions.items())
    return f"{table}\n\n{chart}\n\nDE reduction by line size: {trail}"


SPEC = register(_spec("fig11", REFERENCE_SIZE, render=_render))


def run(size: int = REFERENCE_SIZE) -> SweepResult:
    if size == REFERENCE_SIZE:
        return run_spec(SPEC)
    return run_spec(_spec(f"fig11[{size}]", size, hidden=True))


def improvements() -> "dict[int, float]":
    """Line size -> percent miss-rate reduction from dynamic exclusion."""
    result = run()
    out = {}
    for b in result.parameters:
        dm = result.series["direct-mapped"].points[b]
        de = result.series["dynamic-exclusion"].points[b]
        out[int(b)] = percent_reduction(dm, de)
    return out


def report() -> str:
    return _render(run())
