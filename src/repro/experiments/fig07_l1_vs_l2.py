"""Figure 7: L1 miss rate under the three hit-last storage options, as
the L2 grows from 1x to 64x the L1 size (L1=32KB, b=4B).

Paper expectations: *assume-hit* degenerates to conventional
direct-mapped behaviour when L2 == L1 and becomes the best L2-backed
option once L2 is big; all options capture most of the ideal benefit
once L2 >= 4x L1; *hashed* does not depend on the L2 at all.
"""

from __future__ import annotations

from typing import List

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..hierarchy.two_level import Strategy
from . import hierarchy_sweep
from .hierarchy_sweep import HierarchySweep
from .spec import ExperimentSpec, register, run_spec

TITLE = "Figure 7: dynamic exclusion L1 performance vs L2 size (L1=32KB, b=4B)"


def _render(sweep: HierarchySweep) -> str:
    headers = ["L2/L1"] + [s.value for s in hierarchy_sweep.STRATEGIES]
    rows: List[List[object]] = []
    for ratio in sweep.ratios:
        row: List[object] = [f"{ratio}x"]
        for strategy in hierarchy_sweep.STRATEGIES:
            row.append(f"{100 * sweep.points[(strategy, ratio)].l1_miss_rate:.2f}%")
        rows.append(row)
    table = format_table(headers, rows, title=TITLE)
    chart = ascii_chart(
        {
            s.value: [100 * v for v in sweep.l1_curve(s)]
            for s in hierarchy_sweep.STRATEGIES
        },
        x_labels=[f"{r}x" for r in sweep.ratios],
        title="L1 miss rate (%)",
    )
    return f"{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="fig07",
        title=TITLE,
        base=("hierarchy",),
        derive=hierarchy_sweep.same_sweep,
        render=_render,
    )
)


def run() -> HierarchySweep:
    return run_spec(SPEC)


def report() -> str:
    return _render(run())


def assume_hit_degenerates() -> bool:
    """True if assume-hit at L2==L1 matches the conventional cache."""
    sweep = run()
    baseline = sweep.points[(Strategy.DIRECT_MAPPED, 1)].l1_miss_rate
    assume_hit = sweep.points[(Strategy.ASSUME_HIT, 1)].l1_miss_rate
    return abs(baseline - assume_hit) < 1e-12
