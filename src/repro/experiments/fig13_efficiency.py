"""Figure 13: the efficiency of dynamic exclusion vs extra capacity.

The paper's table compares, at b=16B, an 8KB direct-mapped baseline
against (a) the same cache with dynamic exclusion (hashed hit-last
strategy, four bits per line, plus a last-line buffer) and (b) a 16KB
direct-mapped cache.  Efficiency is the miss-rate reduction divided by
the SRAM growth; the paper finds DE roughly 15x more efficient.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table
from ..caches.geometry import CacheGeometry
from ..core.cost import EfficiencyRow, doubling_efficiency, exclusion_efficiency
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import HashedHitLastStore
from ..core.long_lines import LastLineBufferCache
from ..perf.engine import simulate as engine_simulate
from .common import all_traces, direct_mapped

TITLE = "Figure 13: dynamic exclusion efficiency (b=16B)"

BASE_SIZE = 8 * 1024
LINE_SIZE = 16
HASHED_BITS_PER_LINE = 4


@dataclass(frozen=True)
class EfficiencyResult:
    baseline_miss_rate: float
    exclusion_miss_rate: float
    doubled_miss_rate: float
    exclusion: EfficiencyRow
    doubling: EfficiencyRow

    @property
    def advantage(self) -> float:
        """How many times more efficient DE is than doubling capacity."""
        if self.doubling.efficiency == 0:
            return float("inf")
        return self.exclusion.efficiency / self.doubling.efficiency


def _hashed_exclusion_cache(geometry: CacheGeometry) -> LastLineBufferCache:
    store = HashedHitLastStore(geometry.num_lines * HASHED_BITS_PER_LINE)
    inner = DynamicExclusionCache(geometry, store=store)
    return LastLineBufferCache(inner)


def run(base_size: int = BASE_SIZE, line_size: int = LINE_SIZE) -> EfficiencyResult:
    geometry = CacheGeometry(base_size, line_size)
    doubled = geometry.scaled(2)
    traces = all_traces("instruction")

    # Through the engine dispatch so --engine fast reaches the two
    # direct-mapped passes (the hashed-store DE model has no kernel and
    # falls back transparently).
    baseline = statistics.mean(
        engine_simulate(direct_mapped(geometry), t).miss_rate for t in traces
    )
    exclusion = statistics.mean(
        engine_simulate(_hashed_exclusion_cache(geometry), t).miss_rate for t in traces
    )
    doubled_rate = statistics.mean(
        engine_simulate(direct_mapped(doubled), t).miss_rate for t in traces
    )
    return EfficiencyResult(
        baseline_miss_rate=baseline,
        exclusion_miss_rate=exclusion,
        doubled_miss_rate=doubled_rate,
        exclusion=exclusion_efficiency(
            geometry,
            baseline,
            exclusion,
            hashed_hitlast_bits_per_line=HASHED_BITS_PER_LINE,
        ),
        doubling=doubling_efficiency(geometry, baseline, doubled_rate),
    )


def report() -> str:
    result = run()
    base_kb = BASE_SIZE // 1024
    rows: List[List[object]] = [
        [
            "miss rate",
            f"{100 * result.baseline_miss_rate:.2f}%",
            f"{100 * result.exclusion_miss_rate:.2f}%",
            f"{100 * result.doubled_miss_rate:.2f}%",
        ],
        ["dSize", "-", f"{result.exclusion.delta_size_percent:.1f}%",
         f"{result.doubling.delta_size_percent:.1f}%"],
        ["dMissRate", "-", f"{result.exclusion.delta_miss_percent:.1f}%",
         f"{result.doubling.delta_miss_percent:.1f}%"],
        ["dMiss/dSize", "-", f"{result.exclusion.efficiency:.2f}",
         f"{result.doubling.efficiency:.2f}"],
    ]
    table = format_table(
        ["", f"{base_kb}KB DM", f"{base_kb}KB DE", f"{2 * base_kb}KB DM"],
        rows,
        title=TITLE,
    )
    summary = (
        f"\nadding dynamic exclusion is {result.advantage:.1f}x more efficient "
        f"than doubling capacity (paper: ~15x)."
    )
    return table + summary
