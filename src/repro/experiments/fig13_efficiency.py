"""Figure 13: the efficiency of dynamic exclusion vs extra capacity.

The paper's table compares, at b=16B, an 8KB direct-mapped baseline
against (a) the same cache with dynamic exclusion (hashed hit-last
strategy, four bits per line, plus a last-line buffer) and (b) a 16KB
direct-mapped cache.  Efficiency is the miss-rate reduction divided by
the SRAM growth; the paper finds DE roughly 15x more efficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..core.cost import EfficiencyRow, doubling_efficiency, exclusion_efficiency
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import HashedHitLastStore
from ..core.long_lines import LastLineBufferCache
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Figure 13: dynamic exclusion efficiency (b=16B)"

BASE_SIZE = 8 * 1024
LINE_SIZE = 16
HASHED_BITS_PER_LINE = 4


@dataclass(frozen=True)
class EfficiencyResult:
    baseline_miss_rate: float
    exclusion_miss_rate: float
    doubled_miss_rate: float
    exclusion: EfficiencyRow
    doubling: EfficiencyRow

    @property
    def advantage(self) -> float:
        """How many times more efficient DE is than doubling capacity."""
        if self.doubling.efficiency == 0:
            return float("inf")
        return self.exclusion.efficiency / self.doubling.efficiency


@dataclass(frozen=True)
class Fig13Factory:
    """Picklable factory for the table's three columns, by base size."""

    column: str  # "baseline" | "exclusion" | "doubled"
    line_size: int

    def __call__(self, base_size: object):
        geometry = CacheGeometry(int(base_size), self.line_size)  # type: ignore[call-overload]
        if self.column == "baseline":
            return DirectMappedCache(geometry)
        if self.column == "doubled":
            return DirectMappedCache(geometry.scaled(2))
        if self.column == "exclusion":
            store = HashedHitLastStore(geometry.num_lines * HASHED_BITS_PER_LINE)
            return LastLineBufferCache(DynamicExclusionCache(geometry, store=store))
        raise ValueError(f"unknown Figure 13 column {self.column!r}")


@dataclass(frozen=True)
class CollectEfficiency:
    """Mean the three columns and price them with the SRAM cost model."""

    line_size: int

    def __call__(self, grid: GridResult) -> EfficiencyResult:
        base_size = int(grid.parameters[0])
        geometry = CacheGeometry(base_size, self.line_size)
        baseline = grid.mean("baseline", grid.parameters[0])
        exclusion = grid.mean("exclusion", grid.parameters[0])
        doubled_rate = grid.mean("doubled", grid.parameters[0])
        return EfficiencyResult(
            baseline_miss_rate=baseline,
            exclusion_miss_rate=exclusion,
            doubled_miss_rate=doubled_rate,
            exclusion=exclusion_efficiency(
                geometry,
                baseline,
                exclusion,
                hashed_hitlast_bits_per_line=HASHED_BITS_PER_LINE,
            ),
            doubling=doubling_efficiency(geometry, baseline, doubled_rate),
        )


def _spec(spec_id: str, base_size: int, line_size: int, render=None, hidden=False):
    return ExperimentSpec(
        id=spec_id,
        title=TITLE,
        parameter_name="base size",
        parameters=(base_size,),
        factories=tuple(
            (column, Fig13Factory(column, line_size))
            for column in ["baseline", "exclusion", "doubled"]
        ),
        traces=BenchmarkSuite("instruction"),
        collect=CollectEfficiency(line_size),
        render=render,
        hidden=hidden,
    )


def _render(result: EfficiencyResult) -> str:
    base_kb = BASE_SIZE // 1024
    rows: List[List[object]] = [
        [
            "miss rate",
            f"{100 * result.baseline_miss_rate:.2f}%",
            f"{100 * result.exclusion_miss_rate:.2f}%",
            f"{100 * result.doubled_miss_rate:.2f}%",
        ],
        ["dSize", "-", f"{result.exclusion.delta_size_percent:.1f}%",
         f"{result.doubling.delta_size_percent:.1f}%"],
        ["dMissRate", "-", f"{result.exclusion.delta_miss_percent:.1f}%",
         f"{result.doubling.delta_miss_percent:.1f}%"],
        ["dMiss/dSize", "-", f"{result.exclusion.efficiency:.2f}",
         f"{result.doubling.efficiency:.2f}"],
    ]
    table = format_table(
        ["", f"{base_kb}KB DM", f"{base_kb}KB DE", f"{2 * base_kb}KB DM"],
        rows,
        title=TITLE,
    )
    summary = (
        f"\nadding dynamic exclusion is {result.advantage:.1f}x more efficient "
        f"than doubling capacity (paper: ~15x)."
    )
    return table + summary


SPEC = register(_spec("fig13", BASE_SIZE, LINE_SIZE, render=_render))


def run(base_size: int = BASE_SIZE, line_size: int = LINE_SIZE) -> EfficiencyResult:
    if base_size == BASE_SIZE and line_size == LINE_SIZE:
        return run_spec(SPEC)
    return run_spec(
        _spec(f"fig13[{base_size},{line_size}]", base_size, line_size, hidden=True)
    )


def report() -> str:
    return _render(run())
