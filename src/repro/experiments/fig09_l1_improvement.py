"""Figure 9: percent L1 miss-rate improvement vs L2 size.

Derived from the Figure 7 sweep: each strategy's L1 improvement over
the conventional direct-mapped L1, as a function of the L2 size.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..caches.stats import percent_reduction
from ..hierarchy.two_level import Strategy
from . import hierarchy_sweep
from .hierarchy_sweep import HierarchySweep
from .spec import ExperimentSpec, register, run_spec

TITLE = "Figure 9: dynamic exclusion L1 improvement vs L2 size (L1=32KB, b=4B)"

CURVES = [Strategy.IDEAL, Strategy.ASSUME_HIT, Strategy.ASSUME_MISS, Strategy.HASHED]


def improvement_curves(sweep: HierarchySweep) -> "Dict[Strategy, List[float]]":
    """Percent L1 improvement per strategy, over the ratio grid."""
    curves: "Dict[Strategy, List[float]]" = {}
    for strategy in CURVES:
        improvements = []
        for ratio in sweep.ratios:
            baseline = sweep.points[(Strategy.DIRECT_MAPPED, ratio)].l1_miss_rate
            value = sweep.points[(strategy, ratio)].l1_miss_rate
            improvements.append(percent_reduction(baseline, value))
        curves[strategy] = improvements
    return curves


def _render(curves: "Dict[Strategy, List[float]]") -> str:
    sweep = hierarchy_sweep.run()
    headers = ["L2 size"] + [s.value for s in CURVES]
    rows: List[List[object]] = []
    for i, ratio in enumerate(sweep.ratios):
        row: List[object] = [f"{sweep.l1_size * ratio // 1024}KB"]
        for strategy in CURVES:
            row.append(f"{curves[strategy][i]:.1f}%")
        rows.append(row)
    table = format_table(headers, rows, title=TITLE)
    chart = ascii_chart(
        {s.value: curves[s] for s in CURVES},
        x_labels=[f"{sweep.l1_size * r // 1024}K" for r in sweep.ratios],
        title="L1 miss-rate improvement (%)",
    )
    return f"{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="fig09",
        title=TITLE,
        base=("hierarchy",),
        derive=improvement_curves,
        render=_render,
    )
)


def run() -> "Dict[Strategy, List[float]]":
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
