"""Shared infrastructure for the experiment modules.

* a process-wide memoising trace cache (trace generation is the most
  expensive part of small experiments);
* the reference-budget policy (``REPRO_TRACE_SCALE`` environment
  variable scales every experiment's trace length);
* the standard cache factories used across figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.optimal import OptimalDirectMappedCache, OptimalLastLineCache
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..core.long_lines import make_long_line_exclusion_cache
from ..env import BASE_MAX_REFS, max_refs, trace_scale  # noqa: F401 (re-exported)
from ..perf.batch import DEBatchSpec
from ..perf.parallel import TraceKey, clear_trace_cache as _clear_key_cache
from ..trace.trace import Trace
from ..workloads.registry import benchmark_names, trace_by_kind

#: Cache sizes swept by the size figures (Figures 4, 5, 12, 14, 15).
SIZE_SWEEP_KB = [1, 2, 4, 8, 16, 32, 64, 128, 256]

#: Line sizes swept by Figure 11.
LINE_SIZE_SWEEP = [4, 8, 16, 32, 64]

#: Relative L2 sizes swept by Figures 7-9.
L2_RATIO_SWEEP = [1, 2, 4, 8, 16, 32, 64]

#: The reference cache size of most figures (32 KB, 4 B lines).
REFERENCE_SIZE = 32 * 1024
REFERENCE_LINE = 4


_TRACE_CACHE: Dict[Tuple[str, str, int], Trace] = {}


def _evict_other_scales(budget: int) -> None:
    """Drop memoised traces generated under a different reference budget.

    Flipping ``REPRO_TRACE_SCALE`` mid-process (tests and notebooks do)
    used to accumulate one full benchmark suite per scale ever used —
    at scale 25 that is hundreds of megabytes of dead arrays.  Traces
    from other scales can never be returned again until the scale flips
    back, and regeneration is cheap relative to holding them, so the
    cache keeps only the current scale's entries.
    """
    stale = [key for key in _TRACE_CACHE if key[2] != budget]
    for key in stale:
        del _TRACE_CACHE[key]


def cached_trace(name: str, kind: str = "instruction") -> Trace:
    """Memoised benchmark trace (kind in instruction / data / mixed)."""
    budget = max_refs()
    key = (name, kind, budget)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        _evict_other_scales(budget)
        trace = trace_by_kind(name, kind, max_refs=budget)
        _TRACE_CACHE[key] = trace
    return trace


def all_traces(kind: str = "instruction") -> List[Trace]:
    """One trace per SPEC benchmark, in name order."""
    return [cached_trace(name, kind) for name in benchmark_names()]


def all_trace_keys(kind: str = "instruction") -> List[TraceKey]:
    """One :class:`~repro.perf.parallel.TraceKey` per SPEC benchmark.

    Keys pickle as three scalars, so sweeps built on them can fan out to
    worker processes without shipping trace arrays; sequential runs
    materialise them through the same per-process memo.
    """
    budget = max_refs()
    return [TraceKey(name, kind, budget) for name in benchmark_names()]


def clear_trace_cache() -> None:
    """Drop all memoised traces and spec results (tests use this to
    control memory and to force regeneration after a scale change)."""
    _TRACE_CACHE.clear()
    _clear_key_cache()
    from .spec import clear_result_cache  # local import: spec imports common

    clear_result_cache()


# -- standard simulator factories ---------------------------------------------


def direct_mapped(geometry: CacheGeometry) -> DirectMappedCache:
    """The conventional baseline."""
    return DirectMappedCache(geometry)


def dynamic_exclusion(geometry: CacheGeometry) -> DynamicExclusionCache:
    """DE with the ideal hit-last store (Figures 3-5, 14, 15)."""
    return DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True))


def dynamic_exclusion_long_lines(geometry: CacheGeometry):
    """DE with the last-line buffer (Figures 11-13)."""
    return make_long_line_exclusion_cache(
        geometry, store=IdealHitLastStore(default=True)
    )


def optimal(geometry: CacheGeometry) -> OptimalDirectMappedCache:
    """Belady-with-bypass at the geometry's own line granularity."""
    return OptimalDirectMappedCache(geometry)


def optimal_long_lines(geometry: CacheGeometry) -> OptimalLastLineCache:
    """Belady-with-bypass over collapsed line-reference events."""
    return OptimalLastLineCache(geometry)


@dataclass(frozen=True)
class StandardFactory:
    """A picklable size-sweep factory for one standard curve.

    Sweep cells cross process boundaries under ``--workers``, so the
    factories must pickle; a frozen dataclass with the curve name and
    line size replaces the closures that used to live here.  For line
    sizes above one word the DE and optimal models get the Section 6
    treatment automatically.
    """

    curve: str  # "direct-mapped" | "dynamic-exclusion" | "optimal"
    line_size: int

    def __call__(self, size: object):
        geometry = CacheGeometry(int(size), self.line_size)  # type: ignore[call-overload]
        if self.curve == "direct-mapped":
            return direct_mapped(geometry)
        if self.curve == "dynamic-exclusion":
            if self.line_size <= 4:
                return dynamic_exclusion(geometry)
            return dynamic_exclusion_long_lines(geometry)
        if self.curve == "optimal":
            if self.line_size <= 4:
                return optimal(geometry)
            return optimal_long_lines(geometry)
        raise ValueError(f"unknown standard curve {self.curve!r}")

    def batch_spec(self, size: object):
        """Batch spec for the DE curve, skipping model construction.

        The ``batch_spec`` factory protocol (see
        :mod:`repro.perf.parallel`): the ``--engine batch`` scheduler
        asks factories to describe their cell directly so it never has
        to allocate a large cache's per-set arrays just to read the
        geometry back off it.  Must match what ``__call__`` builds:
        only the word-line DE curve has a batch kernel.
        """
        if self.curve == "dynamic-exclusion" and self.line_size <= 4:
            geometry = CacheGeometry(int(size), self.line_size)  # type: ignore[call-overload]
            return DEBatchSpec(geometry, default_hit_last=True)
        return None


def standard_factories(line_size: int) -> "Dict[str, Callable[[object], object]]":
    """The three curves of Figures 4/11/12/14/15, parameterised by size."""
    return {
        curve: StandardFactory(curve, line_size)
        for curve in ["direct-mapped", "dynamic-exclusion", "optimal"]
    }


@dataclass(frozen=True)
class LineSizeFactory:
    """Picklable Figure-11 factory: fixed cache size, swept line size.

    Unlike :class:`StandardFactory`, the DE and optimal curves use the
    Section 6 last-line treatment at *every* line size (including 4B) —
    Figure 11 compares the long-line designs across their whole axis.
    """

    curve: str  # as StandardFactory
    size: int

    def __call__(self, line_size: object):
        geometry = CacheGeometry(self.size, int(line_size))  # type: ignore[call-overload]
        if self.curve == "direct-mapped":
            return direct_mapped(geometry)
        if self.curve == "dynamic-exclusion":
            return dynamic_exclusion_long_lines(geometry)
        if self.curve == "optimal":
            return optimal_long_lines(geometry)
        raise ValueError(f"unknown standard curve {self.curve!r}")


def line_size_factories(size: int) -> "Dict[str, Callable[[object], object]]":
    """The three curves of Figure 11, parameterised by line size."""
    return {
        curve: LineSizeFactory(curve, size)
        for curve in ["direct-mapped", "dynamic-exclusion", "optimal"]
    }
