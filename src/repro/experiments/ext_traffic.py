"""Extension: memory traffic of the competing designs.

Miss *rate* is the paper's metric, but what a memory system ultimately
pays for is bytes moved.  This experiment runs the mixed traces through
write-back caches (16-byte lines, unified I+D) and accounts the full
traffic — line fills plus dirty write-backs plus written-through
bypassed stores — for the direct-mapped baseline, dynamic exclusion,
and a 2-way set-associative cache.

Expected shape: exclusion's fetch traffic tracks its (lower) miss
count, since a bypassed load still transfers its line once; its
write-back traffic is essentially the baseline's.
"""

from __future__ import annotations

import statistics
from typing import Dict

from ..analysis.report import format_table
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.set_associative import SetAssociativeCache
from ..caches.write_policy import WritePolicyCache
from ..core.hitlast import IdealHitLastStore
from ..core.long_lines import make_long_line_exclusion_cache
from .common import REFERENCE_SIZE, all_traces, max_refs

TITLE = "Extension: memory traffic per 1000 references (S=32KB, b=16B, write-back)"

LINE_SIZE = 16


def _configs() -> Dict[str, object]:
    geometry = CacheGeometry(REFERENCE_SIZE, LINE_SIZE)
    two_way = CacheGeometry(REFERENCE_SIZE, LINE_SIZE, associativity=2)
    return {
        "direct-mapped": lambda: WritePolicyCache(DirectMappedCache(geometry)),
        "dynamic-exclusion": lambda: WritePolicyCache(
            make_long_line_exclusion_cache(
                geometry, store=IdealHitLastStore(default=True)
            )
        ),
        "2-way": lambda: WritePolicyCache(SetAssociativeCache(two_way)),
    }


_CACHE: "dict[int, Dict[str, Dict[str, float]]]" = {}


def run() -> "Dict[str, Dict[str, float]]":
    key = max_refs()
    if key not in _CACHE:
        traces = all_traces("mixed")
        results: "Dict[str, Dict[str, float]]" = {}
        for label, factory in _configs().items():
            miss_rates = []
            fetch_bytes = []
            write_bytes = []
            for trace in traces:
                cache = factory()
                stats = cache.simulate(trace)
                cache.flush()
                per_kilo = 1000.0 / max(1, len(trace))
                miss_rates.append(stats.miss_rate)
                fetch_bytes.append(cache.traffic.bytes_fetched(LINE_SIZE) * per_kilo)
                write_bytes.append(
                    cache.traffic.bytes_written(LINE_SIZE) * per_kilo
                )
            results[label] = {
                "miss_rate": statistics.mean(miss_rates),
                "fetch_bytes_per_kiloref": statistics.mean(fetch_bytes),
                "write_bytes_per_kiloref": statistics.mean(write_bytes),
            }
        _CACHE[key] = results
    return _CACHE[key]


def report() -> str:
    results = run()
    rows = []
    for label, values in results.items():
        total = (
            values["fetch_bytes_per_kiloref"] + values["write_bytes_per_kiloref"]
        )
        rows.append(
            [
                label,
                f"{values['miss_rate']:.3%}",
                f"{values['fetch_bytes_per_kiloref']:.0f}",
                f"{values['write_bytes_per_kiloref']:.0f}",
                f"{total:.0f}",
            ]
        )
    return format_table(
        ["configuration", "miss rate", "fetch B/1k refs",
         "write B/1k refs", "total B/1k refs"],
        rows,
        title=TITLE,
    )
