"""Extension: memory traffic of the competing designs.

Miss *rate* is the paper's metric, but what a memory system ultimately
pays for is bytes moved.  This experiment runs the mixed traces through
write-back caches (16-byte lines, unified I+D) and accounts the full
traffic — line fills plus dirty write-backs plus written-through
bypassed stores — for the direct-mapped baseline, dynamic exclusion,
and a 2-way set-associative cache.

Expected shape: exclusion's fetch traffic tracks its (lower) miss
count, since a bypassed load still transfers its line once; its
write-back traffic is essentially the baseline's.

A multi-metric cell: the evaluator returns miss rate *and* the two
traffic figures, all three journaled together, and the collect step
means each metric across traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.report import format_table
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.set_associative import SetAssociativeCache
from ..caches.write_policy import WritePolicyCache
from ..core.hitlast import IdealHitLastStore
from ..core.long_lines import make_long_line_exclusion_cache
from ..trace.trace import Trace
from .common import REFERENCE_SIZE
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Extension: memory traffic per 1000 references (S=32KB, b=16B, write-back)"

LINE_SIZE = 16

_LABELS = ["direct-mapped", "dynamic-exclusion", "2-way"]

_METRICS = ["miss_rate", "fetch_bytes_per_kiloref", "write_bytes_per_kiloref"]


@dataclass(frozen=True)
class TrafficFactory:
    """A write-back cache for one of the compared designs."""

    label: str
    line_size: int = LINE_SIZE

    def __call__(self, size: object):
        geometry = CacheGeometry(int(size), self.line_size)  # type: ignore[call-overload]
        if self.label == "direct-mapped":
            return WritePolicyCache(DirectMappedCache(geometry))
        if self.label == "dynamic-exclusion":
            return WritePolicyCache(
                make_long_line_exclusion_cache(
                    geometry, store=IdealHitLastStore(default=True)
                )
            )
        if self.label == "2-way":
            two_way = CacheGeometry(int(size), self.line_size, associativity=2)  # type: ignore[call-overload]
            return WritePolicyCache(SetAssociativeCache(two_way))
        raise ValueError(f"unknown design {self.label!r}")


@dataclass(frozen=True)
class TrafficEvaluator:
    """Simulate, flush the dirty lines, and account bytes moved."""

    line_size: int = LINE_SIZE

    def __call__(
        self, model: WritePolicyCache, trace: Trace, engine: Optional[str]
    ) -> Dict[str, float]:
        stats = model.simulate(trace)
        model.flush()
        per_kilo = 1000.0 / max(1, len(trace))
        return {
            "miss_rate": stats.miss_rate,
            "fetch_bytes_per_kiloref": model.traffic.bytes_fetched(self.line_size)
            * per_kilo,
            "write_bytes_per_kiloref": model.traffic.bytes_written(self.line_size)
            * per_kilo,
        }


def _collect(grid: GridResult) -> "Dict[str, Dict[str, float]]":
    size = grid.parameters[0]
    return {
        label: {metric: grid.mean(label, size, metric) for metric in _METRICS}
        for label in grid.labels
    }


def _render(results: "Dict[str, Dict[str, float]]") -> str:
    rows = []
    for label, values in results.items():
        total = (
            values["fetch_bytes_per_kiloref"] + values["write_bytes_per_kiloref"]
        )
        rows.append(
            [
                label,
                f"{values['miss_rate']:.3%}",
                f"{values['fetch_bytes_per_kiloref']:.0f}",
                f"{values['write_bytes_per_kiloref']:.0f}",
                f"{total:.0f}",
            ]
        )
    return format_table(
        ["configuration", "miss rate", "fetch B/1k refs",
         "write B/1k refs", "total B/1k refs"],
        rows,
        title=TITLE,
    )


SPEC = register(
    ExperimentSpec(
        id="ext-traffic",
        title=TITLE,
        parameter_name="cache size",
        parameters=(REFERENCE_SIZE,),
        factories=tuple((label, TrafficFactory(label)) for label in _LABELS),
        traces=BenchmarkSuite("mixed"),
        evaluator=TrafficEvaluator(),
        collect=_collect,
        render=_render,
    )
)


def run() -> "Dict[str, Dict[str, float]]":
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
