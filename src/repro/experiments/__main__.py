"""CLI for the experiment harness.

Usage::

    python -m repro.experiments                 # run every figure
    python -m repro.experiments --only fig05    # one figure
    python -m repro.experiments --list          # what exists
    python -m repro.experiments --svg figures/  # also save SVG charts
    REPRO_TRACE_SCALE=5 python -m repro.experiments --only fig04
    python -m repro.experiments --only fig04 --engine fast --workers 4
    python -m repro.experiments --only fig04 --workers 4 \\
        --resume-dir runs/fig04 --progress
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

from .. import perf
from . import EXPERIMENTS
from .common import trace_scale


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Cache Replacement with Dynamic Exclusion'",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="ID",
        help="experiment id (repeatable); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also render each sweep-style experiment as DIR/<id>.svg",
    )
    parser.add_argument(
        "--engine",
        choices=list(perf.ENGINES),
        default=None,
        help="simulation engine: 'fast' uses the set-partitioned numpy "
        "kernels where available (identical results), 'reference' the "
        "per-reference simulators (default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for sweep cells (default: REPRO_WORKERS "
        "or 1 = sequential)",
    )
    parser.add_argument(
        "--resume-dir",
        metavar="DIR",
        default=None,
        help="journal completed sweep cells under DIR and reuse them on "
        "the next run, so a crashed or interrupted sweep resumes instead "
        "of recomputing; telemetry is recorded there too",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report each sweep cell and a per-experiment telemetry "
        "summary on stderr",
    )
    args = parser.parse_args(argv)

    # Fail on malformed environment before any trace is generated: a bad
    # REPRO_WORKERS used to surface only when the first sweep spun up its
    # pool, minutes into a run.
    try:
        perf.env_workers()
        trace_scale()
    except ValueError as exc:
        parser.error(str(exc))

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.engine is not None:
        perf.set_default_engine(args.engine)
    if args.workers is not None:
        perf.set_default_workers(args.workers)

    resume_dir = None
    if args.resume_dir:
        resume_dir = Path(args.resume_dir)
        resume_dir.mkdir(parents=True, exist_ok=True)
        perf.set_default_journal_dir(resume_dir)
    if args.progress:
        perf.set_default_progress(True)

    if args.list:
        for key, module in EXPERIMENTS.items():
            print(f"{key:8s} {module.TITLE}")
        return 0

    selected = args.only or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}; try --list")

    svg_dir = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)

    telemetry_dir = resume_dir if resume_dir is not None else svg_dir

    try:
        for key in selected:
            module = EXPERIMENTS[key]
            started = time.time()
            perf.drain_telemetry()  # discard any runs from a prior experiment
            print(f"\n{'#' * 72}\n# {key}: {module.TITLE}\n{'#' * 72}")
            print(module.report())
            if svg_dir is not None:
                path = _maybe_save_svg(module, key, svg_dir)
                if path is not None:
                    print(f"[svg written to {path}]")
            elapsed = time.time() - started
            sweeps = perf.drain_telemetry()
            if telemetry_dir is not None and sweeps:
                path = _save_telemetry(key, sweeps, elapsed, telemetry_dir)
                print(f"[telemetry written to {path}]")
            if args.progress:
                for record in sweeps:
                    print(f"[{key}] {record.summary()}", file=sys.stderr)
            print(f"\n[{key} done in {elapsed:.1f}s]")
    finally:
        # The resume/progress defaults are process-wide; restore them so
        # an embedding caller (or the test suite) is not left journaling.
        if resume_dir is not None:
            perf.set_default_journal_dir(None)
        if args.progress:
            perf.set_default_progress(False)
    return 0


def _save_telemetry(key: str, sweeps, elapsed: float, directory: Path) -> Path:
    """Record the experiment's sweep telemetry next to its outputs."""
    payload = {
        "kind": "experiment-telemetry",
        "version": 1,
        "experiment": key,
        "elapsed_seconds": round(elapsed, 3),
        "sweeps": [record.to_dict() for record in sweeps],
    }
    path = directory / f"{key}.telemetry.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _maybe_save_svg(module, key: str, directory):
    """Render the experiment as SVG when its run() yields a sweep."""
    from ..analysis.svg import sweep_svg
    from ..analysis.sweep import SweepResult

    result = module.run()
    if not isinstance(result, SweepResult):
        return None
    path = directory / f"{key}.svg"
    percent = all(
        0.0 <= value <= 1.0
        for series in result.series.values()
        for value in series.points.values()
    )
    path.write_text(sweep_svg(result, title=module.TITLE, percent=percent))
    return path


if __name__ == "__main__":
    sys.exit(main())
