"""CLI for the experiment harness.

Usage::

    python -m repro.experiments                 # run every figure
    python -m repro.experiments --only fig05    # one figure
    python -m repro.experiments --list          # what exists
    python -m repro.experiments --svg figures/  # also save SVG charts
    REPRO_TRACE_SCALE=5 python -m repro.experiments --only fig04
    python -m repro.experiments --only fig04 --engine fast --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List

from .. import perf
from . import EXPERIMENTS


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Cache Replacement with Dynamic Exclusion'",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="ID",
        help="experiment id (repeatable); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also render each sweep-style experiment as DIR/<id>.svg",
    )
    parser.add_argument(
        "--engine",
        choices=list(perf.ENGINES),
        default=None,
        help="simulation engine: 'fast' uses the set-partitioned numpy "
        "kernels where available (identical results), 'reference' the "
        "per-reference simulators (default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for sweep cells (default: REPRO_WORKERS "
        "or 1 = sequential)",
    )
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.engine is not None:
        perf.set_default_engine(args.engine)
    if args.workers is not None:
        perf.set_default_workers(args.workers)

    if args.list:
        for key, module in EXPERIMENTS.items():
            print(f"{key:8s} {module.TITLE}")
        return 0

    selected = args.only or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}; try --list")

    svg_dir = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)

    for key in selected:
        module = EXPERIMENTS[key]
        started = time.time()
        print(f"\n{'#' * 72}\n# {key}: {module.TITLE}\n{'#' * 72}")
        print(module.report())
        if svg_dir is not None:
            path = _maybe_save_svg(module, key, svg_dir)
            if path is not None:
                print(f"[svg written to {path}]")
        print(f"\n[{key} done in {time.time() - started:.1f}s]")
    return 0


def _maybe_save_svg(module, key: str, directory):
    """Render the experiment as SVG when its run() yields a sweep."""
    from ..analysis.svg import sweep_svg
    from ..analysis.sweep import SweepResult

    result = module.run()
    if not isinstance(result, SweepResult):
        return None
    path = directory / f"{key}.svg"
    percent = all(
        0.0 <= value <= 1.0
        for series in result.series.values()
        for value in series.points.values()
    )
    path.write_text(sweep_svg(result, title=module.TITLE, percent=percent))
    return path


if __name__ == "__main__":
    sys.exit(main())
