"""CLI for the experiment harness.

Usage::

    python -m repro.experiments                 # run every figure
    python -m repro.experiments --only fig05    # one figure
    python -m repro.experiments --list          # what exists
    python -m repro.experiments --filter l2     # every L2 experiment
    python -m repro.experiments --svg figures/  # also save SVG charts
    REPRO_TRACE_SCALE=5 python -m repro.experiments --only fig04
    python -m repro.experiments --only fig04 --engine fast --workers 4
    python -m repro.experiments --only fig04 --workers 4 \\
        --resume-dir runs/fig04 --progress

All the work happens in :mod:`repro.experiments.frontend`, which
``python -m repro.cli experiments`` shares.
"""

from __future__ import annotations

import sys

from .frontend import main

if __name__ == "__main__":
    sys.exit(main())
