"""Extension: dynamic exclusion under multiprogramming.

The paper evaluates single programs; a natural question for a real
machine is what context switches do to the exclusion state.  Sticky and
hit-last bits are trained per address, so when two programs share a
cache their conflicting words fight across quanta.  This experiment
timeshares pairs of benchmarks at several quantum lengths and compares
direct-mapped, dynamic exclusion, and optimal replacement on the shared
reference stream.

Expected shape: very short quanta destroy locality for every policy and
shrink exclusion's edge (the FSM retrains each quantum); at realistic
quanta (tens of thousands of references) the single-program improvement
survives almost intact.

As a grid spec the quantum is the parameter and the trace axis is a set
of :class:`TimeshareKey` recipes — deterministic, picklable, and
quantum-dependent, demonstrating that any recipe with
``name``/``kind``/``max_refs``/``load`` plugs into the sweep runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..caches.geometry import CacheGeometry
from ..caches.stats import percent_reduction
from ..trace.trace import Trace
from ..trace.transforms import timeshare
from .common import REFERENCE_LINE, REFERENCE_SIZE, direct_mapped, dynamic_exclusion, optimal
from .spec import ExperimentSpec, GridResult, register, run_spec

TITLE = "Extension: dynamic exclusion under timesharing (S=32KB, b=4B)"

#: Benchmark pairs that share the cache (big code + big code, and big
#: code + small kernel).
PAIRS: "Tuple[Tuple[str, str], ...]" = (("gcc", "spice"), ("li", "doduc"), ("gcc", "tomcatv"))

QUANTA = (100, 1_000, 10_000, 100_000)

_POLICIES = ["direct-mapped", "dynamic-exclusion", "optimal"]


@dataclass(frozen=True)
class TimeshareKey:
    """Recipe for a timeshared trace: two benchmarks, one quantum.

    Pickles as four scalars; workers rebuild (and memoise) the
    interleaved stream locally, like :class:`~repro.perf.parallel.TraceKey`.
    """

    left: str
    right: str
    quantum: int
    max_refs: int

    @property
    def name(self) -> str:
        return f"{self.left}+{self.right}@q{self.quantum}"

    @property
    def kind(self) -> str:
        return "timeshare"

    def load(self) -> Trace:
        from ..perf.parallel import as_trace

        return as_trace(self)

    def _build(self) -> Trace:
        from .common import cached_trace

        return timeshare(
            [cached_trace(self.left), cached_trace(self.right)],
            quantum=self.quantum,
            name=f"{self.left}+{self.right}",
        )


@dataclass(frozen=True)
class TimesharePairs:
    """The trace axis: one timeshared recipe per pair, at the cell's quantum."""

    pairs: "Tuple[Tuple[str, str], ...]" = PAIRS

    def for_parameter(self, quantum: object) -> Sequence[TimeshareKey]:
        from ..env import max_refs

        budget = max_refs()
        return [
            TimeshareKey(left, right, int(quantum), budget)  # type: ignore[call-overload]
            for left, right in self.pairs
        ]


@dataclass(frozen=True)
class SharedCacheFactory:
    """One policy at the fixed reference geometry (quantum is trace-side)."""

    curve: str
    size: int = REFERENCE_SIZE
    line_size: int = REFERENCE_LINE

    def __call__(self, quantum: object):
        geometry = CacheGeometry(self.size, self.line_size)
        if self.curve == "direct-mapped":
            return direct_mapped(geometry)
        if self.curve == "dynamic-exclusion":
            return dynamic_exclusion(geometry)
        if self.curve == "optimal":
            return optimal(geometry)
        raise ValueError(f"unknown curve {self.curve!r}")


def _collect(grid: GridResult) -> dict:
    rows: dict = {}
    for quantum in grid.parameters:
        rows[int(quantum)] = {
            label: grid.mean(label, quantum) for label in grid.labels
        }
    return rows


def _render(rows: dict) -> str:
    table_rows = []
    for quantum, rates in rows.items():
        table_rows.append(
            [
                f"{quantum:,}",
                f"{rates['direct-mapped']:.3%}",
                f"{rates['dynamic-exclusion']:.3%}",
                f"{rates['optimal']:.3%}",
                f"{percent_reduction(rates['direct-mapped'], rates['dynamic-exclusion']):.1f}%",
            ]
        )
    table = format_table(
        ["quantum (refs)", "direct-mapped", "dynamic-exclusion", "optimal",
         "DE reduction"],
        table_rows,
        title=TITLE,
    )
    chart = ascii_chart(
        {
            label: [100 * rows[q][label] for q in QUANTA]
            for label in _POLICIES
        },
        x_labels=[f"{q:,}" for q in QUANTA],
        title="shared-cache miss rate (%) vs quantum",
    )
    return f"{table}\n\n{chart}"


SPEC = register(
    ExperimentSpec(
        id="ext-context",
        title=TITLE,
        parameter_name="quantum",
        parameters=QUANTA,
        factories=tuple((curve, SharedCacheFactory(curve)) for curve in _POLICIES),
        traces=TimesharePairs(),
        collect=_collect,
        render=_render,
    )
)


def run() -> dict:
    return run_spec(SPEC)


def reductions() -> "dict[int, float]":
    """Quantum -> mean percent reduction from dynamic exclusion."""
    return {
        quantum: percent_reduction(
            rates["direct-mapped"], rates["dynamic-exclusion"]
        )
        for quantum, rates in run().items()
    }


def report() -> str:
    return _render(run())
