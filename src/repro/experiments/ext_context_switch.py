"""Extension: dynamic exclusion under multiprogramming.

The paper evaluates single programs; a natural question for a real
machine is what context switches do to the exclusion state.  Sticky and
hit-last bits are trained per address, so when two programs share a
cache their conflicting words fight across quanta.  This experiment
timeshares pairs of benchmarks at several quantum lengths and compares
direct-mapped, dynamic exclusion, and optimal replacement on the shared
reference stream.

Expected shape: very short quanta destroy locality for every policy and
shrink exclusion's edge (the FSM retrains each quantum); at realistic
quanta (tens of thousands of references) the single-program improvement
survives almost intact.
"""

from __future__ import annotations

import statistics
from typing import List

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..caches.geometry import CacheGeometry
from ..caches.stats import percent_reduction
from ..trace.transforms import timeshare
from .common import (
    REFERENCE_LINE,
    REFERENCE_SIZE,
    cached_trace,
    direct_mapped,
    dynamic_exclusion,
    max_refs,
    optimal,
)

TITLE = "Extension: dynamic exclusion under timesharing (S=32KB, b=4B)"

#: Benchmark pairs that share the cache (big code + big code, and big
#: code + small kernel).
PAIRS = [("gcc", "spice"), ("li", "doduc"), ("gcc", "tomcatv")]

QUANTA = [100, 1_000, 10_000, 100_000]

_CACHE: "dict[int, dict]" = {}


def run() -> dict:
    key = max_refs()
    if key not in _CACHE:
        geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
        rows: dict = {}
        for quantum in QUANTA:
            dm_rates: List[float] = []
            de_rates: List[float] = []
            opt_rates: List[float] = []
            for left, right in PAIRS:
                shared = timeshare(
                    [cached_trace(left), cached_trace(right)],
                    quantum=quantum,
                    name=f"{left}+{right}",
                )
                dm_rates.append(direct_mapped(geometry).simulate(shared).miss_rate)
                de_rates.append(dynamic_exclusion(geometry).simulate(shared).miss_rate)
                opt_rates.append(optimal(geometry).simulate(shared).miss_rate)
            rows[quantum] = {
                "direct-mapped": statistics.mean(dm_rates),
                "dynamic-exclusion": statistics.mean(de_rates),
                "optimal": statistics.mean(opt_rates),
            }
        _CACHE[key] = rows
    return _CACHE[key]


def reductions() -> "dict[int, float]":
    """Quantum -> mean percent reduction from dynamic exclusion."""
    return {
        quantum: percent_reduction(
            rates["direct-mapped"], rates["dynamic-exclusion"]
        )
        for quantum, rates in run().items()
    }


def report() -> str:
    rows = run()
    table_rows = []
    for quantum, rates in rows.items():
        table_rows.append(
            [
                f"{quantum:,}",
                f"{rates['direct-mapped']:.3%}",
                f"{rates['dynamic-exclusion']:.3%}",
                f"{rates['optimal']:.3%}",
                f"{percent_reduction(rates['direct-mapped'], rates['dynamic-exclusion']):.1f}%",
            ]
        )
    table = format_table(
        ["quantum (refs)", "direct-mapped", "dynamic-exclusion", "optimal",
         "DE reduction"],
        table_rows,
        title=TITLE,
    )
    chart = ascii_chart(
        {
            label: [100 * rows[q][label] for q in QUANTA]
            for label in ["direct-mapped", "dynamic-exclusion", "optimal"]
        },
        x_labels=[f"{q:,}" for q in QUANTA],
        title="shared-cache miss rate (%) vs quantum",
    )
    return f"{table}\n\n{chart}"
