"""Extension: how many hashed hit-last bits are enough?

The paper asserts (from the Figure 7 argument) that "the hashing
strategy needs only four hit-last bits for each cache line to get good
performance".  This experiment sweeps the hashed table size from 1/2 a
bit to 16 bits per L1 line and compares against the ideal per-word
store, quantifying the claim directly.

Observed result: on the synthetic SPEC mix the measured requirement is
even weaker than the paper's — the FSM is self-correcting enough that
two conflicting words *sharing* one untagged bit still converge to the
same exclusion decision, so even half a bit per line matches the ideal
store.  Collisions only cost misses when an unrelated cold word clears
a hot word's bit at exactly the moment the hot word needs it, which is
rare at every table size swept here.

The sweep parameter here is the *configuration itself* — the string
``"direct-mapped"``, a bits-per-line number, or ``"ideal"`` — showing
that grid parameters need not be numeric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.plot import ascii_chart
from ..analysis.report import format_table
from ..caches.geometry import CacheGeometry
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import HashedHitLastStore, IdealHitLastStore
from .common import REFERENCE_LINE, REFERENCE_SIZE, direct_mapped
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Extension: hashed hit-last table size (S=32KB, b=4B)"

#: Bits per L1 line (0.5 means one bit per two lines).
BITS_PER_LINE = [0.5, 1, 2, 4, 8, 16]

_PARAMETERS = tuple(["direct-mapped"] + BITS_PER_LINE + ["ideal"])


@dataclass(frozen=True)
class HashedBitsFactory:
    """Build the configuration named by the sweep parameter."""

    size: int = REFERENCE_SIZE
    line_size: int = REFERENCE_LINE

    def __call__(self, config: object):
        geometry = CacheGeometry(self.size, self.line_size)
        if config == "direct-mapped":
            return direct_mapped(geometry)
        if config == "ideal":
            return DynamicExclusionCache(
                geometry, store=IdealHitLastStore(default=True)
            )
        num_bits = int(geometry.num_lines * float(config))  # type: ignore[arg-type]
        return DynamicExclusionCache(geometry, store=HashedHitLastStore(num_bits))


def _collect(grid: GridResult) -> "Dict[object, float]":
    return {
        parameter: grid.mean("hashed-bits", parameter)
        for parameter in grid.parameters
    }


def _render(rates: "Dict[object, float]") -> str:
    rows: List[List[object]] = []
    for key in ["direct-mapped"] + BITS_PER_LINE + ["ideal"]:
        label = key if isinstance(key, str) else f"hashed {key} bits/line"
        rows.append([label, f"{100 * rates[key]:.3f}%"])
    table = format_table(["configuration", "mean miss rate"], rows, title=TITLE)
    chart = ascii_chart(
        {"hashed": [100 * rates[b] for b in BITS_PER_LINE]},
        x_labels=[str(b) for b in BITS_PER_LINE],
        title="miss rate (%) vs hashed bits per line "
              f"(ideal = {100 * rates['ideal']:.3f}%)",
        height=12,
    )
    verdict = (
        "\n4 bits/line is within 2% of the ideal store: "
        f"{four_bits_close_to_ideal()}"
    )
    return f"{table}\n\n{chart}{verdict}"


SPEC = register(
    ExperimentSpec(
        id="ext-hashed",
        title=TITLE,
        parameter_name="configuration",
        parameters=_PARAMETERS,
        factories=(("hashed-bits", HashedBitsFactory()),),
        traces=BenchmarkSuite("instruction"),
        collect=_collect,
        render=_render,
    )
)


def run() -> "Dict[object, float]":
    return run_spec(SPEC)


def four_bits_close_to_ideal(tolerance: float = 0.02) -> bool:
    """The paper's claim: 4 bits/line within ``tolerance`` (relative)
    of the ideal store."""
    rates = run()
    ideal = rates["ideal"]
    if ideal == 0:
        return True
    return abs(rates[4] - ideal) / ideal <= tolerance


def report() -> str:
    return _render(run())
