"""Section 3: the analytic conflict patterns, simulated.

Regenerates the paper's worked miss-rate numbers for the three common
reference patterns (plus the three-way pathological case), comparing the
simulators against the closed-form counts in
:mod:`repro.workloads.patterns`.  Registered as a *custom* spec: the
traces are tiny analytic sequences and the results are exact integer
counts, so there is no grid to fan out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.optimal import OptimalDirectMappedCache
from ..core.exclusion_cache import DynamicExclusionCache
from ..workloads import patterns
from .common import REFERENCE_LINE, REFERENCE_SIZE
from .spec import ExperimentSpec, register, run_spec

TITLE = "Section 3: miss rates on the common reference patterns"


@dataclass(frozen=True)
class PatternRow:
    name: str
    refs: int
    dm_misses: int
    dm_expected: int
    de_misses: int
    opt_misses: int
    opt_expected: int


def _compute() -> List[PatternRow]:
    geometry = CacheGeometry(REFERENCE_SIZE, REFERENCE_LINE)
    cases = [
        ("between loops (a^10 b^10)^10", patterns.between_loops(geometry),
         patterns.between_loops_misses_dm(), patterns.between_loops_misses_optimal()),
        ("loop level (a^10 b)^10", patterns.loop_level(geometry),
         patterns.loop_level_misses_dm(), patterns.loop_level_misses_optimal()),
        ("within loop (a b)^10", patterns.within_loop(geometry),
         patterns.within_loop_misses_dm(), patterns.within_loop_misses_optimal()),
        ("three-way (a b c)^10", patterns.three_way(geometry),
         patterns.three_way_misses_dm(), patterns.three_way_misses_optimal()),
    ]
    rows: List[PatternRow] = []
    for name, trace, dm_expected, opt_expected in cases:
        dm = DirectMappedCache(geometry).simulate(trace)
        de = DynamicExclusionCache(geometry).simulate(trace)
        opt = OptimalDirectMappedCache(geometry).simulate(trace)
        rows.append(
            PatternRow(
                name=name,
                refs=len(trace),
                dm_misses=dm.misses,
                dm_expected=dm_expected,
                de_misses=de.misses,
                opt_misses=opt.misses,
                opt_expected=opt_expected,
            )
        )
    return rows


def _render(rows: List[PatternRow]) -> str:
    table_rows: List[List[object]] = []
    for row in rows:
        table_rows.append(
            [
                row.name,
                row.refs,
                f"{row.dm_misses} (paper {row.dm_expected})",
                f"{row.de_misses}",
                f"{row.opt_misses} (paper {row.opt_expected})",
                f"{100 * row.dm_misses / row.refs:.0f}%",
                f"{100 * row.de_misses / row.refs:.0f}%",
                f"{100 * row.opt_misses / row.refs:.0f}%",
            ]
        )
    return format_table(
        ["pattern", "refs", "DM misses", "DE misses", "OPT misses",
         "m_DM", "m_DE", "m_OPT"],
        table_rows,
        title=TITLE,
    )


SPEC = register(
    ExperimentSpec(id="sec3", title=TITLE, compute=_compute, render=_render)
)


def run() -> List[PatternRow]:
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
