"""Figure 5: percentage miss-rate reduction vs cache size (b=4B).

Derived from Figure 4: how much dynamic exclusion and optimal
replacement improve on the conventional direct-mapped cache at each
size.  The paper's headline — the improvement *peaks* at a middle cache
size (37 % at 32 KB on 10 M-reference traces) and declines toward both
extremes — is the shape to check.
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from ..caches.stats import percent_reduction
from .spec import ExperimentSpec, register, run_spec

TITLE = "Figure 5: miss-rate reduction over direct-mapped vs cache size (b=4B)"


def percent_reduction_curves(base: SweepResult) -> SweepResult:
    """DE and optimal improvement over direct-mapped, per parameter.

    The derive transform behind Figures 5 and 12: shared so both
    reductions are computed the same way from their base sweeps.
    """
    result = SweepResult(
        parameter_name=base.parameter_name, parameters=list(base.parameters)
    )
    for size in base.parameters:
        dm = base.series["direct-mapped"].points[size]
        for label in ["dynamic-exclusion", "optimal"]:
            improved = base.series[label].points[size]
            result.add(label, size, percent_reduction(dm, improved))
    return result


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.1f}%")
    chart = sweep_chart(result, title="reduction over direct-mapped (%)", percent=False)
    size, value = peak()
    summary = (
        f"\ndynamic exclusion peaks at {value:.1f}% reduction "
        f"({size // 1024}KB cache); the paper reports a 37% peak at 32KB "
        f"on 10M-reference traces."
    )
    return f"{table}\n\n{chart}{summary}"


SPEC = register(
    ExperimentSpec(
        id="fig05",
        title=TITLE,
        base=("fig04",),
        derive=percent_reduction_curves,
        render=_render,
    )
)


def run() -> SweepResult:
    """Percent reduction curves for dynamic exclusion and optimal."""
    return run_spec(SPEC)


def peak() -> "tuple[int, float]":
    """(cache size, percent) where dynamic exclusion's reduction peaks."""
    result = run()
    series = result.series["dynamic-exclusion"]
    best_size = max(result.parameters, key=lambda s: series.points[s])
    return int(best_size), series.points[best_size]


def report() -> str:
    return _render(run())
