"""The experiment harness: one declarative spec per paper figure/table.

Every module defines an :class:`~repro.experiments.spec.ExperimentSpec`
and registers it on import; this package imports them all, so::

    from repro.experiments import all_specs, run_spec

gives the full registry.  Run everything with
``python -m repro.experiments``, list the registry with
``python -m repro.experiments --list``, or run a single figure with
``python -m repro.experiments --only fig05``.
"""

from typing import Dict

from .spec import (
    ExperimentSpec,
    all_specs,
    collect_result,
    fingerprint_digest,
    get_spec,
    grid_cells,
    grid_from_outcomes,
    register,
    render_spec,
    run_spec,
)
from . import (
    ext_associativity,
    ext_context_switch,
    ext_hashed_bits,
    ext_split,
    ext_traffic,
    ext_warmup,
    fig02_benchmarks,
    fig03_per_benchmark,
    fig04_cache_size,
    fig05_improvement,
    fig07_l1_vs_l2,
    fig08_l2_missrate,
    fig09_l1_improvement,
    fig11_line_size,
    fig12_improvement_b16,
    fig13_efficiency,
    fig14_data_cache,
    fig15_mixed_cache,
    hierarchy_sweep,
    sec3_patterns,
)

#: Experiment id -> module with TITLE / run() / report().  Kept for
#: callers that want the module namespace; the spec registry
#: (:func:`all_specs`) is the canonical enumeration.
EXPERIMENTS: Dict[str, object] = {
    "sec3": sec3_patterns,
    "fig02": fig02_benchmarks,
    "fig03": fig03_per_benchmark,
    "fig04": fig04_cache_size,
    "fig05": fig05_improvement,
    "fig07": fig07_l1_vs_l2,
    "fig08": fig08_l2_missrate,
    "fig09": fig09_l1_improvement,
    "fig11": fig11_line_size,
    "fig12": fig12_improvement_b16,
    "fig13": fig13_efficiency,
    "fig14": fig14_data_cache,
    "fig15": fig15_mixed_cache,
    "ext-assoc": ext_associativity,
    "ext-split": ext_split,
    "ext-context": ext_context_switch,
    "ext-hashed": ext_hashed_bits,
    "ext-traffic": ext_traffic,
    "ext-warmup": ext_warmup,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "all_specs",
    "collect_result",
    "fingerprint_digest",
    "get_spec",
    "grid_cells",
    "grid_from_outcomes",
    "register",
    "render_spec",
    "run_spec",
]
