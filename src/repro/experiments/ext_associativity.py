"""Extension: dynamic exclusion vs associativity and victim caches.

Not a numbered figure, but the comparison the paper's Sections 1-2
argue from: set-associative caches have lower miss rates but higher hit
times (Hill '87, Przybylski '88), and victim caches fix only small
conflict sets.  This experiment sweeps cache sizes for a direct-mapped
cache, 2-way and 4-way LRU, a 4-entry victim cache, and dynamic
exclusion — the miss-rate side of the trade-off — and then applies the
AMAT model from :mod:`repro.analysis.timing` at the reference size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep, format_table
from ..analysis.sweep import SweepResult
from ..analysis.timing import TimingModel, amat_comparison
from ..caches.direct_mapped import DirectMappedCache
from ..caches.geometry import CacheGeometry
from ..caches.set_associative import SetAssociativeCache
from ..caches.victim import VictimCache
from ..core.exclusion_cache import DynamicExclusionCache
from ..core.hitlast import IdealHitLastStore
from ..core.set_assoc_exclusion import SetAssociativeExclusionCache
from .common import REFERENCE_SIZE, SIZE_SWEEP_KB
from .spec import BenchmarkSuite, ExperimentSpec, register, run_spec

TITLE = "Extension: dynamic exclusion vs associativity (b=4B)"

#: Hit times (cycles): the way-selection mux penalty grows with ways.
TIMING_MODELS: Dict[str, TimingModel] = {
    "direct-mapped": TimingModel(1.0, 20.0),
    "dynamic-exclusion": TimingModel(1.0, 20.0),
    "victim-4": TimingModel(1.0, 20.0),
    "2-way": TimingModel(1.4, 20.0),
    "2-way+DE": TimingModel(1.4, 20.0),
    "4-way": TimingModel(1.5, 20.0),
}

_LABELS = [
    "direct-mapped",
    "dynamic-exclusion",
    "victim-4",
    "2-way",
    "2-way+DE",
    "4-way",
]


@dataclass(frozen=True)
class AssocFactory:
    """Picklable size-sweep factory for one comparison curve.

    A frozen dataclass (unlike the plain class it replaced) so its
    repr is address-free: the cells now journal under ``--resume-dir``
    like every other sweep.
    """

    label: str

    def __call__(self, size: object):
        geometry = CacheGeometry(int(size), 4)  # type: ignore[call-overload]
        if self.label == "direct-mapped":
            return DirectMappedCache(geometry)
        if self.label == "dynamic-exclusion":
            return DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True))
        if self.label == "victim-4":
            return VictimCache(geometry, entries=4)
        if self.label == "2-way":
            return SetAssociativeCache(
                CacheGeometry(int(size), 4, associativity=2)  # type: ignore[call-overload]
            )
        if self.label == "2-way+DE":
            return SetAssociativeExclusionCache(
                CacheGeometry(int(size), 4, associativity=2),  # type: ignore[call-overload]
                store=IdealHitLastStore(default=True),
            )
        if self.label == "4-way":
            return SetAssociativeCache(
                CacheGeometry(int(size), 4, associativity=4)  # type: ignore[call-overload]
            )
        raise ValueError(f"unknown curve {self.label!r}")


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="miss rate (%)")
    amats = amat_at_reference()
    amat_rows = [
        [label, f"{TIMING_MODELS[label].hit_time:.1f}", f"{amats[label]:.3f}"]
        for label in sorted(amats, key=amats.get)
    ]
    amat_table = format_table(
        ["configuration", "hit time (cy)", "AMAT (cy)"],
        amat_rows,
        title="AMAT at 32KB (miss penalty 20 cycles; best first)",
    )
    return f"{table}\n\n{chart}\n\n{amat_table}"


SPEC = register(
    ExperimentSpec(
        id="ext-assoc",
        title=TITLE,
        parameter_name="cache size",
        parameters=tuple(kb * 1024 for kb in SIZE_SWEEP_KB),
        factories=tuple((label, AssocFactory(label)) for label in _LABELS),
        traces=BenchmarkSuite("instruction"),
        render=_render,
    )
)


def run() -> SweepResult:
    return run_spec(SPEC)


def amat_at_reference() -> Dict[str, float]:
    """AMAT of every configuration at the 32KB reference point."""
    result = run()
    miss_rates = {
        label: result.series[label].points[REFERENCE_SIZE]
        for label in result.series
    }
    return amat_comparison(miss_rates, TIMING_MODELS)


def report() -> str:
    return _render(run())
