"""Figure 4: mean instruction-cache miss rate vs cache size (b=4B).

Sweeps the three policies over the standard size grid, averaging miss
rates across the SPEC benchmarks (as the paper does).
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult, run_sweep
from .common import (
    REFERENCE_LINE,
    SIZE_SWEEP_KB,
    all_trace_keys,
    max_refs,
    standard_factories,
)

TITLE = "Figure 4: instruction cache miss rate vs cache size (b=4B)"

_CACHE: "dict[tuple, SweepResult]" = {}


def run(line_size: int = REFERENCE_LINE, kind: str = "instruction") -> SweepResult:
    """The three curves over the size grid (memoised per process)."""
    key = (line_size, kind, max_refs())
    if key not in _CACHE:
        # Trace *keys*, not arrays: under --workers the sweep cells are
        # shipped to a process pool and each worker regenerates (and
        # memoises) the benchmark traces locally.
        _CACHE[key] = run_sweep(
            parameter_name="cache size",
            parameters=[kb * 1024 for kb in SIZE_SWEEP_KB],
            factories=standard_factories(line_size),
            traces=all_trace_keys(kind),
        )
    return _CACHE[key]


def report() -> str:
    result = run()
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="miss rate (%)")
    return f"{table}\n\n{chart}"
