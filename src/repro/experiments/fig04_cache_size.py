"""Figure 4: mean instruction-cache miss rate vs cache size (b=4B).

Sweeps the three policies over the standard size grid, averaging miss
rates across the SPEC benchmarks (as the paper does).  The module also
owns :func:`size_sweep_spec`, the grid-spec builder behind every
standard size sweep (Figures 4, 12's base, 14, 15).
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from .common import REFERENCE_LINE, SIZE_SWEEP_KB, standard_factories
from .spec import BenchmarkSuite, ExperimentSpec, register, run_spec

TITLE = "Figure 4: instruction cache miss rate vs cache size (b=4B)"


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="miss rate (%)")
    return f"{table}\n\n{chart}"


def size_sweep_spec(
    spec_id: str,
    title: str,
    line_size: int = REFERENCE_LINE,
    kind: str = "instruction",
    render=None,
    hidden: bool = False,
) -> ExperimentSpec:
    """The standard three-curve size sweep as a grid spec.

    Specs built here with the same ``line_size``/``kind`` share a
    result-cache fingerprint regardless of id, so ad-hoc calls like
    ``run(kind="data")`` reuse the registered Figure 14 sweep.
    """
    return ExperimentSpec(
        id=spec_id,
        title=title,
        parameter_name="cache size",
        parameters=tuple(kb * 1024 for kb in SIZE_SWEEP_KB),
        factories=tuple(standard_factories(line_size).items()),
        traces=BenchmarkSuite(kind),
        render=render,
        hidden=hidden,
    )


SPEC = register(size_sweep_spec("fig04", TITLE, render=_render))

#: The same grid at b=16B — the base sweep Figure 12 derives from.
SPEC_B16 = register(
    size_sweep_spec(
        "fig04-b16",
        "Figure 4 size sweep at b=16B (base for Figure 12)",
        line_size=16,
        render=_render,
        hidden=True,
    )
)


def run(line_size: int = REFERENCE_LINE, kind: str = "instruction") -> SweepResult:
    """The three curves over the size grid (memoised by the spec cache)."""
    if line_size == REFERENCE_LINE and kind == "instruction":
        return run_spec(SPEC)
    if line_size == 16 and kind == "instruction":
        return run_spec(SPEC_B16)
    return run_spec(
        size_sweep_spec(
            f"fig04[b{line_size},{kind}]",
            f"{TITLE} [b={line_size}B, {kind}]",
            line_size=line_size,
            kind=kind,
            hidden=True,
        )
    )


def report() -> str:
    return _render(run())
