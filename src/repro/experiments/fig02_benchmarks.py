"""Figure 2: the SPEC benchmark roster (plus trace characteristics).

The paper's Figure 2 is just the name/description table; we extend it
with the synthetic traces' measured properties so the substitution
documented in DESIGN.md is auditable.  As a grid spec the per-benchmark
summaries journal like any sweep cell: the one parameter is the
footprint granule, the trace axis is the mixed benchmark suite, and a
custom evaluator returns the summary's counters as metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import format_table, size_label
from ..trace.stats import TraceSummary, summarize
from ..trace.trace import Trace
from ..workloads.registry import describe
from .spec import BenchmarkSuite, ExperimentSpec, GridResult, register, run_spec

TITLE = "Figure 2: SPEC benchmarks used for evaluation"

#: Bytes per distinct address when converting counts to footprints.
GRANULE = 4

_SUMMARY_FIELDS = (
    "length",
    "instruction_refs",
    "load_refs",
    "store_refs",
    "footprint_bytes",
    "instruction_footprint_bytes",
    "data_footprint_bytes",
)


@dataclass(frozen=True)
class GranuleProbe:
    """The 'model' of a summary cell is just the footprint granule."""

    def __call__(self, granule: object) -> int:
        return int(granule)  # type: ignore[call-overload]


@dataclass(frozen=True)
class SummarizeEvaluator:
    """Trace characterisation as cell metrics (all counters are ints)."""

    def __call__(self, granule: int, trace: Trace, engine: str) -> Dict[str, float]:
        summary = summarize(trace, granule=granule)
        return {name: float(getattr(summary, name)) for name in _SUMMARY_FIELDS}


def _collect(grid: GridResult) -> "Dict[str, TraceSummary]":
    granule = grid.parameters[0]
    names = grid.trace_names(granule)
    summaries: "Dict[str, TraceSummary]" = {}
    for name, metrics in zip(names, grid.cell_metrics("summary", granule)):
        summaries[name] = TraceSummary(
            name=name, **{field: int(metrics[field]) for field in _SUMMARY_FIELDS}
        )
    return summaries


def _render(summaries: "Dict[str, TraceSummary]") -> str:
    rows: List[List[object]] = []
    for name, summary in summaries.items():
        data_share = (
            100.0 * summary.data_refs / summary.length if summary.length else 0.0
        )
        rows.append(
            [
                name,
                describe(name),
                summary.length,
                size_label(summary.instruction_footprint_bytes),
                size_label(summary.data_footprint_bytes),
                f"{data_share:.1f}%",
            ]
        )
    return format_table(
        ["benchmark", "description", "refs", "I-footprint", "D-footprint", "data refs"],
        rows,
        title=TITLE,
    )


SPEC = register(
    ExperimentSpec(
        id="fig02",
        title=TITLE,
        parameter_name="granule",
        parameters=(GRANULE,),
        factories=(("summary", GranuleProbe()),),
        traces=BenchmarkSuite("mixed"),
        evaluator=SummarizeEvaluator(),
        collect=_collect,
        render=_render,
    )
)


def run() -> "Dict[str, TraceSummary]":
    """Per-benchmark summaries of the mixed traces."""
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
