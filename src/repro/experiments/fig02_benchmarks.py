"""Figure 2: the SPEC benchmark roster (plus trace characteristics).

The paper's Figure 2 is just the name/description table; we extend it
with the synthetic traces' measured properties so the substitution
documented in DESIGN.md is auditable.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import format_table, size_label
from ..trace.stats import TraceSummary, summarize
from ..workloads.registry import benchmark_names, describe
from .common import cached_trace

TITLE = "Figure 2: SPEC benchmarks used for evaluation"


def run() -> "Dict[str, TraceSummary]":
    """Per-benchmark summaries of the mixed traces."""
    summaries: "Dict[str, TraceSummary]" = {}
    for name in benchmark_names():
        summaries[name] = summarize(cached_trace(name, "mixed"))
    return summaries


def report() -> str:
    summaries = run()
    rows: List[List[object]] = []
    for name, summary in summaries.items():
        data_share = (
            100.0 * summary.data_refs / summary.length if summary.length else 0.0
        )
        rows.append(
            [
                name,
                describe(name),
                summary.length,
                size_label(summary.instruction_footprint_bytes),
                size_label(summary.data_footprint_bytes),
                f"{data_share:.1f}%",
            ]
        )
    return format_table(
        ["benchmark", "description", "refs", "I-footprint", "D-footprint", "data refs"],
        rows,
        title=TITLE,
    )
