"""Figure 14: dynamic exclusion on data caches vs cache size (b=4B).

Paper expectations: data reference patterns differ from instruction
patterns, a direct-mapped cache is already much closer to optimal for
data, and dynamic exclusion gives only a small improvement at small
sizes (and can be slightly worse at large ones).
"""

from __future__ import annotations

from ..analysis.plot import sweep_chart
from ..analysis.report import format_sweep
from ..analysis.sweep import SweepResult
from .fig04_cache_size import size_sweep_spec
from .spec import register, run_spec

TITLE = "Figure 14: data cache dynamic exclusion performance (b=4B)"


def _render(result: SweepResult) -> str:
    table = format_sweep(result, title=TITLE, value_format="{:.3%}")
    chart = sweep_chart(result, title="data cache miss rate (%)")
    return f"{table}\n\n{chart}"


SPEC = register(size_sweep_spec("fig14", TITLE, kind="data", render=_render))


def run() -> SweepResult:
    return run_spec(SPEC)


def report() -> str:
    return _render(run())
