"""Capture golden experiment outputs for the spec-pipeline parity gate.

Run from the repository root at the parity scale::

    REPRO_TRACE_SCALE=0.05 PYTHONPATH=src:tests python tools/generate_parity_goldens.py

Writes one ``tests/experiments/golden/<id>.json`` per experiment (the
serialized ``run()`` output) plus ``pr3_journal_fig04.jsonl``, a sweep
journal written through the runner so resume-format compatibility is
pinned against real journal bytes.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from experiments.parity_format import to_jsonable  # noqa: E402

from repro import perf  # noqa: E402
from repro.experiments import EXPERIMENTS  # noqa: E402
from repro.perf.journal import JOURNAL_FILENAME  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "experiments" / "golden"

#: The scale every golden (and the parity test) uses.
PARITY_SCALE = "0.05"


def main() -> int:
    if os.environ.get("REPRO_TRACE_SCALE") != PARITY_SCALE:
        raise SystemExit(f"run with REPRO_TRACE_SCALE={PARITY_SCALE}")
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for key, module in EXPERIMENTS.items():
        print(f"capturing {key} ...", flush=True)
        payload = {
            "kind": "experiment-golden",
            "version": 1,
            "experiment": key,
            "trace_scale": float(PARITY_SCALE),
            "result": to_jsonable(module.run()),
        }
        path = GOLDEN_DIR / f"{key}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"  wrote {path}")

    # Journal fixture: run the fig04 grid through the journaling sweep
    # runner so the on-disk cell keys/format are pinned exactly.
    from repro.experiments import fig04_cache_size
    from repro.experiments.spec import clear_result_cache

    with tempfile.TemporaryDirectory() as tmp:
        perf.set_default_journal_dir(tmp)
        clear_result_cache()  # the memoised result would skip the sweep
        fig04_cache_size.run()
        perf.set_default_journal_dir(None)
        shutil.copy(Path(tmp) / JOURNAL_FILENAME, GOLDEN_DIR / "pr3_journal_fig04.jsonl")
    print(f"  wrote {GOLDEN_DIR / 'pr3_journal_fig04.jsonl'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
