"""CI smoke gate for the result-store daemon (``repro serve``).

Usage::

    python tools/check_serve_smoke.py [--spec fig04] [--store DIR]

Boots a :class:`~repro.serve.ResultServer` in-process on an ephemeral
port over a fresh store and drives the full cold/warm economics through
the HTTP client:

1. **cold run** — the store is empty, so the plan must mark every cell
   pending and the run must compute all of them;
2. **warm run** — the identical request again: the plan must mark zero
   cells pending, stream no cell events (structurally zero
   simulations), and return byte-identical metrics, result, and report;
3. **manifests** — both runs must leave a parseable run manifest under
   ``<store>/runs/<run_id>/`` whose cached/computed counts match the
   streams;
4. **store lookups** — every cell key from the run must answer on
   ``GET /cell/<key>`` with the same metrics the run reported;
5. **conditional GET** — repeating ``GET /spec`` with the server's own
   ``ETag`` in ``If-None-Match`` must answer ``304 Not Modified`` with
   an empty body;
6. **compact then query** — after ``store.compact()`` the same run must
   still answer entirely from the index (zero cell events,
   byte-identical output) and ``/healthz`` must report the new
   generation;
7. **metrics scrape** — ``GET /metrics?format=prometheus`` must answer
   with the Prometheus content type and a body in which every line
   parses, the ``serve_request_seconds`` bucket counts are cumulative
   (monotone within each series), and the ``fsm_*`` mechanism counters
   published by the cold run are present and positive.

Exits non-zero with a named complaint on the first violation, so a CI
failure reads as "warm run recomputed 3 cells", not as a stack trace.
"""

import argparse
import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.manifest import read_manifest  # noqa: E402  (path bootstrap)
from repro.obs.promtext import (  # noqa: E402
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
)
from repro.serve import ResultServer, ServeClient  # noqa: E402
from repro.store import open_store  # noqa: E402


def _canonical_cells(done: dict) -> str:
    return json.dumps([c["metrics"] for c in done["cells"]], sort_keys=True)


def check(spec: str, store_dir: Path) -> int:
    failures = []

    store = open_store(store_dir)
    with ResultServer(store, port=0) as server:
        client = ServeClient(server.url)

        health = client.healthz()
        if not health.get("ok"):
            failures.append(f"healthz not ok: {health}")
        if spec not in {s["id"] for s in client.specs()}:
            failures.append(f"spec {spec!r} missing from GET /specs")

        cold_events = []
        cold = client.run(spec, on_event=cold_events.append)
        cold_plan = cold_events[0]
        if cold_plan["pending"] != cold_plan["cells"]:
            failures.append(
                f"cold plan expected every cell pending, got "
                f"{cold_plan['pending']}/{cold_plan['cells']}"
            )
        if cold["manifest"]["cells_computed"] != cold_plan["cells"]:
            failures.append(
                f"cold run computed {cold['manifest']['cells_computed']} "
                f"of {cold_plan['cells']} cells"
            )

        warm_events = []
        warm = client.run(spec, on_event=warm_events.append)
        warm_plan = warm_events[0]
        if warm_plan["pending"] != 0:
            failures.append(f"warm plan still pending {warm_plan['pending']} cells")
        cell_events = [e for e in warm_events if e.get("event") == "cell"]
        if cell_events:
            failures.append(
                f"warm run streamed {len(cell_events)} cell events "
                f"(expected zero simulations)"
            )
        if warm["manifest"]["cells_computed"] != 0:
            failures.append(
                f"warm run recomputed {warm['manifest']['cells_computed']} cells"
            )

        if _canonical_cells(cold) != _canonical_cells(warm):
            failures.append("warm cell metrics differ from cold")
        if cold["result"] != warm["result"]:
            failures.append("warm collected result differs from cold")
        if cold["report"] != warm["report"]:
            failures.append("warm rendered report differs from cold")

        for done, label in ((cold, "cold"), (warm, "warm")):
            manifest = read_manifest(store_dir / "runs" / done["run_id"])
            if manifest is None:
                failures.append(f"{label} run manifest missing/corrupt")
            elif manifest.get("spec") != spec:
                failures.append(
                    f"{label} manifest names spec {manifest.get('spec')!r}"
                )

        for cell in cold["cells"][:10]:
            fetched = client.cell(cell["key"])
            if fetched["metrics"] != cell["metrics"]:
                failures.append(f"GET /cell/{cell['key'][:12]}… metrics mismatch")
                break

        # conditional GET: the server's own ETag must answer 304
        spec_url = f"{server.url}/spec/{spec}"
        with urllib.request.urlopen(spec_url) as response:
            etag = response.headers.get("ETag")
        if not etag:
            failures.append("GET /spec sent no ETag header")
        else:
            request = urllib.request.Request(
                spec_url, headers={"If-None-Match": etag}
            )
            try:
                response = urllib.request.urlopen(request)
                status = response.status
            except urllib.error.HTTPError as exc:  # urllib flags 304 as error
                response = exc
                status = exc.code
            if status != 304:
                failures.append(
                    f"conditional GET /spec answered {status}, expected 304"
                )
            elif response.read() != b"":
                failures.append("304 response carried a body")

        # compact, then the same query must still answer from the index
        compaction = store.compact()
        if compaction.entries != len(store):
            failures.append(
                f"compact snapshot holds {compaction.entries} entries, "
                f"store holds {len(store)}"
            )
        post_events = []
        post = client.run(spec, on_event=post_events.append)
        post_cells = [e for e in post_events if e.get("event") == "cell"]
        if post_cells:
            failures.append(
                f"post-compact run streamed {len(post_cells)} cell events "
                f"(expected zero simulations)"
            )
        if post["manifest"]["cells_computed"] != 0:
            failures.append(
                f"post-compact run recomputed "
                f"{post['manifest']['cells_computed']} cells"
            )
        if _canonical_cells(cold) != _canonical_cells(post):
            failures.append("post-compact cell metrics differ from cold")
        if cold["result"] != post["result"]:
            failures.append("post-compact result differs from cold")
        generation = client.healthz().get("generation")
        if generation != compaction.generation:
            failures.append(
                f"healthz reports generation {generation}, compaction "
                f"returned {compaction.generation}"
            )

        # Prometheus scrape: every line must parse, request-latency
        # buckets must be cumulative, and the cold run must have left
        # fsm_* mechanism counters behind.
        with urllib.request.urlopen(
            f"{server.url}/metrics?format=prometheus"
        ) as response:
            content_type = response.headers.get("Content-Type")
            exposition = response.read().decode("utf-8")
        if content_type != PROMETHEUS_CONTENT_TYPE:
            failures.append(
                f"/metrics?format=prometheus answered with content type "
                f"{content_type!r}, expected {PROMETHEUS_CONTENT_TYPE!r}"
            )
        try:
            samples = parse_prometheus(exposition)
        except ValueError as exc:
            failures.append(f"prometheus exposition failed to parse: {exc}")
            samples = []
        if samples:
            buckets = {}
            for sample in samples:
                if sample.name != "serve_request_seconds_bucket":
                    continue
                series = tuple(sorted(
                    (k, v) for k, v in sample.labels.items() if k != "le"
                ))
                buckets.setdefault(series, []).append(sample.value)
            if not buckets:
                failures.append("no serve_request_seconds_bucket samples "
                                "in the scrape")
            for series, values in buckets.items():
                if values != sorted(values):
                    failures.append(
                        f"serve_request_seconds buckets not cumulative "
                        f"for {dict(series)}"
                    )
            fsm = [s for s in samples if s.name.startswith("fsm_")]
            if not fsm:
                failures.append(
                    "no fsm_* counters in the scrape after a cold run"
                )
            elif not any(s.value > 0 for s in fsm):
                failures.append("fsm_* counters all zero after a cold run")

    if failures:
        for failure in failures:
            print(f"FAIL [{spec}]: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: served {spec} cold ({cold['manifest']['cells_computed']} computed) "
        f"then warm (0 computed, byte-identical), 304 on conditional GET, "
        f"warm again after compaction to generation "
        f"{compaction.generation}, and scraped {len(samples)} prometheus "
        f"samples at {server.url}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="fig04", help="spec id to serve")
    parser.add_argument(
        "--store", type=Path, default=None,
        help="store directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    store_dir = args.store or Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    return check(args.spec, store_dir)


if __name__ == "__main__":
    sys.exit(main())
