"""CI gate for benchmark throughput regressions.

Usage::

    python tools/check_bench_regression.py <current-dir> \
        [--baseline benchmarks/results] [--tolerance 0.2] [--all-metrics] \
        [--require NAME ...]

Compares every ``*.json`` bench artefact in ``<current-dir>`` against
the committed baseline of the same name and fails (exit 1) when a gated
metric drops more than ``--tolerance`` (default 20%) below baseline.

Each artefact names its own gated metrics in its ``gate`` list —
by convention the machine-independent speedup ratios, because absolute
refs/sec track the host's clock speed and would make the gate flaky
across runners.  ``--all-metrics`` widens the comparison to every
numeric metric (useful when baseline and current come from the same
machine).  Baselines with no matching current artefact are reported but
not fatal (the bench may not have run in this job); current artefacts
with no baseline pass with a notice so new benches don't need a
two-step landing.

``--require NAME`` (repeatable; the artefact stem, e.g.
``bench_serve_etag``) turns an absent artefact into a hard failure —
without it, a bench leg that silently stops producing its artefact
would retire its own gate.  CI requires every serving-tier ratio
(warm/cold, compaction load, negative cache, ETag 304) this way.
"""

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL [{path}]: unreadable bench artefact ({exc})",
              file=sys.stderr)
        return None


def compare(baseline_path: Path, current_path: Path, tolerance: float,
            all_metrics: bool) -> "list[str]":
    baseline = _load(baseline_path)
    current = _load(current_path)
    if baseline is None or current is None:
        return [f"{current_path.name}: unreadable artefact"]
    gated = (
        sorted(k for k, v in baseline.get("metrics", {}).items()
               if isinstance(v, (int, float)))
        if all_metrics else baseline.get("gate", [])
    )
    failures = []
    for metric in gated:
        base = baseline.get("metrics", {}).get(metric)
        now = current.get("metrics", {}).get(metric)
        if not isinstance(base, (int, float)) or base <= 0:
            continue  # nothing meaningful to compare against
        if not isinstance(now, (int, float)):
            failures.append(
                f"{current_path.name}: gated metric {metric!r} missing "
                f"from the current artefact"
            )
            continue
        floor = base * (1.0 - tolerance)
        status = "FAIL" if now < floor else "ok"
        print(
            f"{status:<4} {current_path.stem}.{metric}: "
            f"{now:.3g} vs baseline {base:.3g} "
            f"(floor {floor:.3g}, {now / base - 1.0:+.1%})"
        )
        if now < floor:
            failures.append(
                f"{current_path.name}: {metric} regressed "
                f"{1.0 - now / base:.1%} (> {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="directory of freshly generated *.json artefacts")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "benchmarks" / "results",
                        help="committed baseline directory "
                        "(default: benchmarks/results)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop (default 0.2 = 20%%)")
    parser.add_argument("--all-metrics", action="store_true",
                        help="gate every numeric metric, not just the "
                        "artefact's 'gate' list")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="artefact stem that must be present (and "
                        "gated) in this run; repeatable")
    args = parser.parse_args(argv)

    if not args.current.is_dir():
        print(f"FAIL: {args.current} is not a directory", file=sys.stderr)
        return 1
    baselines = sorted(args.baseline.glob("*.json"))
    if not baselines:
        print(f"FAIL: no baseline *.json under {args.baseline}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for name in args.require:
        stem = name[:-5] if name.endswith(".json") else name
        if not (args.current / f"{stem}.json").exists():
            failures.append(
                f"required artefact {stem}.json was not generated in this run"
            )
        elif not (args.baseline / f"{stem}.json").exists():
            failures.append(
                f"required artefact {stem}.json has no committed baseline"
            )
    for baseline_path in baselines:
        current_path = args.current / baseline_path.name
        if not current_path.exists():
            print(f"skip {baseline_path.name}: not generated in this run")
            continue
        compared += 1
        failures.extend(
            compare(baseline_path, current_path, args.tolerance,
                    args.all_metrics)
        )
    for current_path in sorted(args.current.glob("*.json")):
        if not (args.baseline / current_path.name).exists():
            print(f"note {current_path.name}: new bench, no baseline yet")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if compared == 0:
        print("FAIL: no artefacts compared (nothing matched the baseline)",
              file=sys.stderr)
        return 1
    print(f"OK: {compared} bench artefact(s) within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
