"""CI gate for ``--trace-dir`` run artefacts.

Usage::

    python tools/check_obs_run.py <trace-dir>/<spec-id> [--profile]

Asserts the run directory holds a parseable ``run_manifest.json`` and a
``trace.jsonl`` whose span tree has the expected shape: a single
``experiment`` root whose duration covers at least 95% of the
manifest's wall time, plus the ``run_spec``/``sweep``/``cell``/
``simulate`` phases the taxonomy promises (see DESIGN.md §10).  With
``--profile`` it also requires ``profile.txt``.  Exits non-zero with a
named complaint on the first violation, so a CI failure reads as "no
sweep span in fig05", not as a stack trace.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402  (path bootstrap above)
    PROFILE_FILENAME,
    TRACE_FILENAME,
    read_manifest,
    read_spans,
)

#: Span names every traced figure run must contain.
REQUIRED_SPANS = ("experiment", "run_spec", "sweep", "cell", "simulate")

#: The root span must account for at least this share of manifest wall time.
MIN_WALL_COVERAGE = 0.95


def check(run_dir: Path, profile: bool) -> int:
    failures = []

    manifest = read_manifest(run_dir)
    if manifest is None:
        failures.append(f"no parseable {run_dir / 'run_manifest.json'}")
    else:
        for key in ("spec", "spec_fingerprint", "engine", "wall_seconds",
                    "cpu_seconds", "env"):
            if key not in manifest:
                failures.append(f"manifest is missing {key!r}")

    spans = read_spans(run_dir / TRACE_FILENAME)
    if not spans:
        failures.append(f"no spans in {run_dir / TRACE_FILENAME}")
    else:
        names = {span.name for span in spans}
        for required in REQUIRED_SPANS:
            if required not in names:
                failures.append(f"no {required!r} span in the trace")
        roots = [span for span in spans if span.parent_id is None]
        if len(roots) != 1 or roots[0].name != "experiment":
            failures.append(
                f"expected one 'experiment' root span, got "
                f"{[span.name for span in roots]}"
            )
        elif manifest is not None and manifest.get("wall_seconds"):
            coverage = roots[0].duration / float(manifest["wall_seconds"])
            if coverage < MIN_WALL_COVERAGE:
                failures.append(
                    f"span tree covers {coverage:.1%} of wall time "
                    f"(need >= {MIN_WALL_COVERAGE:.0%})"
                )

    if profile and not (run_dir / PROFILE_FILENAME).exists():
        failures.append(f"no {run_dir / PROFILE_FILENAME}")

    if failures:
        for failure in failures:
            print(f"FAIL [{run_dir}]: {failure}", file=sys.stderr)
        return 1

    root = next(span for span in spans if span.parent_id is None)
    print(
        f"OK [{run_dir}]: spec={manifest['spec']} engine={manifest['engine']} "
        f"{len(spans)} spans, root covers "
        f"{root.duration / float(manifest['wall_seconds']):.1%} of "
        f"{manifest['wall_seconds']}s wall"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run_dir", type=Path,
                        help="one run directory: <trace-dir>/<spec-id>")
    parser.add_argument("--profile", action="store_true",
                        help="also require profile.txt (REPRO_PROFILE=1 runs)")
    args = parser.parse_args(argv)
    if not args.run_dir.is_dir():
        print(f"FAIL: {args.run_dir} is not a directory", file=sys.stderr)
        return 1
    return check(args.run_dir, args.profile)


if __name__ == "__main__":
    sys.exit(main())
