"""CI smoke gate for the fleet execution backend.

Usage::

    python tools/check_fleet_smoke.py [--spec fig05] [--resume-dir DIR]

Drives the experiments CLI the way the fleet backend is meant to be
used — and the way it is meant to fail:

1. **sweep** — runs the spec with ``--backend fleet --workers 2``
   (two local ``repro worker`` subprocesses) and ``--resume-dir``;
2. **kill** — as soon as the journal shows the sweep is executing,
   SIGKILLs the oldest live worker subprocess, mid-sweep;
3. **survive** — the run must still exit 0 with zero failed cells: the
   dead worker is retired, its in-flight cell re-dispatched, and the
   telemetry must name the ``fleet`` backend, attribute cells to
   workers, and (when the kill landed before the last dispatch) count
   at least one pool restart;
4. **merged trace** — the sweep runs under ``--trace-dir``: the single
   merged ``trace.jsonl`` must contain worker-attributed ``simulate`` /
   ``trace_gen`` spans shipped home from at least two distinct worker
   pids, nested under the parent's ``cell`` spans (via the worker's
   ``cell_exec`` bracket), and the shipped spans hanging directly off
   each cell must cover at least 90% of its wall time;
5. **resume** — the identical command again must replay every cell
   from the journal (``cells_cached == cells_total``) and recompute
   nothing.

Exits non-zero with a named complaint on the first violation, so a CI
failure reads as "rerun recomputed 12 cells", not as a stack trace.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs import TRACE_FILENAME, read_spans  # noqa: E402  (path bootstrap)


def _worker_pids(parent_pid: int) -> "list[tuple[int, int]]":
    """Live ``repro.cli worker`` children of ``parent_pid`` as
    ``(starttime, pid)`` pairs (Linux /proc scan)."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        pid = int(entry)
        try:
            cmdline = (Path("/proc") / entry / "cmdline").read_bytes()
            stat = (Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue  # raced with process exit
        argv = cmdline.decode("utf-8", "replace").split("\0")
        if "repro.cli" not in argv or "worker" not in argv:
            continue
        # stat is "pid (comm) state ppid ... starttime ..."; comm may
        # itself contain spaces, so split after the closing paren.
        fields = stat.rsplit(")", 1)[1].split()
        ppid, starttime = int(fields[1]), int(fields[19])
        if ppid == parent_pid:
            found.append((starttime, pid))
    return sorted(found)


def _journal_entries(resume_dir: Path) -> int:
    journal = resume_dir / "journal.jsonl"
    if not journal.exists():
        return 0
    return sum(1 for line in journal.read_text().splitlines() if line.strip())


def _run_and_kill_worker(command, env, resume_dir: Path) -> "tuple[int, bool]":
    """Run the sweep, SIGKILL the oldest fleet worker once it is busy.

    Returns ``(exit_code, killed_mid_sweep)`` — the kill is mid-sweep
    when the journal was still short of its final length, so the dead
    worker provably had work left to lose.
    """
    process = subprocess.Popen(command, env=env)
    killed = False
    entries_at_kill = 0
    while process.poll() is None:
        # The first journal entry proves the fleet is up and executing;
        # the oldest worker has certainly finished its ready handshake.
        if not killed and _journal_entries(resume_dir) >= 1:
            workers = _worker_pids(process.pid)
            if workers:
                _, victim = workers[0]
                entries_at_kill = _journal_entries(resume_dir)
                os.kill(victim, signal.SIGKILL)
                killed = True
                print(f"killed fleet worker pid {victim} mid-sweep "
                      f"({entries_at_kill} cells journaled)")
        time.sleep(0.02)
    mid_sweep = killed and entries_at_kill < _journal_entries(resume_dir)
    if not killed:
        print("notice: sweep finished before a worker could be killed; "
              "the rerun below still proves a full-journal replay")
    return process.returncode, mid_sweep


def _fleet_sweeps(resume_dir: Path, spec: str) -> "list[dict]":
    path = resume_dir / f"{spec}.telemetry.json"
    payload = json.loads(path.read_text())
    return payload["sweeps"]


def _check_merged_trace(trace_dir: Path, spec: str) -> "list[str]":
    """The distributed-obs contract on the merged ``trace.jsonl``.

    Worker subprocesses run their own tracer and ship finished spans
    home in the cell reply; the parent re-parents them under its own
    back-dated ``cell`` spans.  A merged trace therefore proves the
    whole propagation path: spans from >= 2 distinct worker pids, each
    with a cell span ancestor, whose cell-level brackets cover >= 90%
    of every cell span's wall time.
    """
    failures = []
    trace_path = trace_dir / spec / TRACE_FILENAME
    if not trace_path.exists():
        return [f"no merged trace at {trace_path}"]
    spans = read_spans(trace_path)
    by_id = {span.span_id: span for span in spans}
    cells = [span for span in spans if span.name == "cell"]
    shipped = [
        span for span in spans
        if span.name in ("simulate", "trace_gen") and "pid" in span.attrs
    ]
    if not cells:
        return ["merged trace has no cell spans"]
    if not shipped:
        return ["merged trace has no worker-shipped simulate/trace_gen spans"]
    # Coverage counts every worker sub-phase hanging directly off a cell
    # (simulate, trace_gen, build_model, ...), not just the two names
    # asserted above — nested grandchildren would double-count.
    covering = [
        span for span in spans
        if "pid" in span.attrs
        and span.parent_id in by_id
        and by_id[span.parent_id].name == "cell"
    ]

    pids = {span.attrs["pid"] for span in shipped}
    if len(pids) < 2:
        failures.append(
            f"shipped spans came from {len(pids)} worker pid(s), expected "
            f">= 2 (pids: {sorted(pids)})"
        )
    parent_pid = os.getpid()
    for span in shipped:
        if not span.attrs.get("worker"):
            failures.append(f"shipped span {span.name!r} has no worker label")
            break
        if span.attrs["pid"] == parent_pid:
            failures.append(
                f"shipped span {span.name!r} claims the parent's own pid"
            )
            break
        # Sub-phases nest under the worker's cell_exec bracket, which
        # in turn hangs off the parent's cell span — climb to it.
        ancestor = by_id.get(span.parent_id)
        while ancestor is not None and ancestor.name != "cell":
            ancestor = by_id.get(ancestor.parent_id)
        if ancestor is None:
            failures.append(
                f"shipped span {span.name!r} has no cell span ancestor"
            )
            break

    uncovered = 0
    for cell in cells:
        kids = [s for s in covering if s.parent_id == cell.span_id]
        coverage = sum(k.duration for k in kids) / max(cell.duration, 1e-9)
        if coverage < 0.9:
            uncovered += 1
            if uncovered == 1:
                failures.append(
                    f"cell {cell.attrs.get('label')!r} wall time only "
                    f"{coverage:.0%} covered by shipped spans (>= 90% "
                    f"required)"
                )
    if uncovered > 1:
        failures.append(f"... and {uncovered - 1} more cells under 90%")
    if not failures:
        print(
            f"PASS: merged trace carries {len(shipped)} worker spans from "
            f"{len(pids)} pids covering >= 90% of all {len(cells)} cell "
            f"spans"
        )
    return failures


def check(spec: str, resume_dir: Path, trace_dir: Path) -> int:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    command = [
        sys.executable, "-m", "repro.experiments", "--only", spec,
        "--backend", "fleet", "--workers", "2",
        "--resume-dir", str(resume_dir), "--progress",
    ]
    # Only the cold run is traced: the resume run below would replay
    # every cell from the journal and overwrite the merged trace with
    # one that (correctly) ships no worker spans.
    traced_command = command + ["--trace-dir", str(trace_dir)]

    code, mid_sweep = _run_and_kill_worker(traced_command, env, resume_dir)
    if code != 0:
        print(f"FAIL: fleet sweep exited {code} after the worker kill",
              file=sys.stderr)
        return 1
    print(f"PASS: fleet sweep survived the kill (exit 0, "
          f"{_journal_entries(resume_dir)} cells journaled)")

    sweeps = _fleet_sweeps(resume_dir, spec)
    fleet = [s for s in sweeps if s.get("backend") == "fleet"]
    if not fleet:
        failures.append(f"no fleet-backend sweep in {spec}.telemetry.json "
                        f"(backends: {[s.get('backend') for s in sweeps]})")
    for record in fleet:
        if record["cells_failed"]:
            failures.append(
                f"{record['cells_failed']} cells failed — the killed "
                f"worker's cells were not re-dispatched"
            )
        if record["cells_completed"] != record["cells_total"]:
            failures.append(
                f"only {record['cells_completed']}/{record['cells_total']} "
                f"cells completed"
            )
        if not record.get("worker_cells"):
            failures.append("telemetry has no per-worker cell attribution")
    if mid_sweep and not any(s.get("pool_restarts", 0) for s in fleet):
        failures.append(
            "worker was killed mid-sweep but telemetry counted no pool "
            "restart (dead worker was not respawned)"
        )
    if not failures:
        restarts = sum(s.get("pool_restarts", 0) for s in fleet)
        print(f"PASS: telemetry attributes the sweep to the fleet backend "
              f"({restarts} pool restart(s))")

    failures.extend(_check_merged_trace(trace_dir, spec))

    # The rerun must answer entirely from the journal.
    rerun = subprocess.run(command, env=env)
    if rerun.returncode != 0:
        failures.append(f"resume run exited {rerun.returncode}")
    else:
        resumed = _fleet_sweeps(resume_dir, spec)
        recomputed = sum(
            s["cells_total"] - s["cells_cached"] for s in resumed
        )
        if recomputed:
            failures.append(
                f"rerun recomputed {recomputed} cells instead of replaying "
                f"the journal"
            )
        else:
            print(f"PASS: rerun replayed all "
                  f"{sum(s['cells_total'] for s in resumed)} cells from "
                  f"the journal")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="fig05",
                        help="experiment to sweep (default: fig05)")
    parser.add_argument("--resume-dir", type=Path, required=True,
                        help="journal/telemetry directory for the run and "
                        "its resume")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="observability directory for the cold run "
                        "(default: <resume-dir>/trace)")
    args = parser.parse_args(argv)
    args.resume_dir.mkdir(parents=True, exist_ok=True)
    trace_dir = args.trace_dir or args.resume_dir / "trace"
    return check(args.spec, args.resume_dir, trace_dir)


if __name__ == "__main__":
    sys.exit(main())
