"""Tiny picklable experiment specs shared by the serve tests.

Registered once at import time, ``hidden=True`` so they never appear in
the CLI listing; every component is module-level (stable repr) so the
cells fingerprint, journal, and serve exactly like the real figures.
"""

from dataclasses import dataclass

from repro.experiments.spec import ExperimentSpec, register


@dataclass(frozen=True)
class TinyDirectFactory:
    """Direct-mapped cache factory over the parameter (cache size)."""

    line_size: int = 4

    def __call__(self, size):
        from repro.caches.direct_mapped import DirectMappedCache
        from repro.caches.geometry import CacheGeometry

        return DirectMappedCache(CacheGeometry(int(size), self.line_size))


@dataclass(frozen=True)
class TwoBenchmarks:
    """A two-benchmark trace recipe — enough to exercise averaging."""

    kind: str = "instruction"

    def for_parameter(self, parameter):
        from repro.experiments.common import all_trace_keys

        return all_trace_keys(self.kind)[:2]


def scale_means(sweep):
    """Derive: double every point of the base sweep (shape-preserving)."""
    from repro.analysis.sweep import SweepResult

    result = SweepResult(
        parameter_name=sweep.parameter_name, parameters=list(sweep.parameters)
    )
    for label, series in sweep.series.items():
        for parameter, value in series.points.items():
            result.add(label, parameter, 2.0 * value)
    return result


def constant_answer():
    return {"answer": 42}


@dataclass(frozen=True)
class PoisonedFactory:
    """A factory whose cells always fail — negative-cache test fodder."""

    def __call__(self, size):
        raise RuntimeError("poisoned cell")


GRID = register(
    ExperimentSpec(
        id="serve-test-grid",
        title="serve test grid",
        parameter_name="cache size",
        parameters=(1024, 2048),
        factories=(("dm", TinyDirectFactory()),),
        traces=TwoBenchmarks(),
        hidden=True,
    )
)

DERIVED = register(
    ExperimentSpec(
        id="serve-test-derived",
        title="serve test derived",
        base=("serve-test-grid",),
        derive=scale_means,
        hidden=True,
    )
)

POISONED = register(
    ExperimentSpec(
        id="serve-test-poisoned",
        title="serve test poisoned",
        parameter_name="cache size",
        parameters=(1024,),
        factories=(("bad", PoisonedFactory()),),
        traces=TwoBenchmarks(),
        hidden=True,
    )
)

CUSTOM = register(
    ExperimentSpec(
        id="serve-test-custom",
        title="serve test custom",
        compute=constant_answer,
        hidden=True,
    )
)
