"""End-to-end tests for the result-store daemon (repro.serve)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import tracing as obs_tracing
from repro.obs.manifest import read_manifest
from repro.obs.promtext import PROMETHEUS_CONTENT_TYPE, parse_prometheus
from repro.serve import (
    ResultServer,
    ServeClient,
    ServeError,
    ServeUnsupportedError,
    expand_grid_specs,
    plan_grid,
)
from repro.serve.server import resolve_serve_engine
from repro.store import open_store

from . import _specs


@pytest.fixture()
def server(tmp_path):
    store = open_store(tmp_path / "store")
    with ResultServer(store, port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


class TestPlanning:
    def test_expand_grid_is_identity(self):
        assert expand_grid_specs(_specs.GRID) == [_specs.GRID]

    def test_expand_derived_reaches_bases(self):
        assert expand_grid_specs(_specs.DERIVED) == [_specs.GRID]

    def test_expand_custom_unsupported(self):
        with pytest.raises(ServeUnsupportedError, match="custom"):
            expand_grid_specs(_specs.CUSTOM)

    def test_plan_keys_match_the_sweep_runner(self, tmp_path):
        """The server's precomputed keys are exactly the keys the sweep
        runner journals under — the warm path depends on this."""
        from repro.perf.parallel import run_labeled_cells

        plan = plan_grid(_specs.GRID, "fast")
        store = open_store(tmp_path / "store")
        run_labeled_cells(plan.cells, engine="fast", journal=store, progress=False)
        assert all(key in store for key in plan.keys)

    def test_batch_plans_share_fast_keys(self):
        fast = plan_grid(_specs.GRID, "fast")
        batch = plan_grid(_specs.GRID, "batch")
        assert fast.keys == batch.keys

    def test_engine_resolution(self):
        assert resolve_serve_engine(_specs.GRID, None, "fast") == "fast"
        assert resolve_serve_engine(_specs.GRID, "batch", "fast") == "batch"
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_serve_engine(_specs.GRID, "warp", "fast")


class TestReadRoutes:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["ok"] is True
        assert health["store"]["entries"] == 0

    def test_specs_lists_the_registry(self, client):
        by_id = {spec["id"]: spec for spec in client.specs()}
        assert by_id["serve-test-grid"]["kind"] == "grid"
        assert by_id["serve-test-grid"]["hidden"] is True
        assert by_id["fig04"]["kind"] == "grid"

    def test_spec_detail_counts_cells(self, client):
        detail = client.spec("serve-test-grid")
        assert detail["servable"] is True
        assert detail["cells"] == 4  # 2 sizes x 1 factory x 2 traces
        assert detail["cached"] == 0

    def test_spec_detail_custom_unservable(self, client):
        assert client.spec("serve-test-custom")["servable"] is False

    def test_unknown_spec_404(self, client):
        with pytest.raises(ServeError, match="unknown spec") as excinfo:
            client.spec("nope")
        assert excinfo.value.status == 404

    def test_unknown_cell_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.cell("deadbeef")
        assert excinfo.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._get_json("/nope")
        assert excinfo.value.status == 404

    def test_metrics_export(self, client):
        client.healthz()
        names = {row["name"] for row in client.metrics()}
        assert "serve.requests" in names


class TestOpsEndpoints:
    def _fetch(self, server, path, headers=None):
        request = urllib.request.Request(
            f"{server.url}{path}", headers=headers or {}
        )
        with urllib.request.urlopen(request) as response:
            return response.headers, response.read().decode("utf-8")

    def test_metrics_query_param_selects_prometheus(self, server, client):
        client.healthz()  # seed the request counters
        headers, body = self._fetch(server, "/metrics?format=prometheus")
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples = parse_prometheus(body)  # every line must parse
        names = {sample.name for sample in samples}
        assert "serve_requests" in names

    def test_accept_header_negotiates_prometheus(self, server):
        headers, body = self._fetch(
            server, "/metrics", headers={"Accept": "text/plain"}
        )
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        parse_prometheus(body)

    def test_default_metrics_stay_json(self, server, client):
        client.healthz()
        headers, body = self._fetch(server, "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert {"metrics", "backend", "fleet_workers"} <= set(payload)
        # An explicit format= wins even over a text/plain Accept.
        headers, body = self._fetch(
            server, "/metrics?format=json", headers={"Accept": "text/plain"}
        )
        assert "metrics" in json.loads(body)

    def test_request_histogram_has_submillisecond_buckets(self, server, client):
        client.healthz()
        _, body = self._fetch(server, "/metrics?format=prometheus")
        buckets = [
            sample
            for sample in parse_prometheus(body)
            if sample.name == "serve_request_seconds_bucket"
        ]
        assert buckets
        bounds = {sample.labels["le"] for sample in buckets}
        assert "0.0001" in bounds  # sub-millisecond resolution
        # Cumulative bucket counts are monotone within each series.
        by_series = {}
        for sample in buckets:
            key = tuple(
                sorted((k, v) for k, v in sample.labels.items() if k != "le")
            )
            by_series.setdefault(key, []).append(sample.value)
        for values in by_series.values():
            assert values == sorted(values)

    def test_statusz_idle_snapshot(self, server, client):
        status = client._get_json("/statusz")
        assert status["ok"] is True
        assert status["active_runs"] == []
        assert status["fleet"]["live"] == 0
        assert status["fleet"]["workers"] == []
        assert status["store"]["entries"] == 0
        assert status["store"]["state_token"]
        assert status["negcache"]["ttl"] == server.neg_ttl
        assert status["negcache"]["hits"] == 0

    def test_statusz_counts_store_and_negcache_activity(self, server, client):
        client.run("serve-test-grid")
        status = client._get_json("/statusz")
        assert status["store"]["entries"] == 4
        assert status["active_runs"] == []  # the run has finished

    def test_requests_are_spanned(self, server, client):
        tracer = obs_tracing.install_tracer(obs_tracing.Tracer())
        try:
            client.run("serve-test-grid")
        finally:
            obs_tracing.uninstall_tracer()
            tracer.close()
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        assert "serve.request" in by_name
        (run_span,) = by_name["execute_run"]
        assert run_span.attrs["spec"] == "serve-test-grid"
        assert run_span.attrs["cells_computed"] == 4
        assert run_span.attrs["run_id"]
        # The run span nests inside the request span that carried it.
        (request_span,) = [
            span
            for span in by_name["serve.request"]
            if span.attrs.get("method") == "POST"
        ]
        assert run_span.parent_id == request_span.span_id


class TestEtag:
    def test_repeat_spec_get_is_304_from_the_client_cache(self, client):
        first = client.spec("serve-test-grid")
        assert client.not_modified == 0
        second = client.spec("serve-test-grid")
        assert client.not_modified == 1
        assert second == first

    def test_store_mutation_invalidates_the_spec_etag(self, server, client):
        before = client.spec("serve-test-grid")
        assert before["cached"] == 0
        client.run("serve-test-grid")
        after = client.spec("serve-test-grid")
        assert client.not_modified == 0  # a full 200, not a stale 304
        assert after["cached"] == 4

    def test_compaction_invalidates_the_spec_etag(self, server, client):
        client.run("serve-test-grid")
        client.spec("serve-test-grid")
        server.store.compact()
        client.spec("serve-test-grid")
        assert client.not_modified == 0

    def test_cell_etag_survives_unrelated_writes(self, server, client):
        done = client.run("serve-test-grid")
        key = done["cells"][0]["key"]
        client.cell(key)
        # an unrelated record does not change this cell's answer
        server.store.record("feedface01", {}, 0.5, 0.0)
        client.cell(key)
        assert client.not_modified == 1

    def test_raw_conditional_get_receives_304(self, server, client):
        """Wire-level check: If-None-Match with the server's own ETag
        answers 304 with an empty body and the tag echoed back."""
        client.run("serve-test-grid")
        url = f"{server.url}/spec/serve-test-grid"
        with urllib.request.urlopen(url) as response:
            etag = response.headers["ETag"]
        assert etag
        request = urllib.request.Request(url, headers={"If-None-Match": etag})
        try:
            response = urllib.request.urlopen(request)
            status = response.status
        except urllib.error.HTTPError as exc:  # urllib treats 304 as error
            response = exc
            status = exc.code
        assert status == 304
        assert response.headers["ETag"] == etag
        assert response.read() == b""

    def test_wildcard_and_weak_tags_match(self, server, client):
        client.run("serve-test-grid")
        url = f"{server.url}/spec/serve-test-grid"
        with urllib.request.urlopen(url) as response:
            etag = response.headers["ETag"]
        for header in ("*", f"W/{etag}", f'"other", {etag}'):
            request = urllib.request.Request(url, headers={"If-None-Match": header})
            try:
                status = urllib.request.urlopen(request).status
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 304, header

    def test_mismatched_tag_gets_a_full_answer(self, server, client):
        url = f"{server.url}/spec/serve-test-grid"
        request = urllib.request.Request(
            url, headers={"If-None-Match": '"stale-tag"'}
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert json.loads(response.read())["id"] == "serve-test-grid"


class TestNegativeCache:
    @pytest.fixture()
    def failing_server(self, tmp_path):
        store = open_store(tmp_path / "store")
        with ResultServer(store, port=0, neg_ttl=30.0) as running:
            yield running

    def _run(self, server, spec="serve-test-poisoned"):
        events = []
        client = ServeClient(server.url)
        with pytest.raises(ServeError) as excinfo:
            client.run(spec, on_event=events.append)
        cells = [e for e in events if e.get("event") == "cell"]
        return str(excinfo.value), cells

    def test_repeat_failure_served_from_cache_without_simulation(
        self, failing_server
    ):
        cold_error, cold_cells = self._run(failing_server)
        assert len(cold_cells) == 2  # 1 parameter x 1 factory x 2 traces
        assert "poisoned cell" in cold_error
        assert failing_server.store.error_keys()

        warm_error, warm_cells = self._run(failing_server)
        assert warm_cells == []  # answered from the index, zero simulation
        assert "cached failure" in warm_error
        assert "poisoned cell" in warm_error

    def test_expired_entries_are_retried(self, tmp_path):
        store = open_store(tmp_path / "store")
        with ResultServer(store, port=0, neg_ttl=0.2) as running:
            _, cold_cells = self._run(running)
            assert len(cold_cells) == 2
            time.sleep(0.25)
            _, retry_cells = self._run(running)
            assert len(retry_cells) == 2  # TTL passed: simulated again

    def test_zero_ttl_disables_the_negative_cache(self, tmp_path):
        store = open_store(tmp_path / "store")
        with ResultServer(store, port=0, neg_ttl=0) as running:
            self._run(running)
            assert running.store.error_keys() == []  # nothing recorded
            _, cells = self._run(running)
            assert len(cells) == 2  # and nothing served from a cache

    def test_negative_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="neg_ttl"):
            ResultServer(open_store(tmp_path / "store"), port=0, neg_ttl=-1)

    def test_healthz_reports_the_ttl(self, failing_server):
        health = ServeClient(failing_server.url).healthz()
        assert health["neg_ttl"] == 30.0

    def test_negcache_counters_exported(self, failing_server):
        self._run(failing_server)
        self._run(failing_server)
        client = ServeClient(failing_server.url)
        metrics = {row["name"]: row for row in client.metrics()}
        assert metrics["serve.negcache.stored"]["value"] >= 2
        assert metrics["serve.negcache.hits"]["value"] >= 2


class TestRun:
    def test_cold_then_warm_is_byte_identical_with_zero_simulation(
        self, server, client
    ):
        events_cold = []
        done_cold = client.run("serve-test-grid", on_event=events_cold.append)
        plan_cold = events_cold[0]
        assert plan_cold["pending"] == 4
        assert sum(1 for e in events_cold if e["event"] == "cell") == 4
        assert done_cold["manifest"]["cells_computed"] == 4

        events_warm = []
        done_warm = client.run("serve-test-grid", on_event=events_warm.append)
        plan_warm = events_warm[0]
        assert plan_warm["pending"] == 0
        assert plan_warm["cached"] == 4
        # zero simulations: no cell events at all, straight to done
        assert [e["event"] for e in events_warm] == ["plan", "done"]
        assert done_warm["manifest"]["cells_computed"] == 0

        canonical_cold = json.dumps(
            [c["metrics"] for c in done_cold["cells"]], sort_keys=True
        )
        canonical_warm = json.dumps(
            [c["metrics"] for c in done_warm["cells"]], sort_keys=True
        )
        assert canonical_cold == canonical_warm
        assert done_cold["result"] == done_warm["result"]
        assert done_cold["report"] == done_warm["report"]

    def test_run_writes_a_manifest(self, server, client):
        done = client.run("serve-test-grid")
        run_dir = server.store.primary_dir / "runs" / done["run_id"]
        manifest = read_manifest(run_dir)
        assert manifest["spec"] == "serve-test-grid"
        assert manifest["run_id"] == done["run_id"]
        assert manifest["cells_total"] == 4
        assert manifest["engine"] == "fast"

    def test_cells_are_queryable_by_key_afterwards(self, client):
        done = client.run("serve-test-grid")
        for cell in done["cells"]:
            assert cell["key"] is not None
            fetched = client.cell(cell["key"])
            assert fetched["metrics"] == cell["metrics"]

    def test_derived_spec_served_from_base_cells(self, server, client):
        client.run("serve-test-grid")
        events = []
        done = client.run("serve-test-derived", on_event=events.append)
        assert events[0]["pending"] == 0
        assert done["manifest"]["cells_computed"] == 0
        base = client.run("serve-test-grid")
        for label, values in done["result"]["series"].items():
            for value, base_value in zip(values, base["result"]["series"][label]):
                assert value == pytest.approx(2.0 * base_value)

    def test_custom_spec_streams_an_error(self, client):
        with pytest.raises(ServeError, match="custom"):
            client.run("serve-test-custom")

    def test_unknown_spec_400(self, client):
        with pytest.raises(ServeError, match="unknown experiment spec") as excinfo:
            client.run("nope")
        assert excinfo.value.status == 400

    def test_bad_engine_streams_an_error(self, client):
        with pytest.raises(ServeError, match="unknown engine"):
            client.run("serve-test-grid", engine="warp")

    def test_cold_compact_warm_round_trip(self, server, client):
        """The acceptance path: cold run, ``compact()``, then a warm run
        that answers entirely from the compacted shards — zero cell
        events, byte-identical output."""
        done_cold = client.run("serve-test-grid")
        stats = server.store.compact(shards=4)
        assert stats.generation == 1
        assert stats.entries == 4

        events_warm = []
        done_warm = client.run("serve-test-grid", on_event=events_warm.append)
        assert [e["event"] for e in events_warm] == ["plan", "done"]
        assert done_warm["manifest"]["cells_computed"] == 0
        assert json.dumps(
            [c["metrics"] for c in done_warm["cells"]], sort_keys=True
        ) == json.dumps([c["metrics"] for c in done_cold["cells"]], sort_keys=True)
        assert done_warm["result"] == done_cold["result"]
        assert client.healthz()["generation"] == 1

    def test_concurrent_identical_runs_compute_once(self, server, client):
        """Two simultaneous POST /run of one spec serialise on the
        per-spec lock: together they compute the grid exactly once."""
        results = []

        def run():
            results.append(client.run("serve-test-grid"))

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 2
        computed = sorted(r["manifest"]["cells_computed"] for r in results)
        assert computed == [0, 4]
        assert results[0]["result"] == results[1]["result"]
