"""Tests for repro.store — the content-addressed result store."""

import json
import threading

import pytest

from repro.perf.journal import JOURNAL_FILENAME, JOURNAL_VERSION, SweepJournal
from repro.perf.parallel import run_labeled_cells
from repro.store import (
    DEFAULT_SHARDS,
    STORE_MANIFEST_FILENAME,
    ResultStore,
    open_store,
)

from ._specs import TinyDirectFactory, TwoBenchmarks


def _entry(key, miss_rate=0.25, version=JOURNAL_VERSION, kind="sweep-cell"):
    return {
        "kind": kind,
        "version": version,
        "key": key,
        "label": "dm",
        "miss_rate": miss_rate,
        "seconds": 0.01,
    }


def _write_journal(directory, entries):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / JOURNAL_FILENAME
    with path.open("a", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


class TestIndex:
    def test_record_then_get(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("k1", {"label": "dm"}, {"miss_rate": 0.5}, 0.01)
        assert "k1" in store
        assert len(store) == 1
        assert store.metrics("k1") == {"miss_rate": 0.5}
        assert store.get("k1")["kind"] == "sweep-cell"
        # the entry is durable: a fresh store over the same dir sees it
        assert open_store(tmp_path / "store").metrics("k1") == {"miss_rate": 0.5}

    def test_get_returns_a_copy(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("k1", {}, 0.5, 0.0)
        store.get("k1")["miss_rate"] = 99.0
        assert store.metrics("k1") == {"miss_rate": 0.5}

    def test_missing_key(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.get("nope") is None
        assert store.metrics("nope") is None
        assert "nope" not in store


class TestMerge:
    def test_extra_sources_merge_and_later_source_wins(self, tmp_path):
        _write_journal(tmp_path / "a", [_entry("k1", 0.1), _entry("k2", 0.2)])
        _write_journal(tmp_path / "b", [_entry("k2", 0.9), _entry("k3", 0.3)])
        store = open_store(
            tmp_path / "store", [tmp_path / "a", tmp_path / "b"]
        )
        assert sorted(store.keys()) == ["k1", "k2", "k3"]
        assert store.metrics("k2") == {"miss_rate": 0.9}
        assert store.stats().duplicates == 1

    def test_source_as_file_path(self, tmp_path):
        path = _write_journal(tmp_path / "a", [_entry("k1")])
        store = open_store(tmp_path / "store", [path])
        assert "k1" in store

    def test_duplicate_key_last_line_wins_within_one_file(self, tmp_path):
        _write_journal(tmp_path / "a", [_entry("k1", 0.1), _entry("k1", 0.7)])
        store = open_store(tmp_path / "store", [tmp_path / "a"])
        assert store.metrics("k1") == {"miss_rate": 0.7}

    def test_missing_source_is_tolerated_until_it_appears(self, tmp_path):
        store = open_store(tmp_path / "store", [tmp_path / "later"])
        assert len(store) == 0
        _write_journal(tmp_path / "later", [_entry("k1")])
        assert store.refresh() == 1
        assert "k1" in store


class TestIntegrity:
    def test_rejects_garbage_and_future_versions(self, tmp_path):
        path = _write_journal(
            tmp_path / "a",
            [
                _entry("good"),
                _entry("future", version=JOURNAL_VERSION + 1),
                _entry("wrong-kind", kind="telemetry"),
                {"kind": "sweep-cell", "version": 1, "key": 42, "miss_rate": 0.1},
                {"kind": "sweep-cell", "version": 1, "key": "no-metrics"},
            ],
        )
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        store = open_store(tmp_path / "store", [path])
        assert store.keys() == ["good"]
        assert store.stats().skipped == 5

    def test_torn_tail_is_not_consumed_until_complete(self, tmp_path):
        path = _write_journal(tmp_path / "a", [_entry("k1")])
        full_line = json.dumps(_entry("k2")) + "\n"
        with path.open("a", encoding="utf-8") as handle:
            handle.write(full_line[:25])  # a writer caught mid-append
        store = open_store(tmp_path / "store", [path])
        assert store.keys() == ["k1"]
        assert store.stats().skipped == 0  # retried, not rejected
        with path.open("a", encoding="utf-8") as handle:
            handle.write(full_line[25:])
        assert store.refresh() == 1
        assert "k2" in store


class TestOffsetDrift:
    """Regression: tailing must advance by *raw byte* length, not the
    length of the decoded-with-replacement text.  U+FFFD is 3 bytes in
    UTF-8, so a text-mode reader overshot the true offset on any line
    holding invalid bytes and then silently swallowed the head of every
    later append."""

    def test_garbage_bytes_do_not_desync_the_tail(self, tmp_path):
        directory = tmp_path / "a"
        directory.mkdir()
        path = directory / JOURNAL_FILENAME
        # Three invalid bytes decode to three U+FFFD (9 bytes of text):
        # a drifting reader would skip 6 bytes of the next line.
        path.write_bytes(b"\xff\xfe\xfd\n")
        store = open_store(tmp_path / "store", [directory])
        assert store.stats().skipped == 1

        with path.open("ab") as handle:
            handle.write((json.dumps(_entry("k1")) + "\n").encode("utf-8"))
        assert store.refresh() == 1
        assert store.metrics("k1") == {"miss_rate": 0.25}
        assert store.stats().skipped == 1  # nothing else was mangled

    def test_invalid_bytes_inside_a_string_value_keep_the_entry(self, tmp_path):
        """An entry whose label holds invalid bytes still parses (the
        bytes become U+FFFD inside the JSON string) and, crucially, the
        entries appended after it stay visible."""
        directory = tmp_path / "a"
        directory.mkdir()
        path = directory / JOURNAL_FILENAME
        entry = _entry("k-dirty")
        entry["label"] = "@"
        line = json.dumps(entry).encode("utf-8").replace(b"@", b"\xff\xff")
        path.write_bytes(line + b"\n")
        store = open_store(tmp_path / "store", [directory])
        assert "k-dirty" in store

        with path.open("ab") as handle:
            handle.write((json.dumps(_entry("k-clean")) + "\n").encode("utf-8"))
        assert store.refresh() == 1
        assert "k-clean" in store
        assert store.stats().skipped == 0


class TestNegativeCache:
    def test_record_then_lookup_and_reload(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record_errors([("bad1", "boom"), ("bad2", "crash")], at=123.0)
        entry = store.error_entry("bad1")
        assert entry["error"] == "boom"
        assert entry["recorded_at"] == 123.0
        assert sorted(store.error_keys()) == ["bad1", "bad2"]
        assert store.stats().errors == 2
        # failures are durable: a fresh store over the same dir sees them
        reloaded = open_store(tmp_path / "store")
        assert reloaded.error_entry("bad2")["error"] == "crash"

    def test_error_entries_do_not_pollute_the_result_index(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record_errors([("bad", "boom")])
        assert len(store) == 0
        assert store.get("bad") is None
        assert store.metrics("bad") is None

    def test_success_evicts_the_cached_failure(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record_errors([("k1", "boom")])
        store.record("k1", {"label": "dm"}, 0.5, 0.01)
        assert store.error_entry("k1") is None
        assert store.metrics("k1") == {"miss_rate": 0.5}
        # and the eviction survives a reload (journal replay order)
        assert open_store(tmp_path / "store").error_entry("k1") is None

    def test_later_failure_restarts_the_ttl_window(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record_errors([("k1", "first")], at=10.0)
        store.record_errors([("k1", "second")], at=20.0)
        entry = store.error_entry("k1")
        assert entry["error"] == "second"
        assert entry["recorded_at"] == 20.0

    def test_plain_journal_readers_ignore_error_lines(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record_errors([("bad", "boom")])
        store.record("good", {}, 0.1, 0.0)
        journal = SweepJournal(tmp_path / "store")
        assert journal.get("good") is not None
        assert journal.get("bad") is None


class TestCompaction:
    def _populate(self, store, count=20):
        for i in range(count):
            store.record(f"{i:08x}aa", {"label": "dm"}, 0.1 + i / 1000, 0.0)

    def test_round_trip_is_byte_identical(self, tmp_path):
        store = open_store(tmp_path / "store")
        self._populate(store)
        store.record_errors([("deadbeef00", "boom")], at=99.0)
        before = {key: store.metrics(key) for key in store.keys()}

        stats = store.compact(shards=4)
        assert stats.generation == 1
        assert stats.entries == 20
        assert stats.errors == 1
        assert stats.shard_files <= 4
        assert stats.bytes_after > 0

        # the primary journal is empty; the manifest names the shards
        assert (tmp_path / "store" / JOURNAL_FILENAME).read_text() == ""
        manifest = json.loads(
            (tmp_path / "store" / STORE_MANIFEST_FILENAME).read_text()
        )
        assert manifest["generation"] == 1
        assert len(manifest["shards"]) == stats.shard_files

        # the live store still answers every key, as does a fresh load
        assert {key: store.metrics(key) for key in store.keys()} == before
        reloaded = open_store(tmp_path / "store")
        assert {key: reloaded.metrics(key) for key in reloaded.keys()} == before
        assert reloaded.error_entry("deadbeef00")["recorded_at"] == 99.0
        assert reloaded.generation == 1
        assert reloaded.stats().duplicates == 0

    def test_compaction_drops_superseded_lines(self, tmp_path):
        store = open_store(tmp_path / "store")
        for _ in range(5):  # 5 writes, 1 live entry
            store.record("00000001", {}, 0.5, 0.0)
        stats = store.compact(shards=1)
        assert stats.entries == 1
        assert stats.bytes_after < stats.bytes_before
        shard_lines = sum(
            len(path.read_text().splitlines())
            for path in (tmp_path / "store").glob("journal-*.jsonl")
        )
        assert shard_lines == 1

    def test_second_compact_sweeps_the_previous_generation(self, tmp_path):
        store = open_store(tmp_path / "store")
        self._populate(store, 8)
        store.compact(shards=2)
        gen1 = sorted(p.name for p in (tmp_path / "store").glob("journal-*.jsonl"))
        store.record("ffffffff01", {}, 0.9, 0.0)
        stats = store.compact(shards=2)
        assert stats.generation == 2
        gen2 = sorted(p.name for p in (tmp_path / "store").glob("journal-*.jsonl"))
        assert gen2 and not set(gen1) & set(gen2)
        reloaded = open_store(tmp_path / "store")
        assert len(reloaded) == 9
        assert reloaded.metrics("ffffffff01") == {"miss_rate": 0.9}

    def test_records_after_compact_append_and_reload(self, tmp_path):
        store = open_store(tmp_path / "store")
        self._populate(store, 4)
        store.compact()
        store.record("aabbccdd02", {}, 0.7, 0.0)
        assert store.metrics("aabbccdd02") == {"miss_rate": 0.7}
        reloaded = open_store(tmp_path / "store")
        assert len(reloaded) == 5

    def test_extra_source_entries_become_self_contained(self, tmp_path):
        _write_journal(tmp_path / "extra", [_entry("feed0001")])
        store = open_store(tmp_path / "store", [tmp_path / "extra"])
        assert "feed0001" in store
        store.compact(shards=1)
        (tmp_path / "extra" / JOURNAL_FILENAME).unlink()
        reloaded = open_store(tmp_path / "store")
        assert reloaded.metrics("feed0001") == {"miss_rate": 0.25}

    def test_extra_source_appends_after_compact_still_win(self, tmp_path):
        _write_journal(tmp_path / "extra", [_entry("feed0001", 0.1)])
        store = open_store(tmp_path / "store", [tmp_path / "extra"])
        store.compact(shards=1)
        _write_journal(tmp_path / "extra", [_entry("feed0001", 0.9)])
        assert store.refresh() == 0  # same key, updated value
        assert store.metrics("feed0001") == {"miss_rate": 0.9}

    def test_sharding_spreads_keys(self, tmp_path):
        store = open_store(tmp_path / "store")
        self._populate(store, 32)
        stats = store.compact(shards=4)
        assert stats.shard_files == 4  # hex prefixes 0..31 hit every slot

    def test_non_hex_keys_still_shard(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("not hex at all", {}, 0.5, 0.0)
        stats = store.compact(shards=4)
        assert stats.entries == 1
        assert open_store(tmp_path / "store").metrics("not hex at all") == {
            "miss_rate": 0.5
        }

    def test_bad_shard_count_rejected(self, tmp_path):
        store = open_store(tmp_path / "store")
        with pytest.raises(ValueError, match="at least 1"):
            store.compact(shards=0)

    def test_default_shard_count(self, tmp_path):
        store = open_store(tmp_path / "store")
        self._populate(store, 2)
        assert store.compact().generation == 1
        assert DEFAULT_SHARDS >= 1

    def test_corrupt_manifest_degrades_to_journal_only(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("00000001", {}, 0.5, 0.0)
        (tmp_path / "store" / STORE_MANIFEST_FILENAME).write_text("{torn")
        reloaded = open_store(tmp_path / "store")
        # journal still loads; the torn manifest is simply ignored
        assert reloaded.generation == 0
        assert "00000001" in reloaded


class TestStateToken:
    def test_changes_on_every_mutation(self, tmp_path):
        store = open_store(tmp_path / "store")
        t0 = store.state_token()
        store.record("00000001", {}, 0.5, 0.0)
        t1 = store.state_token()
        assert t1 != t0
        store.record_errors([("bad", "boom")])
        t2 = store.state_token()
        assert t2 != t1
        store.compact()
        t3 = store.state_token()
        assert t3 != t2
        assert len({t0, t1, t2, t3}) == 4

    def test_stable_when_nothing_changes(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("00000001", {}, 0.5, 0.0)
        token = store.state_token()
        store.refresh()
        assert store.state_token() == token


class TestConcurrency:
    def test_reader_tails_a_live_writer(self, tmp_path):
        """One thread appends through SweepJournal while another
        refreshes a store watching the same directory; every committed
        entry must become visible and nothing may be skipped."""
        writer_dir = tmp_path / "writer"
        journal = SweepJournal(writer_dir)
        store = open_store(tmp_path / "store", [writer_dir])
        total = 200

        def write():
            for i in range(total):
                journal.record(f"k{i}", {"label": "dm"}, 0.1, 0.0)

        thread = threading.Thread(target=write)
        thread.start()
        while len(store) < total:
            store.refresh()
        thread.join()
        assert len(store) == total
        assert store.stats().skipped == 0
        assert store.stats().duplicates == 0

    def test_concurrent_records_through_one_store(self, tmp_path):
        store = open_store(tmp_path / "store")
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    store.record(f"k{base}-{i}", {}, 0.1, 0.0) for i in range(50)
                ]
            )
            for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 200
        # and the journal file itself holds every line, all valid JSON
        lines = (tmp_path / "store" / JOURNAL_FILENAME).read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)


class TestJournalProtocol:
    def test_store_as_sweep_journal(self, tmp_path):
        """A store passed as ``journal=`` replays cached cells and
        records new ones into the primary journal."""
        cells = [
            ("dm", TinyDirectFactory(), size, trace)
            for size in (1024, 2048)
            for trace in TwoBenchmarks().for_parameter(size)
        ]
        store = open_store(tmp_path / "store")
        first = run_labeled_cells(cells, engine="fast", journal=store, progress=False)
        assert all(o.ok and not o.cached for o in first)
        assert len(store) == len(cells)

        second = run_labeled_cells(cells, engine="fast", journal=store, progress=False)
        assert all(o.ok and o.cached for o in second)
        assert [o.metrics for o in second] == [o.metrics for o in first]

        # a fresh store over the same directory replays the same cells
        reopened = open_store(tmp_path / "store")
        third = run_labeled_cells(cells, engine="fast", journal=reopened, progress=False)
        assert all(o.cached for o in third)

    def test_record_nan_refused(self, tmp_path):
        store = open_store(tmp_path / "store")
        with pytest.raises(ValueError, match="non-finite"):
            store.record("bad", {}, float("nan"), 0.0)
        assert len(store) == 0
