"""Tests for repro.store — the content-addressed result store."""

import json
import threading

import pytest

from repro.perf.journal import JOURNAL_FILENAME, JOURNAL_VERSION, SweepJournal
from repro.perf.parallel import run_labeled_cells
from repro.store import ResultStore, open_store

from ._specs import TinyDirectFactory, TwoBenchmarks


def _entry(key, miss_rate=0.25, version=JOURNAL_VERSION, kind="sweep-cell"):
    return {
        "kind": kind,
        "version": version,
        "key": key,
        "label": "dm",
        "miss_rate": miss_rate,
        "seconds": 0.01,
    }


def _write_journal(directory, entries):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / JOURNAL_FILENAME
    with path.open("a", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


class TestIndex:
    def test_record_then_get(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("k1", {"label": "dm"}, {"miss_rate": 0.5}, 0.01)
        assert "k1" in store
        assert len(store) == 1
        assert store.metrics("k1") == {"miss_rate": 0.5}
        assert store.get("k1")["kind"] == "sweep-cell"
        # the entry is durable: a fresh store over the same dir sees it
        assert open_store(tmp_path / "store").metrics("k1") == {"miss_rate": 0.5}

    def test_get_returns_a_copy(self, tmp_path):
        store = open_store(tmp_path / "store")
        store.record("k1", {}, 0.5, 0.0)
        store.get("k1")["miss_rate"] = 99.0
        assert store.metrics("k1") == {"miss_rate": 0.5}

    def test_missing_key(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.get("nope") is None
        assert store.metrics("nope") is None
        assert "nope" not in store


class TestMerge:
    def test_extra_sources_merge_and_later_source_wins(self, tmp_path):
        _write_journal(tmp_path / "a", [_entry("k1", 0.1), _entry("k2", 0.2)])
        _write_journal(tmp_path / "b", [_entry("k2", 0.9), _entry("k3", 0.3)])
        store = open_store(
            tmp_path / "store", [tmp_path / "a", tmp_path / "b"]
        )
        assert sorted(store.keys()) == ["k1", "k2", "k3"]
        assert store.metrics("k2") == {"miss_rate": 0.9}
        assert store.stats().duplicates == 1

    def test_source_as_file_path(self, tmp_path):
        path = _write_journal(tmp_path / "a", [_entry("k1")])
        store = open_store(tmp_path / "store", [path])
        assert "k1" in store

    def test_duplicate_key_last_line_wins_within_one_file(self, tmp_path):
        _write_journal(tmp_path / "a", [_entry("k1", 0.1), _entry("k1", 0.7)])
        store = open_store(tmp_path / "store", [tmp_path / "a"])
        assert store.metrics("k1") == {"miss_rate": 0.7}

    def test_missing_source_is_tolerated_until_it_appears(self, tmp_path):
        store = open_store(tmp_path / "store", [tmp_path / "later"])
        assert len(store) == 0
        _write_journal(tmp_path / "later", [_entry("k1")])
        assert store.refresh() == 1
        assert "k1" in store


class TestIntegrity:
    def test_rejects_garbage_and_future_versions(self, tmp_path):
        path = _write_journal(
            tmp_path / "a",
            [
                _entry("good"),
                _entry("future", version=JOURNAL_VERSION + 1),
                _entry("wrong-kind", kind="telemetry"),
                {"kind": "sweep-cell", "version": 1, "key": 42, "miss_rate": 0.1},
                {"kind": "sweep-cell", "version": 1, "key": "no-metrics"},
            ],
        )
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        store = open_store(tmp_path / "store", [path])
        assert store.keys() == ["good"]
        assert store.stats().skipped == 5

    def test_torn_tail_is_not_consumed_until_complete(self, tmp_path):
        path = _write_journal(tmp_path / "a", [_entry("k1")])
        full_line = json.dumps(_entry("k2")) + "\n"
        with path.open("a", encoding="utf-8") as handle:
            handle.write(full_line[:25])  # a writer caught mid-append
        store = open_store(tmp_path / "store", [path])
        assert store.keys() == ["k1"]
        assert store.stats().skipped == 0  # retried, not rejected
        with path.open("a", encoding="utf-8") as handle:
            handle.write(full_line[25:])
        assert store.refresh() == 1
        assert "k2" in store


class TestConcurrency:
    def test_reader_tails_a_live_writer(self, tmp_path):
        """One thread appends through SweepJournal while another
        refreshes a store watching the same directory; every committed
        entry must become visible and nothing may be skipped."""
        writer_dir = tmp_path / "writer"
        journal = SweepJournal(writer_dir)
        store = open_store(tmp_path / "store", [writer_dir])
        total = 200

        def write():
            for i in range(total):
                journal.record(f"k{i}", {"label": "dm"}, 0.1, 0.0)

        thread = threading.Thread(target=write)
        thread.start()
        while len(store) < total:
            store.refresh()
        thread.join()
        assert len(store) == total
        assert store.stats().skipped == 0
        assert store.stats().duplicates == 0

    def test_concurrent_records_through_one_store(self, tmp_path):
        store = open_store(tmp_path / "store")
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    store.record(f"k{base}-{i}", {}, 0.1, 0.0) for i in range(50)
                ]
            )
            for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 200
        # and the journal file itself holds every line, all valid JSON
        lines = (tmp_path / "store" / JOURNAL_FILENAME).read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)


class TestJournalProtocol:
    def test_store_as_sweep_journal(self, tmp_path):
        """A store passed as ``journal=`` replays cached cells and
        records new ones into the primary journal."""
        cells = [
            ("dm", TinyDirectFactory(), size, trace)
            for size in (1024, 2048)
            for trace in TwoBenchmarks().for_parameter(size)
        ]
        store = open_store(tmp_path / "store")
        first = run_labeled_cells(cells, engine="fast", journal=store, progress=False)
        assert all(o.ok and not o.cached for o in first)
        assert len(store) == len(cells)

        second = run_labeled_cells(cells, engine="fast", journal=store, progress=False)
        assert all(o.ok and o.cached for o in second)
        assert [o.metrics for o in second] == [o.metrics for o in first]

        # a fresh store over the same directory replays the same cells
        reopened = open_store(tmp_path / "store")
        third = run_labeled_cells(cells, engine="fast", journal=reopened, progress=False)
        assert all(o.cached for o in third)

    def test_record_nan_refused(self, tmp_path):
        store = open_store(tmp_path / "store")
        with pytest.raises(ValueError, match="non-finite"):
            store.record("bad", {}, float("nan"), 0.0)
        assert len(store) == 0
