"""Serve/store tests run at a small trace scale: the point is the
store and protocol behaviour, not simulation throughput."""

import pytest


@pytest.fixture(autouse=True)
def small_traces(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.02")
